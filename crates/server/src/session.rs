//! Client sessions and completion tickets.
//!
//! Every connected client holds a [`SessionHandle`] from the shared
//! [`SessionRegistry`]; each accepted query yields a [`Ticket`] the client
//! blocks on (or polls) for the answer. Tickets decouple submission from
//! execution so the dispatcher can reorder and coalesce queries without the
//! client noticing anything but lower latency.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Monotonic id of a client session.
pub type SessionId = u64;

/// Tracks connected sessions: live count, peak concurrency, total opened.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next_id: AtomicU64,
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl SessionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a session; the handle deregisters on drop.
    pub fn open(self: &Arc<Self>) -> SessionHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        SessionHandle {
            registry: Arc::clone(self),
            id,
        }
    }

    /// Currently connected sessions.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Highest concurrent session count observed.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Sessions opened over the registry's lifetime.
    pub fn total_opened(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }
}

/// RAII registration of one connected client.
#[derive(Debug)]
pub struct SessionHandle {
    registry: Arc<SessionRegistry>,
    id: SessionId,
}

impl SessionHandle {
    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.registry.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The answer to one query, as seen by the submitting client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// Qualifying-tuple count.
    pub count: u64,
    /// End-to-end latency: submission to completion (queueing + service).
    pub latency: Duration,
    /// Engine execution time alone (shared across coalesced duplicates).
    pub service_time: Duration,
}

#[derive(Debug, Default)]
pub(crate) struct TicketState {
    slot: Mutex<Option<QueryResult>>,
    done: Condvar,
}

impl TicketState {
    pub(crate) fn complete(&self, result: QueryResult) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.done.notify_all();
    }
}

/// Completion handle for one submitted query. Only the service constructs
/// tickets — a ticket no dispatcher knows about could never complete, so
/// there is deliberately no public constructor.
#[derive(Debug, Clone)]
pub struct Ticket {
    pub(crate) state: Arc<TicketState>,
}

impl Ticket {
    /// New unfulfilled ticket (dispatcher side).
    pub(crate) fn new() -> Ticket {
        Ticket {
            state: Arc::new(TicketState::default()),
        }
    }

    /// Blocks until the dispatcher answers this query.
    pub fn wait(&self) -> QueryResult {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = *slot {
                return r;
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking probe for the result.
    pub fn try_result(&self) -> Option<QueryResult> {
        *self.state.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Fan-in completion for a decomposed spanning query: every per-shard
/// sub-query folds its count in; the last one completes the parent ticket
/// with the summed count, the parent's end-to-end latency (submission of
/// the whole query to last part's completion) and the summed engine
/// service time.
#[derive(Debug)]
pub(crate) struct MergeState {
    ticket: Ticket,
    remaining: AtomicUsize,
    count: AtomicU64,
    service_ns: AtomicU64,
    enqueued: Instant,
}

impl MergeState {
    /// A merge over `parts` sub-queries; returns the parent ticket the
    /// client waits on.
    pub(crate) fn new(parts: usize) -> (Arc<MergeState>, Ticket) {
        let ticket = Ticket::new();
        (
            Arc::new(MergeState {
                ticket: ticket.clone(),
                remaining: AtomicUsize::new(parts.max(1)),
                count: AtomicU64::new(0),
                service_ns: AtomicU64::new(0),
                enqueued: Instant::now(),
            }),
            ticket,
        )
    }

    /// Folds one part's result in; when this was the last outstanding
    /// part, completes the parent ticket and returns its end-to-end
    /// latency (the caller records it as ONE completed query).
    pub(crate) fn complete_part(&self, count: u64, service_time: Duration) -> Option<Duration> {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.service_ns
            .fetch_add(service_time.as_nanos() as u64, Ordering::Relaxed);
        // AcqRel chain: the thread that takes `remaining` to zero observes
        // every earlier part's count/service additions.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let latency = self.enqueued.elapsed();
            self.ticket.state.complete(QueryResult {
                count: self.count.load(Ordering::Acquire),
                latency,
                service_time: Duration::from_nanos(self.service_ns.load(Ordering::Acquire)),
            });
            Some(latency)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counts_sessions() {
        let reg = Arc::new(SessionRegistry::new());
        let a = reg.open();
        let b = reg.open();
        assert_eq!((a.id(), b.id()), (0, 1));
        assert_eq!(reg.active(), 2);
        assert_eq!(reg.peak(), 2);
        drop(a);
        assert_eq!(reg.active(), 1);
        let _c = reg.open();
        assert_eq!(reg.active(), 2);
        assert_eq!(reg.peak(), 2);
        assert_eq!(reg.total_opened(), 3);
    }

    #[test]
    fn merge_state_fans_in_parts() {
        let (state, ticket) = MergeState::new(3);
        assert_eq!(ticket.try_result(), None);
        assert!(state.complete_part(5, Duration::from_millis(1)).is_none());
        assert!(state.complete_part(7, Duration::from_millis(2)).is_none());
        assert_eq!(ticket.try_result(), None, "parent waits for the last part");
        let latency = state
            .complete_part(1, Duration::from_millis(3))
            .expect("last part completes the parent");
        let r = ticket.wait();
        assert_eq!(r.count, 13, "counts fold across parts");
        assert_eq!(r.latency, latency);
        assert_eq!(r.service_time, Duration::from_millis(6));
    }

    #[test]
    fn ticket_roundtrip_across_threads() {
        let t = Ticket::new();
        assert_eq!(t.try_result(), None);
        let waiter = {
            let t = t.clone();
            std::thread::spawn(move || t.wait())
        };
        let result = QueryResult {
            count: 42,
            latency: Duration::from_millis(3),
            service_time: Duration::from_millis(1),
        };
        t.state.complete(result);
        assert_eq!(waiter.join().unwrap(), result);
        assert_eq!(t.try_result(), Some(result));
    }
}
