//! Vendored minimal stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` that holix actually uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::SmallRng`] / [`rngs::StdRng`] (both xoshiro256++ here),
//! - `Rng::random_range` over integer and float ranges,
//! - `Rng::random_bool`,
//! - [`seq::IndexedRandom::choose`] on slices.
//!
//! Generators are deterministic given a seed, which is all the test suites
//! and benchmarks rely on; no claim of statistical quality beyond "good
//! enough for uniform workload generation" (xoshiro256++ is, comfortably).

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types a range of which can be sampled uniformly — the `random_range`
/// argument bound.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from the half-open span `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from the closed span `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty => $uwide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range {lo}..{hi}");
                // Two's-complement: reinterpreting the wrapping difference
                // as unsigned gives the true span even when it exceeds the
                // signed max (e.g. a nearly-full i64 range).
                let span = (hi as $wide).wrapping_sub(lo as $wide) as $uwide as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as $uwide as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64 => u64, u16 => u64 => u64, u32 => u64 => u64, u64 => u64 => u64,
    usize => u64 => u64,
    i8 => i64 => u64, i16 => i64 => u64, i32 => i64 => u64, i64 => i64 => u64,
    isize => i64 => u64,
);

macro_rules! impl_sample_uniform_int128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range {lo}..{hi}");
                let span = (hi as u128).wrapping_sub(lo as u128);
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                lo.wrapping_add((wide % span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                match (hi as u128).wrapping_sub(lo as u128).checked_add(1) {
                    None => {
                        // Full domain: every 128-bit pattern is valid.
                        (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t
                    }
                    Some(span) => {
                        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                        lo.wrapping_add((wide % span) as $t)
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int128!(u128, i128);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "random_bool: p={p} out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with an obvious "uniform over the whole domain" distribution.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::{IndexedRandom, IteratorRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    /// Spans wider than the signed max must not wrap (regression: the span
    /// computation used to sign-extend through the wide signed type).
    #[test]
    fn huge_signed_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        let (lo, hi) = (-5_000_000_000_000_000_000i64, 5_000_000_000_000_000_000i64);
        let mut below = 0usize;
        for _ in 0..10_000 {
            let v = rng.random_range(lo..hi);
            assert!((lo..hi).contains(&v), "out of range: {v}");
            if v < 0 {
                below += 1;
            }
            let w = rng.random_range(i64::MIN..=i64::MAX);
            std::hint::black_box(w); // full closed domain must not panic
            let u = rng.random_range(0u64..=u64::MAX);
            std::hint::black_box(u);
        }
        // Roughly half the samples land in each half of a symmetric range.
        assert!(
            (3_000..7_000).contains(&below),
            "skewed: {below}/10000 below 0"
        );
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = SmallRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
