//! "No indexing" baseline: every query scans the whole column in parallel.

use crate::api::{Capabilities, Dataset, QueryEngine};
use holix_storage::pscan::{parallel_scan_count, parallel_scan_stats};
use holix_storage::select::Predicate;
use holix_workloads::QuerySpec;

/// Parallel full-scan engine (the paper's plain MonetDB select).
pub struct ScanEngine {
    data: Dataset,
    threads: usize,
}

impl ScanEngine {
    /// Scan engine using `threads` threads per query.
    pub fn new(data: Dataset, threads: usize) -> Self {
        ScanEngine {
            data,
            threads: threads.max(1),
        }
    }
}

impl QueryEngine for ScanEngine {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            workload_analysis: false,
            idle_before_queries: false,
            idle_during_queries: false,
            full_materialization: false,
            high_update_cost: false,
            dynamic: false,
            point_screening: false,
        }
    }

    fn execute(&self, q: &QuerySpec) -> u64 {
        parallel_scan_count(
            self.data.column(q.attr),
            Predicate::range(q.lo, q.hi),
            self.threads,
        )
    }

    fn execute_verified(&self, q: &QuerySpec) -> (u64, i128) {
        let s = parallel_scan_stats(
            self.data.column(q.attr),
            Predicate::range(q.lo, q.hi),
            self.threads,
        );
        (s.count, s.sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counts_correctly() {
        let data = Dataset::new(vec![(0..1000).collect(), (0..1000).rev().collect()]);
        let e = ScanEngine::new(data, 2);
        let q = QuerySpec {
            attr: 0,
            lo: 100,
            hi: 200,
        };
        assert_eq!(e.execute(&q), 100);
        let q1 = QuerySpec {
            attr: 1,
            lo: 100,
            hi: 200,
        };
        assert_eq!(e.execute(&q1), 100);
        let (c, s) = e.execute_verified(&q);
        assert_eq!(c, 100);
        assert_eq!(s, (100..200).sum::<i64>() as i128);
    }
}
