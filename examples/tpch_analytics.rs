//! TPC-H analytics (§5.6 of the paper): run randomized variants of Q1, Q6
//! and Q12 against four engines — plain scans, pre-sorted projections,
//! sideways cracking and holistic indexing — and compare per-query times.
//!
//! ```sh
//! cargo run --release --example tpch_analytics
//! ```

use holix::engine::tpch::{
    HolisticTpch, PresortedTpch, ScanTpch, SidewaysTpch, TpchDb, TpchEngine,
};
use holix::workloads::tpch::{generate, q12_variants, q1_variants, q6_variants};
use std::sync::Arc;
use std::time::Instant;

fn bench<R>(
    label: &str,
    engines: &[&dyn TpchEngine],
    mut run: impl FnMut(&dyn TpchEngine, usize) -> R,
    n: usize,
) {
    println!("{label}:");
    for e in engines {
        let t0 = Instant::now();
        for v in 0..n {
            std::hint::black_box(run(*e, v));
        }
        println!(
            "  {:<10} {:>8.2} ms total ({:.2} ms/query)",
            e.name(),
            t0.elapsed().as_secs_f64() * 1e3,
            t0.elapsed().as_secs_f64() * 1e3 / n as f64
        );
    }
}

fn main() {
    let sf = 0.05;
    println!("generating synthetic TPC-H data (SF {sf})...");
    let db = Arc::new(TpchDb::new(generate(sf, 1)));
    println!(
        "lineitem: {} rows | orders: {} rows",
        db.li.len(),
        db.orders.len()
    );

    let scan = ScanTpch::new(Arc::clone(&db));
    let t0 = Instant::now();
    let presorted = PresortedTpch::new(Arc::clone(&db));
    println!(
        "pre-sorting cost (excluded from per-query times below): {:.2} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let sideways = SidewaysTpch::new(Arc::clone(&db));
    let holistic = HolisticTpch::new(Arc::clone(&db), 7);

    let engines: Vec<&dyn TpchEngine> = vec![&scan, &presorted, &sideways, &holistic];
    let n = 30;

    let q1 = q1_variants(n, 11);
    bench(
        "TPC-H Q1 (pricing summary, 30 variants)",
        &engines,
        |e, v| e.q1(q1[v]),
        n,
    );
    let q6 = q6_variants(n, 12);
    bench(
        "TPC-H Q6 (revenue forecast, 30 variants)",
        &engines,
        |e, v| e.q6(q6[v]),
        n,
    );
    let q12 = q12_variants(n, 13);
    bench(
        "TPC-H Q12 (shipping priority, 30 variants)",
        &engines,
        |e, v| e.q12(q12[v]),
        n,
    );

    let refinements = holistic.stop();
    println!("---");
    println!("holistic background refinements while queries ran: {refinements}");
    println!("sideways/holistic pay a map-copy on the first query, then crack their way to presorted-level latency");
}
