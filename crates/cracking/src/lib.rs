//! # holix-cracking — adaptive indexing (database cracking) substrate
//!
//! This crate implements the adaptive-indexing machinery of §3.2 and §4.2 of
//! the paper:
//!
//! - [`avl`] — the AVL tree that serves as the *cracker index*,
//! - [`crack`] / [`vectorized`] — in-place and out-of-place (vectorized)
//!   crack kernels that partition a piece of a column around pivots,
//! - [`index`] — piece bookkeeping: boundary positions, per-piece latches,
//! - [`range_cell`] — the single `unsafe` building block: disjoint-range
//!   mutable access into one shared vector, guarded by piece latches,
//! - [`latch`] — piece-level read/write latches ([16, 17] in the paper):
//!   user queries block on a busy piece, holistic workers `try_lock` and
//!   re-pick a random pivot instead,
//! - [`column`] — [`CrackerColumn`]: the cracker column `ACRK` plus its
//!   cracker index, supporting concurrent query-driven cracking and
//!   background refinement,
//! - [`stochastic`] — stochastic cracking (auxiliary random crack inside the
//!   piece a query is about to crack, [21]),
//! - [`updates`] — pending insertions/deletions merged on-the-fly with the
//!   Ripple algorithm ([28]),
//! - [`sharding`] — horizontal range shards: one attribute split into S
//!   independently crackable [`CrackerColumn`]s with per-shard Ripple
//!   buffers, predicate fan-out, value-routed updates and versioned
//!   replans ([`PlanEpoch`] / [`ReplanAction`]) that rebuild only the
//!   split or merged shards,
//! - [`epoch`] — per-shard snapshot epochs: immutable piece-table
//!   snapshots published copy-on-write at piece granularity and reclaimed
//!   with epoch-based GC, so count/sum/collect scans run without the
//!   structure lock while cracks and Ripple merges race,
//! - [`piece_stats`] — plan-time piece statistics: a lock-free
//!   [`PieceStats`] summary (boundary table, pending backlog, snapshot
//!   piece sizes) each column publishes for `holix-planner`'s cost model,
//! - [`filter`] — per-shard point-membership Bloom filters: a lazily built
//!   [`PointFilter`] published through the same epoch machinery as the
//!   plan-time statistics, so equality/IN probes on non-containing shards
//!   answer "empty" without cracking anything,
//! - [`kernels`] — block-at-a-time unpack / fused scan kernels for the
//!   bit-packed segment encodings: width-specialised portable inner loops
//!   with explicit AVX2 paths behind one-time runtime dispatch.

pub mod avl;
pub mod column;
pub mod crack;
pub mod epoch;
pub mod filter;
pub mod index;
pub mod kernels;
pub mod latch;
pub mod piece_stats;
pub mod range_cell;
pub mod sharding;
pub mod stochastic;
pub mod updates;
pub mod vectorized;

pub use column::{CrackerColumn, PartitionFn, RefineOutcome, Selection};
pub use crack::CrackKernel;
pub use epoch::{EpochCell, EpochDomain, EpochGuard, PieceSnapshot, SnapshotScan};
pub use filter::PointFilter;
pub use index::{BoundLookup, CrackerIndex};
pub use latch::PieceLatch;
pub use piece_stats::{PieceStats, SnapPieceStat};
pub use sharding::{PlanEpoch, ReplanAction, ShardPlan, ShardedColumn};
pub use vectorized::CrackScratch;
