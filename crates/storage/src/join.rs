//! Hash join on integer keys.
//!
//! Build on the smaller input (unique keys in our TPC-H use: `orders`),
//! probe with the larger (`lineitem`). Output is positional: pairs of
//! `(probe_pos, build_pos)` so downstream projection stays positional.

use crate::hash::IntMap;
use crate::types::{CrackValue, RowId};

/// Hash table mapping key → build-side position(s).
pub struct JoinTable {
    unique: IntMap<i64, RowId>,
    /// Overflow for duplicate build keys (rare in key-foreign-key joins).
    dupes: IntMap<i64, Vec<RowId>>,
}

impl JoinTable {
    /// Builds from the build side's key column.
    pub fn build<V: CrackValue>(keys: &[V]) -> Self {
        let mut unique: IntMap<i64, RowId> = IntMap::default();
        unique.reserve(keys.len());
        let mut dupes: IntMap<i64, Vec<RowId>> = IntMap::default();
        for (pos, &k) in keys.iter().enumerate() {
            let k = k.as_i64();
            match unique.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(pos as RowId);
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    dupes.entry(k).or_default().push(pos as RowId);
                }
            }
        }
        JoinTable { unique, dupes }
    }

    /// Number of distinct keys in the table.
    pub fn distinct_keys(&self) -> usize {
        self.unique.len()
    }

    /// Probes one key, invoking `f` for every matching build position.
    #[inline]
    pub fn probe(&self, key: i64, mut f: impl FnMut(RowId)) {
        if let Some(&first) = self.unique.get(&key) {
            f(first);
            if let Some(rest) = self.dupes.get(&key) {
                for &p in rest {
                    f(p);
                }
            }
        }
    }
}

/// Joins `probe_keys` (restricted to `probe_positions`) against the table,
/// returning matched `(probe_pos, build_pos)` pairs.
pub fn hash_join_positions<V: CrackValue>(
    table: &JoinTable,
    probe_keys: &[V],
    probe_positions: &[RowId],
) -> Vec<(RowId, RowId)> {
    let mut out = Vec::with_capacity(probe_positions.len());
    for &pp in probe_positions {
        let key = probe_keys[pp as usize].as_i64();
        table.probe(key, |bp| out.push((pp, bp)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_foreign_key_join() {
        // build: orders with keys 100..105 at positions 0..5
        let orders: Vec<i64> = (100..105).collect();
        let t = JoinTable::build(&orders);
        assert_eq!(t.distinct_keys(), 5);

        // probe: lineitems referencing orders
        let li = [104i64, 100, 100, 999, 102];
        let pos: Vec<RowId> = (0..li.len() as u32).collect();
        let mut pairs = hash_join_positions(&t, &li, &pos);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 4), (1, 0), (2, 0), (4, 2)]);
    }

    #[test]
    fn duplicate_build_keys_all_match() {
        let build = [7i64, 7, 8];
        let t = JoinTable::build(&build);
        let mut hits = Vec::new();
        t.probe(7, |p| hits.push(p));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn probe_subset_only() {
        let t = JoinTable::build(&[1i64, 2, 3]);
        let li = [1i64, 2, 3];
        // only probe position 1
        let pairs = hash_join_positions(&t, &li, &[1]);
        assert_eq!(pairs, vec![(1, 1)]);
    }

    #[test]
    fn missing_keys_produce_no_pairs() {
        let t = JoinTable::build(&[10i64]);
        let pairs = hash_join_positions(&t, &[99i64], &[0]);
        assert!(pairs.is_empty());
    }
}
