//! [`CrackerColumn`] — a cracker column `ACRK` plus its cracker index, safe
//! for concurrent query-driven cracking and background refinement.
//!
//! ## Locking protocol
//!
//! Three layers, always acquired in this order and never re-entrantly:
//!
//! 1. `pending` mutex — pending-update queue (short critical sections).
//! 2. `structure` RwLock — *shared* by every piece operation (cracks,
//!    refinements, range reads), *exclusive* for Ripple updates that move
//!    piece boundaries or grow the underlying vectors.
//! 3. `index` RwLock — guards piece metadata (AVL + latch table); held only
//!    for lookups and boundary insertion, never across data movement.
//!
//! Piece latches sit outside this order: an operation holds at most **one**
//! piece latch at a time (range queries crack their two bounds one after the
//! other), so latch-latch deadlock cannot occur. The index lock is never held
//! while *blocking* on a piece latch.
//!
//! The crack path is lookup → latch → revalidate → partition → publish:
//! a piece may be split between the lookup and the latch acquisition, so the
//! locator runs again under the latch; holding the latch of the piece that
//! *currently* contains the pivot makes the partition race-free.
//!
//! ## Snapshot reads (per-shard snapshot epochs)
//!
//! [`CrackerColumn::snapshot_scan`] / [`CrackerColumn::snapshot_collect`]
//! answer count/sum/collect queries from an immutable
//! [`crate::epoch::PieceSnapshot`] **without the structure lock**: the
//! reader pins an epoch, loads the published snapshot pointer and copies
//! the unmerged pending values under the short `pending` mutex (the
//! linearisation point), then scans entirely lock-free. Cracks only
//! permute values inside pieces, so the snapshot stays correct under
//! concurrent cracking; Ripple merges — the only multiset-changing
//! writers — splice fresh copies of exactly the affected value range into
//! a new snapshot (copy-on-write at piece granularity, untouched pieces
//! share their `Arc`'d segments) and retire the old version into the
//! column's epoch domain, which frees it only after the last pinned
//! reader drops. For these readers the structure lock shrinks to a
//! writer-writer ordering concern.

use crate::crack::{crack_in_three, crack_in_two, CrackKernel};
use crate::epoch::{
    EpochCell, EpochGuard, PieceSnapshot, Segment, SnapPiece, SnapshotCell, SnapshotScan,
};
use crate::filter::PointFilter;
use crate::index::{BoundLookup, CrackerIndex};
use crate::piece_stats::{build_stats, PieceStats, SnapPieceStat};
use crate::range_cell::RangeCell;
use crate::updates::{ripple_delete, ripple_insert, PendingUpdates, UnmergedKind};
use crate::vectorized::{crack_in_three_oop, crack_in_two_oop, CrackScratch};
use holix_storage::select::{Predicate, RangeStats};
use holix_storage::types::{CrackValue, RowId};
use parking_lot::{Mutex, RwLock};
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed, Ordering::SeqCst};
use std::sync::Arc;

/// A pluggable two-way partition kernel: partitions `vals`/`rows` around
/// `pivot` and returns the split point. Multi-core cracking (PVDC, [44])
/// installs a parallel partition through this hook.
pub type PartitionFn<V> = Arc<dyn Fn(&mut [V], &mut [RowId], V) -> usize + Send + Sync>;

enum KernelImpl<V> {
    Branchy,
    Vectorized,
    Custom(PartitionFn<V>),
}

/// `true` when a splice span starting at anchor `a` begins at or before
/// `prev_b`, the end anchor of the previous span (anchors are snapshot
/// boundary keys; `None` is the column edge on its respective side) — the
/// two spans overlap or touch and must be spliced as one cluster.
fn anchor_starts_within<V: Ord>(a: Option<V>, prev_b: Option<V>) -> bool {
    match (a, prev_b) {
        (_, None) => true,
        (None, _) => true,
        (Some(a), Some(b)) => a <= b,
    }
}

/// The later of two upper anchors, where `None` is the right column edge.
fn anchor_max<V: Ord>(x: Option<V>, y: Option<V>) -> Option<V> {
    match (x, y) {
        (None, _) | (_, None) => None,
        (Some(x), Some(y)) => Some(x.max(y)),
    }
}

/// One splice span: `(lower anchor, upper anchor, replacement pieces)` —
/// the snapshot pieces covering `[a, b)` are replaced by the fresh copies.
type SpliceSpan<V> = (Option<V>, Option<V>, Vec<SnapPiece<V>>);

/// Result of one range select over a cracker column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// First qualifying position in the cracker column.
    pub start: usize,
    /// One past the last qualifying position.
    pub end: usize,
    /// The lower bound was already a boundary (no crack needed).
    pub hit_lo: bool,
    /// The upper bound was already a boundary.
    pub hit_hi: bool,
    /// Data accesses this select performed (piece lengths partitioned).
    pub touched: usize,
}

impl Selection {
    /// Number of qualifying tuples.
    pub fn count(&self) -> u64 {
        (self.end - self.start) as u64
    }

    /// Both bounds were exact hits — the paper's `f_Ih` statistic counts
    /// these queries.
    pub fn exact_hit(&self) -> bool {
        self.hit_lo && self.hit_hi
    }
}

/// Result of one background refinement attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineOutcome {
    /// The pivot already was a boundary: nothing to do.
    AlreadyBound,
    /// The target piece was latched by someone else (try-lock path only).
    Busy,
    /// A piece was split.
    Refined {
        /// Length of the piece that was partitioned.
        piece_len: usize,
    },
}

/// A cracker column: copy of a base column (values + row ids) that is
/// incrementally reorganised by queries and holistic workers.
pub struct CrackerColumn<V> {
    name: String,
    vals: RangeCell<V>,
    rows: RangeCell<RowId>,
    structure: RwLock<()>,
    index: RwLock<CrackerIndex<V>>,
    pending: Mutex<PendingUpdates<V>>,
    /// Observed value domain (base ∪ pending inserts); random pivots are
    /// drawn from it.
    domain: Mutex<Option<(V, V)>>,
    /// Kernel for query-driven cracks (select bounds, stochastic auxiliary
    /// cracks) — the paper's user queries may gang multiple threads here.
    select_kernel: KernelImpl<V>,
    /// Kernel for background (holistic-worker) refinements — typically
    /// single-threaded, one worker per idle context.
    refine_kernel: KernelImpl<V>,
    /// Published piece snapshot + per-shard epoch domain (lock-free reads).
    snap: SnapshotCell<V>,
    /// Live bytes held by snapshot segments (rises on copy-out, falls only
    /// when epoch reclamation frees the last snapshot referencing them).
    snap_bytes: Arc<AtomicUsize>,
    /// Published plan-time piece statistics (lock-free loads; the planner's
    /// `estimate()` reads exclusively from here).
    stats: EpochCell<PieceStats<V>>,
    /// Bumped whenever the piece table, pending backlog or snapshot piece
    /// table changes; drives amortised stats republication.
    stats_version: AtomicU64,
    /// `stats_version` value covered by the last published summary.
    stats_published: AtomicU64,
    /// Serialises publishers (never touched by stats *readers*): prevents
    /// a slow publisher from overwriting a newer summary last.
    stats_publish: Mutex<()>,
    /// Lazily built point-membership filter (lock-free probes; `None` until
    /// the first equality/IN query pays the build).
    filter: EpochCell<PointFilter>,
    /// Serialises filter builders so racing point probes don't each pay the
    /// O(N) snapshot walk.
    filter_build: Mutex<()>,
    /// Deletes absorbed since the point filter was last (re)built — stale
    /// keys never leave a Bloom filter, so this counts accumulated
    /// false-positive pressure until a rebuild resets it.
    filter_deletes: AtomicUsize,
}

impl<V: CrackValue> CrackerColumn<V> {
    /// Copies a base column into a fresh cracker column (the paper's
    /// "first time an attribute is required, a copy of the base column is
    /// created").
    pub fn from_base(name: impl Into<String>, base: &[V]) -> Self {
        Self::with_kernel(name, base, CrackKernel::default())
    }

    /// Like [`CrackerColumn::from_base`] with an explicit crack kernel.
    pub fn with_kernel(name: impl Into<String>, base: &[V], kernel: CrackKernel) -> Self {
        let kernel = match kernel {
            CrackKernel::Branchy => KernelImpl::Branchy,
            CrackKernel::Vectorized => KernelImpl::Vectorized,
        };
        let refine = match kernel {
            KernelImpl::Branchy => KernelImpl::Branchy,
            _ => KernelImpl::Vectorized,
        };
        let rows = (0..base.len() as RowId).collect();
        Self::build(name, base.to_vec(), rows, kernel, refine)
    }

    /// Builds a cracker column with a custom partition kernel for
    /// query-driven cracks (multi-core cracking installs its parallel
    /// partition here); background refinements stay single-threaded.
    pub fn with_partition_fn(
        name: impl Into<String>,
        base: &[V],
        partition: PartitionFn<V>,
    ) -> Self {
        Self::build(
            name,
            base.to_vec(),
            (0..base.len() as RowId).collect(),
            KernelImpl::Custom(partition),
            KernelImpl::Vectorized,
        )
    }

    /// Builds a cracker column with distinct query-path and worker-path
    /// partition kernels (the thread-split experiments of §5.1 give user
    /// queries and holistic workers different thread budgets).
    pub fn with_partition_fns(
        name: impl Into<String>,
        base: &[V],
        select_partition: PartitionFn<V>,
        refine_partition: PartitionFn<V>,
    ) -> Self {
        Self::build(
            name,
            base.to_vec(),
            (0..base.len() as RowId).collect(),
            KernelImpl::Custom(select_partition),
            KernelImpl::Custom(refine_partition),
        )
    }

    /// Builds a cracker column whose row ids start at `offset` — chunked
    /// variants (P-CCGI) crack per-chunk copies that must still report
    /// global base-table positions.
    pub fn from_base_offset(name: impl Into<String>, base: &[V], offset: RowId) -> Self {
        let rows = (offset..offset + base.len() as RowId).collect();
        Self::build(
            name,
            base.to_vec(),
            rows,
            KernelImpl::Vectorized,
            KernelImpl::Vectorized,
        )
    }

    /// Builds a cracker column from pre-partitioned values with explicit
    /// (non-contiguous) row ids — horizontal shards hand each shard the
    /// subset of base tuples whose values fall in its range while keeping
    /// global base-table positions.
    pub fn from_parts(name: impl Into<String>, vals: Vec<V>, rows: Vec<RowId>) -> Self {
        Self::build(
            name,
            vals,
            rows,
            KernelImpl::Vectorized,
            KernelImpl::Vectorized,
        )
    }

    /// [`CrackerColumn::from_parts`] with distinct query-path and
    /// worker-path partition kernels (mirrors
    /// [`CrackerColumn::with_partition_fns`] for sharded columns).
    pub fn from_parts_with_partition_fns(
        name: impl Into<String>,
        vals: Vec<V>,
        rows: Vec<RowId>,
        select_partition: PartitionFn<V>,
        refine_partition: PartitionFn<V>,
    ) -> Self {
        Self::build(
            name,
            vals,
            rows,
            KernelImpl::Custom(select_partition),
            KernelImpl::Custom(refine_partition),
        )
    }

    fn build(
        name: impl Into<String>,
        vals: Vec<V>,
        rows: Vec<RowId>,
        select_kernel: KernelImpl<V>,
        refine_kernel: KernelImpl<V>,
    ) -> Self {
        assert_eq!(vals.len(), rows.len(), "values/row-ids length mismatch");
        let mut lo_hi = None;
        for &v in &vals {
            lo_hi = Some(match lo_hi {
                None => (v, v),
                Some((lo, hi)) => (if v < lo { v } else { lo }, if v > hi { v } else { hi }),
            });
        }
        let n = vals.len();
        let col = CrackerColumn {
            name: name.into(),
            vals: RangeCell::new(vals),
            rows: RangeCell::new(rows),
            structure: RwLock::new(()),
            index: RwLock::new(CrackerIndex::new(n)),
            pending: Mutex::new(PendingUpdates::new()),
            domain: Mutex::new(lo_hi),
            select_kernel,
            refine_kernel,
            snap: SnapshotCell::new(),
            snap_bytes: Arc::new(AtomicUsize::new(0)),
            stats: EpochCell::new(),
            stats_version: AtomicU64::new(1),
            stats_published: AtomicU64::new(0),
            stats_publish: Mutex::new(()),
            filter: EpochCell::new(),
            filter_build: Mutex::new(()),
            filter_deletes: AtomicUsize::new(0),
        };
        // Cold columns still plan: publish the initial one-piece summary.
        col.publish_stats();
        col
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of merged (cracked) values; excludes pending inserts.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    /// `true` if no merged values exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current number of pieces.
    pub fn piece_count(&self) -> usize {
        self.index.read().piece_count()
    }

    /// Average piece length `N/p` (Equation 1 input).
    pub fn avg_piece_len(&self) -> usize {
        self.index.read().avg_piece_len()
    }

    /// Observed value domain, if any values exist.
    pub fn domain(&self) -> Option<(V, V)> {
        *self.domain.lock()
    }

    /// Bytes held by values + row ids + index + live snapshot segments
    /// (storage-budget accounting; the snapshot term is zero until a
    /// snapshot read publishes one).
    pub fn payload_bytes(&self) -> usize {
        let n = self.len();
        n * V::width()
            + n * std::mem::size_of::<RowId>()
            + self.index.read().approx_bytes()
            + self.snapshot_bytes()
    }

    /// Index lookup for a bound value (exposed for stochastic cracking,
    /// which needs the value range of the piece a bound falls into).
    pub fn locate_for_stochastic(&self, v: V) -> BoundLookup<V> {
        self.index.read().locate(v)
    }

    // ------------------------------------------------------------------
    // Plan-time piece statistics (holix-planner's input)
    // ------------------------------------------------------------------

    /// The currently published plan-time summary. Lock-free: no structure
    /// lock, no index lock, no pending mutex — safe to call from admission
    /// control while writers hold every column lock.
    pub fn piece_stats(&self) -> Option<Arc<PieceStats<V>>> {
        self.stats.load()
    }

    /// Marks the published statistics stale (piece table, pending backlog
    /// or snapshot piece table changed).
    fn bump_stats(&self) {
        self.stats_version.fetch_add(1, Relaxed);
    }

    /// Republishes the plan-time summary when at least `min_delta`
    /// structural changes happened since the last publish. The query path
    /// calls this with a coarse delta (amortising the O(p) boundary walk
    /// over many cracks); the daemon forces `1` once per cycle so the
    /// summary never lags idle periods.
    pub fn maybe_publish_stats(&self, min_delta: u64) {
        let v = self.stats_version.load(Relaxed);
        let p = self.stats_published.load(Relaxed);
        if v.saturating_sub(p) >= min_delta.max(1) {
            self.publish_stats();
        }
    }

    /// Unconditionally rebuilds and publishes the plan-time summary. Takes
    /// the pending mutex and the index read lock *sequentially* (never
    /// nested) and publishes through the lock-free stats cell. Publishers
    /// are serialised by a try-lock: without it, a slow publisher that
    /// gathered an old state could overwrite a newer summary *after* the
    /// newer version was marked covered, leaving stale stats no forced
    /// republish would ever fix. A loser simply skips — the version gap
    /// persists, so the next `maybe_publish_stats(1)` retries.
    pub fn publish_stats(&self) {
        let Some(_serial) = self.stats_publish.try_lock() else {
            return;
        };
        let v = self.stats_version.load(SeqCst);
        let pending = self.pending.lock().len();
        let (len, bounds) = {
            let idx = self.index.read();
            (idx.len(), idx.bounds_in_order())
        };
        let snap_pieces = {
            let guard = self.snap.epochs().pin();
            self.snap.load(&guard).map(|s| {
                s.pieces()
                    .iter()
                    .map(|p| SnapPieceStat {
                        hi_key: p.hi_key,
                        len: p.len(),
                        plain: p.is_plain(),
                    })
                    .collect()
            })
        };
        self.stats
            .publish(Arc::new(build_stats(len, bounds, pending, snap_pieces)));
        self.stats_published.fetch_max(v, SeqCst);
    }

    /// Test-only: parks the caller on the column's exclusive structure
    /// lock so lock-freedom tests can assert that plan-time reads
    /// ([`CrackerColumn::piece_stats`]) still complete while a writer
    /// holds every piece hostage.
    #[doc(hidden)]
    pub fn hold_structure_write_for_test(&self) -> impl Drop + '_ {
        self.structure.write()
    }

    /// Draws a uniform random pivot from the observed domain.
    pub fn random_pivot(&self, rng: &mut impl Rng) -> Option<V> {
        let (lo, hi) = (*self.domain.lock())?;
        if lo == hi {
            return Some(lo);
        }
        Some(V::from_i64(rng.random_range(lo.as_i64()..=hi.as_i64())))
    }

    // ------------------------------------------------------------------
    // Select path (user queries)
    // ------------------------------------------------------------------

    /// Range select `lo <= v < hi` with query-driven cracking: ensures both
    /// bounds are boundaries (cracking at most two pieces — or one piece in
    /// three when both bounds share a piece) and returns the contiguous
    /// qualifying range.
    ///
    /// Pending updates falling inside the requested range are merged first
    /// (Ripple), exactly as [28] prescribes.
    pub fn select(&self, pred: Predicate<V>, scratch: &mut CrackScratch<V>) -> Selection {
        let sel = self.select_inner(pred, scratch);
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_selects_total").inc();
            let cracks = (!sel.hit_lo as u64) + (!sel.hit_hi as u64);
            if cracks > 0 {
                holix_telemetry::counter!("cracking_cracks_total").add(cracks);
                holix_telemetry::counter!("cracking_piece_splits_total").add(cracks);
            }
        }
        sel
    }

    fn select_inner(&self, pred: Predicate<V>, scratch: &mut CrackScratch<V>) -> Selection {
        if pred.is_empty() {
            return Selection {
                start: 0,
                end: 0,
                hit_lo: true,
                hit_hi: true,
                touched: 0,
            };
        }
        self.merge_pending_range(pred.lo, pred.hi);

        let _shared = self.structure.read();

        // Fast path: both bounds missing and in the same piece → one
        // three-way crack.
        if let Some(sel) = self.try_crack_in_three(pred, scratch) {
            return sel;
        }

        let (lo_pos, hit_lo, touched_lo) = if pred.lo == V::MIN_VALUE {
            (0, true, 0)
        } else {
            self.crack_bound(pred.lo, scratch, true)
                .expect("blocking crack cannot be Busy")
        };
        let (hi_pos, hit_hi, touched_hi) = if pred.hi == V::MAX_VALUE {
            (self.index.read().len(), true, 0)
        } else {
            self.crack_bound(pred.hi, scratch, true)
                .expect("blocking crack cannot be Busy")
        };

        Selection {
            start: lo_pos,
            end: hi_pos.max(lo_pos),
            hit_lo,
            hit_hi,
            touched: touched_lo + touched_hi,
        }
    }

    /// One attempt at the crack-in-three fast path. `None` means the bounds
    /// do not (or no longer) share an unlatched piece — fall back to two
    /// crack-in-two operations.
    ///
    /// Caller holds `structure` shared.
    fn try_crack_in_three(
        &self,
        pred: Predicate<V>,
        scratch: &mut CrackScratch<V>,
    ) -> Option<Selection> {
        if pred.lo == V::MIN_VALUE || pred.hi == V::MAX_VALUE {
            return None;
        }
        let (piece_latch, start, end) = {
            let idx = self.index.read();
            match (idx.locate(pred.lo), idx.locate(pred.hi)) {
                (
                    BoundLookup::Piece {
                        start: s1,
                        end: e1,
                        latch: l1,
                        ..
                    },
                    BoundLookup::Piece {
                        start: s2,
                        end: e2,
                        latch: l2,
                        ..
                    },
                ) if s1 == s2 && e1 == e2 && l1.same_as(&l2) => (l1, s1, e1),
                _ => return None,
            }
        };
        let _guard = piece_latch.lock_write();
        // Revalidate under the latch.
        {
            let idx = self.index.read();
            match (idx.locate(pred.lo), idx.locate(pred.hi)) {
                (
                    BoundLookup::Piece {
                        start: s1,
                        end: e1,
                        latch: l1,
                        ..
                    },
                    BoundLookup::Piece {
                        start: s2,
                        latch: l2,
                        ..
                    },
                ) if s1 == s2
                    && l1.same_as(&piece_latch)
                    && l2.same_as(&piece_latch)
                    && s1 == start
                    && e1 == end => {}
                _ => return None,
            }
        }

        let piece_len = end - start;
        let (a, b) = {
            // SAFETY: we hold the write latch of the piece [start, end) and
            // `structure` shared, so the range is exclusively ours and the
            // vectors cannot move.
            let mut vg = unsafe { self.vals.range_mut(start, end) };
            let mut rg = unsafe { self.rows.range_mut(start, end) };
            match &self.select_kernel {
                KernelImpl::Branchy => crack_in_three(vg.slice(), rg.slice(), pred.lo, pred.hi),
                KernelImpl::Vectorized => {
                    crack_in_three_oop(vg.slice(), rg.slice(), pred.lo, pred.hi, scratch)
                }
                KernelImpl::Custom(f) => {
                    let (vals, rows) = (vg.slice(), rg.slice());
                    let a = f(vals, rows, pred.lo);
                    let b = a + f(&mut vals[a..], &mut rows[a..], pred.hi);
                    (a, b)
                }
            }
        };
        {
            let mut idx = self.index.write();
            idx.insert_bound(pred.lo, start + a);
            idx.insert_bound(pred.hi, start + b);
        }
        self.bump_stats();
        Some(Selection {
            start: start + a,
            end: start + b,
            hit_lo: false,
            hit_hi: false,
            touched: piece_len,
        })
    }

    /// Ensures `v` is a boundary, cracking its piece if needed. Returns
    /// `(position, was_exact_hit, touched)`; `None` only on the non-blocking
    /// path when the piece is latched elsewhere.
    ///
    /// Caller holds `structure` shared.
    fn crack_bound(
        &self,
        v: V,
        scratch: &mut CrackScratch<V>,
        blocking: bool,
    ) -> Option<(usize, bool, usize)> {
        let kernel = if blocking {
            &self.select_kernel
        } else {
            &self.refine_kernel
        };
        self.crack_bound_with(v, scratch, blocking, kernel)
    }

    fn crack_bound_with(
        &self,
        v: V,
        scratch: &mut CrackScratch<V>,
        blocking: bool,
        kernel: &KernelImpl<V>,
    ) -> Option<(usize, bool, usize)> {
        loop {
            let lookup = self.index.read().locate(v);
            let latch = match lookup {
                BoundLookup::Exact(pos) => return Some((pos, true, 0)),
                BoundLookup::Piece { latch, .. } => latch,
            };
            let guard = if blocking {
                latch.lock_write()
            } else {
                latch.try_lock_write()?
            };
            // Revalidate: the piece may have been split while we waited.
            let (start, end) = {
                let idx = self.index.read();
                match idx.locate(v) {
                    BoundLookup::Exact(pos) => {
                        // Someone cracked exactly this value concurrently.
                        drop(guard);
                        return Some((pos, true, 0));
                    }
                    BoundLookup::Piece {
                        start,
                        end,
                        latch: cur,
                        ..
                    } => {
                        if !cur.same_as(&latch) {
                            drop(guard);
                            continue; // piece split away from our latch
                        }
                        (start, end)
                    }
                }
            };

            let split = {
                // SAFETY: write latch on piece [start, end) held; `structure`
                // shared prevents vector moves.
                let mut vg = unsafe { self.vals.range_mut(start, end) };
                let mut rg = unsafe { self.rows.range_mut(start, end) };
                match kernel {
                    KernelImpl::Branchy => crack_in_two(vg.slice(), rg.slice(), v),
                    KernelImpl::Vectorized => crack_in_two_oop(vg.slice(), rg.slice(), v, scratch),
                    KernelImpl::Custom(f) => f(vg.slice(), rg.slice(), v),
                }
            };
            let pos = start + split;
            self.index.write().insert_bound(v, pos);
            self.bump_stats();
            return Some((pos, false, end - start));
        }
    }

    // ------------------------------------------------------------------
    // Refinement path (holistic workers)
    // ------------------------------------------------------------------

    /// One background refinement at `pivot`. Non-blocking: a latched piece
    /// yields [`RefineOutcome::Busy`] so the worker can re-pick a pivot
    /// (Fig 3(d)–(e) of the paper). Pending updates belonging to the target
    /// piece are merged first, so workers also bring indices up to date.
    pub fn refine_at(&self, pivot: V, scratch: &mut CrackScratch<V>) -> RefineOutcome {
        self.merge_pending_for_piece_of(pivot);
        let _shared = self.structure.read();
        match self.crack_bound(pivot, scratch, false) {
            None => RefineOutcome::Busy,
            Some((_, true, _)) => RefineOutcome::AlreadyBound,
            Some((_, false, touched)) => {
                if holix_telemetry::metrics_enabled() {
                    holix_telemetry::counter!("cracking_refinements_total").inc();
                    holix_telemetry::counter!("cracking_piece_splits_total").inc();
                }
                RefineOutcome::Refined { piece_len: touched }
            }
        }
    }

    /// Blocking refinement (used by single-threaded baselines and tests).
    pub fn refine_at_blocking(&self, pivot: V, scratch: &mut CrackScratch<V>) -> RefineOutcome {
        self.merge_pending_for_piece_of(pivot);
        let _shared = self.structure.read();
        match self.crack_bound(pivot, scratch, true) {
            None => unreachable!("blocking crack cannot be Busy"),
            Some((_, true, _)) => RefineOutcome::AlreadyBound,
            Some((_, false, touched)) => RefineOutcome::Refined { piece_len: touched },
        }
    }

    /// Draws random pivots until one lands on a free piece (at most
    /// `max_attempts` draws) and refines there.
    pub fn refine_random(
        &self,
        rng: &mut impl Rng,
        scratch: &mut CrackScratch<V>,
        max_attempts: usize,
    ) -> RefineOutcome {
        let mut last = RefineOutcome::Busy;
        for _ in 0..max_attempts {
            let Some(pivot) = self.random_pivot(rng) else {
                return RefineOutcome::AlreadyBound;
            };
            last = self.refine_at(pivot, scratch);
            if !matches!(last, RefineOutcome::Busy) {
                return last;
            }
        }
        last
    }

    // ------------------------------------------------------------------
    // Updates (pending queue + Ripple merge)
    // ------------------------------------------------------------------

    /// Queues an insertion; it is merged when a query or worker touches its
    /// value range. Returns `false` — queueing nothing — once the column is
    /// sealed for shard migration; the caller re-routes the update through
    /// the successor plan.
    pub fn queue_insert(&self, v: V, row: RowId) -> bool {
        {
            let mut p = self.pending.lock();
            if p.is_sealed() {
                return false;
            }
            p.queue_insert(v, row);
            // Same critical section that the filter build's catch-up +
            // publish runs in, so this insert lands in the filter exactly
            // once: either the build's `for_each_unmerged` pass sees it
            // queued, or the publish happened first and the OR below does.
            if let Some(f) = self.filter.load() {
                f.insert(v.as_i64());
            }
        }
        let mut dom = self.domain.lock();
        *dom = Some(match *dom {
            None => (v, v),
            Some((lo, hi)) => (if v < lo { v } else { lo }, if v > hi { v } else { hi }),
        });
        drop(dom);
        self.bump_stats();
        true
    }

    /// Queues a deletion of the value previously inserted for `row`. The
    /// target must be a tuple that is merged or has a matching pending
    /// insert (which the queue cancels): `ripple_delete` silently drops a
    /// delete whose target is absent, and until that happens the snapshot
    /// overlay counts the delete against the aggregates. Returns `false` —
    /// queueing nothing — once the column is sealed for shard migration.
    pub fn queue_delete(&self, v: V, row: RowId) -> bool {
        {
            let mut p = self.pending.lock();
            if p.is_sealed() {
                return false;
            }
            p.queue_delete(v, row);
        }
        // Deletes never leave a Bloom filter: account the churn so idle
        // workers can rebuild once it overwhelms the published filter.
        if self.filter.is_published() {
            self.filter_deletes.fetch_add(1, Relaxed);
        }
        self.bump_stats();
        true
    }

    /// Number of unmerged pending operations.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Merges every pending update with value in `[lo, hi)` into the cracked
    /// column (exclusive; moves boundaries via the Ripple shifts).
    ///
    /// When a snapshot is published, the merge is the *only* operation that
    /// changes per-piece multisets, so it finishes by splicing fresh copies
    /// of exactly the affected value range into the snapshot (copy-on-write
    /// at piece granularity) and retiring the old one through the epoch
    /// domain. The taken batch stays registered as in-flight until the
    /// publish, so lock-free readers racing the merge see every update in
    /// either the pending set or the new snapshot — never neither.
    pub fn merge_pending_range(&self, lo: V, hi: V) {
        let (token, ins, del) = {
            let mut p = self.pending.lock();
            if !p.has_in_range(lo, hi) {
                return;
            }
            p.take_range_tracked(lo, hi)
        };
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_ripple_merges_total").inc();
            holix_telemetry::counter!("cracking_ripple_merged_values_total")
                .add((ins.len() + del.len()) as u64);
        }
        let _exclusive = self.structure.write();
        {
            let mut idx = self.index.write();
            // SAFETY: `structure` held exclusively — no piece guard can be
            // live and no reader observes the vectors while they move.
            unsafe {
                self.vals.with_vec_mut(|vals| {
                    self.rows.with_vec_mut(|rows| {
                        for &(v, r) in del.iter() {
                            ripple_delete(vals, rows, &mut idx, v, r);
                        }
                        for &(v, r) in ins.iter() {
                            ripple_insert(vals, rows, &mut idx, v, r);
                        }
                    })
                });
            }
        }
        // Still under `structure` exclusive: nothing else can publish (or
        // build) a snapshot, so the anchor/copy/splice triple is atomic and
        // the in-flight batch is cleared before any snapshot that already
        // contains its items can become visible. The splice covers one
        // span per *cluster* of merged values: a wide merge whose items
        // are sparse only copies the snapshot pieces the values actually
        // land in — every untouched interior piece of the anchor span
        // keeps sharing its segment.
        if self.snap.is_published() {
            let mut vs: Vec<V> = ins.iter().chain(del.iter()).map(|&(v, _)| v).collect();
            vs.sort_unstable();
            vs.dedup();
            // One pending-mutex critical section computes every cluster's
            // anchors (the snapshot cannot change under the exclusive
            // structure lock held here) — a per-value `snapshot_anchors`
            // call would re-lock the mutex and re-load the publisher
            // pointer once per merged value inside the writer's critical
            // section.
            let spans: Vec<(Option<V>, Option<V>)> = {
                let _p = self.pending.lock();
                match self.snap.load_publisher() {
                    None => Vec::new(),
                    Some(snap) => {
                        let pieces = snap.pieces();
                        let mut spans: Vec<(Option<V>, Option<V>)> = Vec::new();
                        for &v in &vs {
                            let (a, b) = Self::anchors_in(pieces, v, Self::succ(v));
                            match spans.last_mut() {
                                // Values ascend, so anchors do too: the new
                                // span either falls inside / touches the
                                // previous one (extend it) or starts a
                                // fresh cluster strictly to the right.
                                Some((_, pb)) if anchor_starts_within(a, *pb) => {
                                    *pb = anchor_max(*pb, b);
                                }
                                _ => spans.push((a, b)),
                            }
                        }
                        spans
                    }
                }
            };
            let spans: Vec<SpliceSpan<V>> = spans
                .into_iter()
                .map(|(a, b)| (a, b, self.copy_live_pieces(a, b, false, false)))
                .collect();
            self.splice_multi_and_publish(spans, Some(token));
        } else {
            self.pending.lock().finish_merge(token);
        }
        self.bump_stats();
    }

    /// The value just above `v` in predicate space (`MAX_VALUE` saturates
    /// to the unbounded sentinel — which also *includes* `MAX_VALUE`
    /// itself, keeping `[v, succ(v))` a superset of `{v}`).
    fn succ(v: V) -> V {
        if v == V::MAX_VALUE {
            V::MAX_VALUE
        } else {
            V::from_i64(v.as_i64() + 1)
        }
    }

    /// Merges pending updates for the piece that currently contains `pivot`
    /// (the holistic-worker merge of §4.2 "Updates").
    fn merge_pending_for_piece_of(&self, pivot: V) {
        if self.pending.lock().is_empty() {
            return;
        }
        let (lo_key, hi_key) = match self.index.read().locate(pivot) {
            BoundLookup::Exact(_) => return,
            BoundLookup::Piece { lo_key, hi_key, .. } => (lo_key, hi_key),
        };
        let lo = lo_key.unwrap_or(V::MIN_VALUE);
        let hi = hi_key.unwrap_or(V::MAX_VALUE);
        self.merge_pending_range(lo, hi);
    }

    // ------------------------------------------------------------------
    // Shard migration (dynamic replanning)
    // ------------------------------------------------------------------

    /// Seals the update ingress: every later [`CrackerColumn::queue_insert`]
    /// / [`CrackerColumn::queue_delete`] returns `false` so shard routers
    /// re-route through the successor plan. Reads — selects, snapshot
    /// scans, point probes — keep working; sealing freezes only the
    /// pending queue's intake.
    pub fn seal_for_migration(&self) {
        self.pending.lock().seal();
    }

    /// `true` once [`CrackerColumn::seal_for_migration`] ran.
    pub fn is_sealed(&self) -> bool {
        self.pending.lock().is_sealed()
    }

    /// Reopens the update ingress after an *aborted* migration (no
    /// successor plan was ever published — e.g. a split found the shard's
    /// values all equal). Updates rejected during the sealed window are
    /// retried by the shard router and land here again.
    pub fn unseal_after_aborted_migration(&self) {
        self.pending.lock().unseal();
    }

    /// Drains the column for a shard replan: seals the update ingress,
    /// Ripple-merges **every** pending update — republishing the snapshot
    /// in the same critical section, so readers still pinned to the old
    /// plan keep answering exactly — and returns a copy of the merged
    /// values and row ids in cracked order. The column stays fully
    /// readable afterwards (in-flight old-plan queries finish against it)
    /// but accepts no new updates.
    pub fn extract_for_migration(&self) -> (Vec<V>, Vec<RowId>) {
        self.seal_for_migration();
        loop {
            let _exclusive = self.structure.write();
            let taken = {
                let mut p = self.pending.lock();
                if p.has_in_flight() {
                    // A concurrent merge took its batch before we won the
                    // structure lock and is parked right behind us; let it
                    // finish its splice, then retry.
                    None
                } else if p.is_empty() {
                    Some(None)
                } else {
                    Some(Some(p.take_all_tracked()))
                }
            };
            let Some(taken) = taken else {
                drop(_exclusive);
                std::thread::yield_now();
                continue;
            };
            if let Some((token, ins, del)) = taken {
                {
                    let mut idx = self.index.write();
                    // SAFETY: `structure` held exclusively — no piece guard
                    // can be live and no reader observes the vectors while
                    // they move.
                    unsafe {
                        self.vals.with_vec_mut(|vals| {
                            self.rows.with_vec_mut(|rows| {
                                for &(v, r) in del.iter() {
                                    ripple_delete(vals, rows, &mut idx, v, r);
                                }
                                for &(v, r) in ins.iter() {
                                    ripple_insert(vals, rows, &mut idx, v, r);
                                }
                            })
                        });
                    }
                }
                // Old-plan snapshot readers must stay exact: the batch
                // leaves the pending overlay only together with a
                // republished snapshot that already contains it.
                if self.snap.is_published() {
                    let pieces = self.copy_live_pieces(None, None, false, false);
                    self.splice_and_publish(None, None, pieces, Some(token));
                } else {
                    self.pending.lock().finish_merge(token);
                }
            }
            let n = self.index.read().len();
            // SAFETY: exclusive structure lock — no live mutators.
            let vals = unsafe { self.vals.read_range(0, n) }.to_vec();
            let rows = unsafe { self.rows.read_range(0, n) }.to_vec();
            self.bump_stats();
            return (vals, rows);
        }
    }

    // ------------------------------------------------------------------
    // Snapshot reads (per-shard snapshot epochs)
    // ------------------------------------------------------------------

    /// Count + sum of values in `pred`, served from the published piece
    /// snapshot **without taking the structure lock**: the reader pins one
    /// epoch, linearises `(snapshot pointer, unmerged updates)` on the
    /// short pending mutex (folding the overlay deltas allocation-free
    /// inside it), scans the immutable snapshot, and applies the deltas.
    /// Writers (cracks, Ripple merges, piece splits) never wait for this
    /// reader and this reader never waits for them.
    ///
    /// The overlay assumes the contract [`CrackerColumn::queue_delete`]
    /// states: a pending delete targets a tuple that is merged (or has a
    /// matching pending insert, which the queue cancels). A delete of a
    /// tuple that never existed is counted here until a Ripple merge
    /// silently drops it — the same tolerance `ripple_delete` has.
    ///
    /// Adaptivity: when the edge pieces forced more than
    /// [`CrackerColumn::REFRESH_FILTER_MIN`] element-wise checks, the call
    /// finishes with an amortised maintenance pass that cracks the live
    /// bounds (non-blocking) and refreshes the snapshot's piece table to
    /// live granularity — so a snapshot-only workload converges exactly
    /// like a cracking one, paying the copy at most once per granularity
    /// level (the same geometric series as cracking itself).
    pub fn snapshot_scan(&self, pred: Predicate<V>, scratch: &mut CrackScratch<V>) -> SnapshotScan {
        if pred.is_empty() {
            return SnapshotScan::default();
        }
        self.ensure_snapshot();
        let scan = {
            let guard = self.snap.epochs().pin();
            let mut count_delta = 0i64;
            let mut sum_delta = 0i128;
            let snap = {
                let p = self.pending.lock();
                let snap = self.snap.load(&guard).expect("snapshot was ensured");
                p.for_each_unmerged(
                    |v| pred.matches_unbounded(v),
                    |v, kind| {
                        let sign = match kind {
                            UnmergedKind::Insert => 1,
                            UnmergedKind::Delete => -1,
                        };
                        count_delta += sign;
                        sum_delta += sign as i128 * v.as_i64() as i128;
                    },
                );
                snap
            };
            let mut scan = snap.stats(pred.lo, pred.hi);
            scan.count = (scan.count as i64 + count_delta).max(0) as u64;
            scan.sum += sum_delta;
            scan
        };
        if scan.filtered >= Self::REFRESH_FILTER_MIN {
            self.refresh_snapshot(pred, scratch);
        }
        scan
    }

    /// Appends every value qualifying under `pred` to `out` (lock-free,
    /// same protocol as [`CrackerColumn::snapshot_scan`]); unmerged pending
    /// inserts are appended and pending deletes remove one matching
    /// occurrence each from the values this call produced (a delete whose
    /// target is genuinely absent removes nothing — see
    /// [`CrackerColumn::snapshot_scan`] on the delete contract).
    pub fn snapshot_collect(
        &self,
        pred: Predicate<V>,
        scratch: &mut CrackScratch<V>,
        out: &mut Vec<V>,
    ) -> SnapshotScan {
        if pred.is_empty() {
            return SnapshotScan::default();
        }
        self.ensure_snapshot();
        let base = out.len();
        let scan = {
            let guard = self.snap.epochs().pin();
            // Overlay values buffer into small locals under the lock; the
            // (potentially large, reallocating) `out` buffer is only
            // touched after the pending mutex is released, keeping the
            // writer linearisation point short.
            let mut ins: Vec<V> = Vec::new();
            let mut del: Vec<V> = Vec::new();
            let snap = {
                let p = self.pending.lock();
                let snap = self.snap.load(&guard).expect("snapshot was ensured");
                p.for_each_unmerged(
                    |v| pred.matches_unbounded(v),
                    |v, kind| match kind {
                        UnmergedKind::Insert => ins.push(v),
                        UnmergedKind::Delete => del.push(v),
                    },
                );
                snap
            };
            let mut scan = snap.collect_into(pred.lo, pred.hi, out);
            for v in ins {
                out.push(v);
                scan.count += 1;
                scan.sum += v.as_i64() as i128;
            }
            if !del.is_empty() {
                // Single compaction pass over this call's values with a
                // delete multiset — O(collected + deletes), not a linear
                // re-scan per delete. Unmatched deletes (absent targets)
                // remove nothing, as on the Ripple path.
                let mut remaining: std::collections::BTreeMap<V, usize> =
                    std::collections::BTreeMap::new();
                for v in del {
                    *remaining.entry(v).or_insert(0) += 1;
                }
                let mut kept = base;
                for i in base..out.len() {
                    let v = out[i];
                    if let Some(c) = remaining.get_mut(&v) {
                        if *c > 0 {
                            *c -= 1;
                            scan.count = scan.count.saturating_sub(1);
                            scan.sum -= v.as_i64() as i128;
                            continue;
                        }
                    }
                    out[kept] = v;
                    kept += 1;
                }
                out.truncate(kept);
            }
            scan
        };
        if scan.filtered >= Self::REFRESH_FILTER_MIN {
            self.refresh_snapshot(pred, scratch);
        }
        scan
    }

    /// Edge-piece filter work (values inspected element-wise) above which a
    /// snapshot read triggers a piece-table refresh.
    pub const REFRESH_FILTER_MIN: usize = 1 << 11;

    /// Pending-queue length above which a snapshot refresh also merges the
    /// bound piece's updates (below it, the per-scan overlay is cheaper
    /// than queueing behind the exclusive merge).
    pub const REFRESH_MERGE_BACKLOG: usize = 256;

    /// Has a snapshot been published for this column?
    pub fn snapshot_published(&self) -> bool {
        self.snap.is_published()
    }

    /// Live bytes held by snapshot segments (including retired segments
    /// not yet reclaimed — the number a pinned reader keeps elevated).
    pub fn snapshot_bytes(&self) -> usize {
        self.snap_bytes.load(SeqCst)
    }

    /// Pieces in the currently published snapshot (0 when unpublished).
    pub fn snapshot_piece_count(&self) -> usize {
        let guard = self.snap.epochs().pin();
        self.snap.load(&guard).map_or(0, |s| s.pieces().len())
    }

    /// Pins the column's snapshot epoch; while the guard lives, every
    /// snapshot version retired after the pin stays allocated (tests and
    /// long multi-column readers).
    pub fn snapshot_pin(&self) -> EpochGuard<'_> {
        self.snap.epochs().pin()
    }

    /// Runs one reclamation cycle; returns how many retired snapshot
    /// versions were freed.
    pub fn snapshot_gc(&self) -> usize {
        self.snap.collect()
    }

    // ------------------------------------------------------------------
    // Point-membership filter (equality / IN fast path)
    // ------------------------------------------------------------------

    /// Has a point filter been built and published for this column?
    pub fn point_filter_published(&self) -> bool {
        self.filter.is_published()
    }

    /// The published point filter, if any (lock-free load).
    pub fn point_filter(&self) -> Option<Arc<PointFilter>> {
        self.filter.load()
    }

    /// Lock-free point-membership probe. `Some(false)` **proves** no tuple
    /// with value `v` exists in this column — merged, pending, or queued
    /// concurrently — so an equality probe can answer "empty" without
    /// cracking anything. `Some(true)` means "maybe present" (Bloom false
    /// positives included); `None` means no filter is built yet and the
    /// caller must fall back (or pay [`CrackerColumn::ensure_point_filter`]).
    pub fn probe_point(&self, v: V) -> Option<bool> {
        Some(self.filter.load()?.contains(v.as_i64()))
    }

    /// Builds and publishes the point filter from the published snapshot's
    /// piece table plus the unmerged pending inserts. No-op once published.
    ///
    /// Race-freedom: the build runs under `structure` *shared*, which
    /// excludes Ripple merges — the only operation that moves values from
    /// the pending queue into the column — so the snapshot walked here and
    /// the pending queue drained below cannot trade values mid-build.
    /// Cracks racing the build only permute values inside live pieces and
    /// never touch the immutable snapshot segments. The pending catch-up
    /// and the publish share one `pending` critical section, the same one
    /// [`CrackerColumn::queue_insert`] ORs new values in under, so every
    /// insert reaches the filter exactly once (deletes are deliberately
    /// ignored: they only raise the false-positive rate, never unsoundness).
    pub fn ensure_point_filter(&self) {
        if self.filter.is_published() {
            return;
        }
        let _build = self.filter_build.lock();
        if self.filter.is_published() {
            return; // lost the build race
        }
        self.build_and_publish_filter();
    }

    /// Deletes absorbed since the point filter was last (re)built (stale
    /// keys never leave a Bloom filter, so this measures accumulated
    /// false-positive pressure).
    pub fn point_filter_staleness(&self) -> usize {
        self.filter_deletes.load(Relaxed)
    }

    /// Delete-churn floor below which a filter rebuild is never attempted.
    pub const FILTER_REBUILD_MIN_DELETES: usize = 64;

    /// Rebuilds the published point filter once delete churn since the last
    /// (re)build reaches a quarter of the merged column: deleted keys stay
    /// resident in a Bloom filter, so churn monotonically raises its
    /// false-positive rate until a rebuild from the current snapshot resets
    /// it. Pending updates are Ripple-merged first — the build walk ignores
    /// unmerged deletes, so rebuilding around them would change nothing.
    /// Idle daemon workers call this; returns `true` when a fresh filter
    /// was published.
    pub fn maybe_rebuild_point_filter(&self) -> bool {
        if !self.filter.is_published() {
            return false;
        }
        let d = self.filter_deletes.load(Relaxed);
        if d < Self::FILTER_REBUILD_MIN_DELETES || d * 4 < self.len() {
            return false;
        }
        let Some(_build) = self.filter_build.try_lock() else {
            return false; // a (re)build is already running
        };
        self.merge_pending_range(V::MIN_VALUE, V::MAX_VALUE);
        self.build_and_publish_filter();
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_filter_rebuilds_total").inc();
        }
        true
    }

    /// The shared filter (re)build: walks the published snapshot plus the
    /// unmerged pending inserts into a fresh filter and publishes it
    /// (replacing any previous filter through the epoch cell). Caller
    /// holds `filter_build`.
    fn build_and_publish_filter(&self) {
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_filter_builds_total").inc();
        }
        // Deletes queued from here on count against the *new* filter.
        self.filter_deletes.store(0, Relaxed);
        self.ensure_snapshot();
        let _shared = self.structure.read();
        let guard = self.snap.epochs().pin();
        let Some(snap) = self.snap.load(&guard) else {
            return; // unreachable: ensure_snapshot just published
        };
        // Slack covers the pending backlog plus a churn allowance; a filter
        // overwhelmed by delete churn is replaced wholesale by
        // [`CrackerColumn::maybe_rebuild_point_filter`], never resized.
        let expected = snap.len() + self.pending.lock().len() + 1024;
        let filter = Arc::new(PointFilter::with_capacity(expected));
        for piece in snap.pieces() {
            piece.for_each(|v| filter.insert(v.as_i64()));
        }
        let p = self.pending.lock();
        p.for_each_unmerged(
            |_| true,
            |v, kind| {
                if matches!(kind, UnmergedKind::Insert) {
                    filter.insert(v.as_i64());
                }
            },
        );
        self.filter.publish(filter);
    }

    /// Runs one reclamation cycle on retired point filters (a filter is
    /// only retired if a future rebuild republishes; harmless otherwise).
    pub fn point_filter_gc(&self) -> usize {
        self.filter.collect()
    }

    /// Builds and publishes the first snapshot (one-time O(N) copy at
    /// current live granularity). No-op once published.
    fn ensure_snapshot(&self) {
        if self.snap.is_published() {
            return;
        }
        let _exclusive = self.structure.write();
        if self.snap.is_published() {
            return; // lost the build race
        }
        let pieces = self.copy_live_pieces(None, None, false, false);
        self.splice_and_publish(None, None, pieces, None);
    }

    /// Amortised snapshot maintenance after an expensive edge filter: for
    /// each non-sentinel bound, merge the pending updates of the bound's
    /// piece, crack the live bound without blocking (skipped on latch
    /// contention), and replace **only the snapshot piece containing the
    /// bound** with copies at live granularity. Copy cost is the edge
    /// piece's size — interior pieces of the scanned range are already
    /// served O(1) from their aggregates and are never copied. Runs under
    /// `structure` *shared* — Ripple merges are excluded for the
    /// copy-publish window, concurrent cracks are isolated per piece by
    /// read latches.
    fn refresh_snapshot(&self, pred: Predicate<V>, scratch: &mut CrackScratch<V>) {
        if pred.lo != V::MIN_VALUE {
            self.refresh_bound(pred.lo, scratch);
        }
        if pred.hi != V::MAX_VALUE {
            self.refresh_bound(pred.hi, scratch);
        }
    }

    /// One bound's refresh: see [`CrackerColumn::refresh_snapshot`].
    fn refresh_bound(&self, v: V, scratch: &mut CrackScratch<V>) {
        // The pending overlay already keeps snapshot answers exact, so a
        // refresh only merges when the backlog is large enough that the
        // per-scan overlay cost matters — a snapshot-only workload still
        // cannot grow the queue without bound, but a snapshot reader does
        // not queue behind the exclusive merge lock for a handful of
        // updates some locked query will merge anyway.
        if self.pending.lock().len() > Self::REFRESH_MERGE_BACKLOG {
            self.merge_pending_for_piece_of(v);
        }
        let _shared = self.structure.read();
        if self.crack_bound(v, scratch, false).is_none() {
            return; // bound piece latched elsewhere — retry on a later scan
        }
        // Anchors of the point range [v, succ(v)): exactly the snapshot
        // piece(s) the bound falls into.
        let (a, b, encoded) = self.snapshot_anchors(v, Self::succ(v));
        let mid = self.copy_live_pieces(a, b, true, encoded);
        self.splice_and_publish(a, b, mid, None);
    }

    /// Background snapshot maintenance (an idle holistic worker's job):
    /// refreshes the *stalest* published snapshot piece — the largest one
    /// whose value range the live cracker index has already split further —
    /// to live granularity, so the first unlucky reader stops paying the
    /// copy. Piece choice reuses the published plan-time statistics (the
    /// planner's staleness stat) instead of walking the live index; both
    /// anchor keys are snapshot boundaries, which are always live
    /// boundaries, so staleness of the summary can only make the pick
    /// suboptimal, never wrong. Runs under `structure` *shared* with
    /// per-piece read latches, exactly like a reader-triggered refresh.
    ///
    /// Returns `true` when a piece was refreshed (`false`: no snapshot, or
    /// its piece table already matches the live granularity the summary
    /// sees).
    pub fn refresh_stale_snapshot(&self) -> bool {
        let Some(stats) = self.piece_stats() else {
            return false;
        };
        let Some(snap_pieces) = stats.snap_pieces.as_ref() else {
            return false;
        };
        // Largest snapshot piece with a live boundary that splits it into
        // two non-empty halves. The *position* check matters: a boundary
        // of an empty live piece sits at the edge position, its "split"
        // copies the same pieces back (empty pieces are skipped), and a
        // key-only check would pick that piece forever.
        let mut lo_key: Option<V> = None;
        let mut best: Option<(usize, Option<V>, Option<V>, bool)> = None;
        for piece in snap_pieces {
            let (hi_key, len) = (piece.hi_key, piece.len);
            let from = match lo_key {
                None => 0,
                Some(k) => stats.bounds.partition_point(|&(b, _)| b <= k),
            };
            let to = match hi_key {
                None => stats.bounds.len(),
                Some(k) => stats.bounds.partition_point(|&(b, _)| b < k),
            };
            let pos_lo = if from == 0 {
                0
            } else {
                stats.bounds[from - 1].1
            };
            let pos_hi = if to < stats.bounds.len() {
                stats.bounds[to].1
            } else {
                stats.len
            };
            // First interior boundary past the piece's start position;
            // positions are non-decreasing, so one binary search decides.
            let interior = &stats.bounds[from..to];
            let split = interior.partition_point(|&(_, p)| p <= pos_lo);
            let refreshable = split < interior.len() && interior[split].1 < pos_hi;
            if refreshable && best.as_ref().is_none_or(|&(l, _, _, _)| len > l) {
                best = Some((len, lo_key, hi_key, !piece.plain));
            }
            lo_key = hi_key;
        }
        let Some((_, a, b, encoded)) = best else {
            return false;
        };
        let before = self.snapshot_piece_count();
        let _shared = self.structure.read();
        // A refresh of an already-morphed piece goes straight back into
        // encoded form — the copies land compressed, so the background
        // refresh loop no longer re-plains what the morpher encoded.
        let mid = self.copy_live_pieces(a, b, true, encoded);
        self.splice_and_publish(a, b, mid, None);
        drop(_shared);
        // Republish immediately so a refresh loop converges on fresh
        // staleness instead of re-picking the same piece.
        self.publish_stats();
        // Progress guard: with a stride-sampled boundary table the
        // position check above can misjudge (sampled positions only
        // bracket the truth), so a refresh that did not actually split
        // anything reports `false` — callers looping "refresh until done"
        // terminate instead of re-copying the same piece forever.
        let refreshed = self.snapshot_piece_count() > before;
        if refreshed && holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_snapshot_refreshes_total").inc();
        }
        refreshed
    }

    /// Plain snapshot pieces shorter than this are never re-encoded: the
    /// fixed per-segment overhead dominates and edge refreshes would churn
    /// them right back to plain.
    pub const MORPH_MIN: usize = 256;

    /// Background segment morphing (an idle holistic worker's job): picks
    /// the largest *plain* snapshot piece of at least
    /// [`CrackerColumn::MORPH_MIN`] values whose sorted form compresses
    /// (FOR / delta / RLE — see [`Segment::encoded`]) and republishes it as
    /// an encoded segment through the same COW-splice a refresh uses, so
    /// readers never block and `snapshot_bytes` drops by exactly the saved
    /// backing size. Returns `true` when a piece was morphed (`false`: no
    /// snapshot, or no remaining plain piece compresses).
    ///
    /// Runs under `structure` *shared*, which excludes Ripple merges — the
    /// only multiset-changing writers — for the copy-encode-splice window:
    /// concurrent cracks merely permute values inside live pieces and never
    /// touch the immutable snapshot, and a racing per-bound refresh can at
    /// worst overwrite this morph's piece with finer plain copies of the
    /// *same* multiset (granularity lost, never correctness).
    pub fn morph_cold_segments(&self) -> bool {
        if !self.snap.is_published() {
            return false;
        }
        let _shared = self.structure.read();
        // Candidate plain pieces, largest first. Values are copied and
        // encoded LAZILY, one candidate at a time — most calls stop at the
        // first (largest) piece, so a call never materialises more than
        // one piece's values even over a snapshot full of plain pieces.
        // The pin stays held across the encode + splice: it only delays
        // reclamation of retired segments until the next gc.
        let guard = self.snap.epochs().pin();
        let Some(snap) = self.snap.load(&guard) else {
            return false;
        };
        let pieces = snap.pieces();
        let mut order: Vec<usize> = (0..pieces.len())
            .filter(|&i| pieces[i].is_plain() && pieces[i].len() >= Self::MORPH_MIN)
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(pieces[i].len()));
        let mut morphed = false;
        for i in order {
            let a = if i == 0 { None } else { pieces[i - 1].hi_key };
            let b = pieces[i].hi_key;
            let vals = pieces[i]
                .plain_values()
                .expect("candidate piece is plain")
                .to_vec();
            let n = vals.len();
            let seg = Segment::encoded(vals, Arc::clone(&self.snap_bytes));
            if seg.is_plain() {
                continue; // no scheme beats plain here — try the next piece
            }
            let piece = SnapPiece::new(b, Arc::new(seg), 0, n);
            self.splice_and_publish(a, b, vec![piece], None);
            morphed = true;
            break;
        }
        drop(guard);
        drop(_shared);
        if morphed {
            // Republish stats so the planner's decode-cost term and the
            // staleness pick see the encoded piece immediately.
            self.publish_stats();
            if holix_telemetry::metrics_enabled() {
                holix_telemetry::counter!("cracking_segment_morphs_total").inc();
            }
        }
        morphed
    }

    /// The published snapshot's boundary keys bracketing `[lo, hi)`:
    /// `a` = greatest snapshot boundary `<= lo` (`None` = column-min side),
    /// `b` = least snapshot boundary `>= hi` (`None` = column-max side).
    /// Snapshot boundaries are a subset of live boundaries (boundaries are
    /// never removed and snapshots are built from live pieces), so both
    /// anchors are exact lookups in the live index; and because concurrent
    /// publishes only ever *refine* piece tables, anchors stay valid
    /// splice points even if another refresh lands in between.
    ///
    /// Caller holds a structure lock (any mode) so merges cannot run. The
    /// snapshot is read under the pending mutex *without* an epoch pin
    /// (publishers must never spin on reader-held pin slots while holding
    /// the structure lock — see [`SnapshotCell::load_publisher`]).
    /// Besides the anchors, reports whether any replaced piece of the span
    /// is encoded — the refresh then re-encodes its copies instead of
    /// spilling them plain ([`CrackerColumn::copy_live_pieces`]).
    fn snapshot_anchors(&self, lo: V, hi: V) -> (Option<V>, Option<V>, bool) {
        let _p = self.pending.lock();
        let Some(snap) = self.snap.load_publisher() else {
            return (None, None, false);
        };
        let (a, b) = Self::anchors_in(snap.pieces(), lo, hi);
        (a, b, Self::span_has_encoded(snap.pieces(), lo, hi))
    }

    /// `true` when any snapshot piece intersecting `[lo, hi)` is encoded.
    fn span_has_encoded(pieces: &[SnapPiece<V>], lo: V, hi: V) -> bool {
        let i = pieces.partition_point(|p| p.hi_key.is_some_and(|k| k <= lo));
        for p in &pieces[i..] {
            if !p.is_plain() {
                return true;
            }
            match p.hi_key {
                None => break,
                Some(k) if k >= hi => break,
                _ => {}
            }
        }
        false
    }

    /// [`CrackerColumn::snapshot_anchors`] over an already-loaded piece
    /// table — batch callers (the multi-cluster merge splice) resolve all
    /// their anchors in one pending-mutex critical section.
    fn anchors_in(pieces: &[SnapPiece<V>], lo: V, hi: V) -> (Option<V>, Option<V>) {
        let i = pieces.partition_point(|p| p.hi_key.is_some_and(|k| k <= lo));
        let a = if i == 0 { None } else { pieces[i - 1].hi_key };
        let b = if hi == V::MAX_VALUE {
            None
        } else {
            let j = pieces.partition_point(|p| p.hi_key.is_some_and(|k| k < hi));
            if j >= pieces.len() {
                None
            } else {
                pieces[j].hi_key
            }
        };
        (a, b)
    }

    /// Copies the live pieces covering `[a, b)` (both anchors are live
    /// boundary keys, `None` = column edge) into fresh snapshot pieces.
    /// With `latched`, each piece is copied under its read latch (caller
    /// holds `structure` shared; concurrent cracks of *other* pieces
    /// proceed); otherwise the caller holds `structure` exclusively.
    /// With `encode`, copies of at least [`CrackerColumn::MORPH_MIN`]
    /// values go straight through [`Segment::encoded`] — a refresh that
    /// replaces already-morphed pieces keeps them compressed instead of
    /// re-materialising plain and waiting for the morpher (no transient
    /// footprint spike). Empty pieces are skipped — scans treat the
    /// uncovered key as part of the neighbouring piece's range, which only
    /// widens the conservative edge-filter check.
    fn copy_live_pieces(
        &self,
        a: Option<V>,
        b: Option<V>,
        latched: bool,
        encode: bool,
    ) -> Vec<SnapPiece<V>> {
        let mut out = Vec::new();
        let mut cur = a;
        loop {
            let Some(p) = self.index.read().piece_after(cur) else {
                debug_assert!(false, "snapshot anchor {cur:?} is not a live boundary");
                break;
            };
            let (vals, hi_key) = if latched {
                let _g = p.latch.lock_read();
                // Revalidate under the latch: the piece may have split
                // since the lookup (its start and latch are stable; only
                // the extent can shrink).
                let Some(q) = self.index.read().piece_after(cur) else {
                    break;
                };
                // SAFETY: read latch on the piece excludes its writers;
                // `structure` shared excludes vector moves.
                (
                    unsafe { self.vals.read_range(q.start, q.end) }.to_vec(),
                    q.hi_key,
                )
            } else {
                // SAFETY: `structure` exclusive — no live mutators at all.
                (
                    unsafe { self.vals.read_range(p.start, p.end) }.to_vec(),
                    p.hi_key,
                )
            };
            if !vals.is_empty() {
                let n = vals.len();
                let seg = if encode && n >= Self::MORPH_MIN {
                    Segment::encoded(vals, Arc::clone(&self.snap_bytes))
                } else {
                    Segment::new(vals, Arc::clone(&self.snap_bytes))
                };
                out.push(SnapPiece::new(hi_key, Arc::new(seg), 0, n));
            }
            match (hi_key, b) {
                (None, _) => break,
                (Some(k), Some(bk)) if k >= bk => break,
                (key, _) => cur = key,
            }
        }
        out
    }

    /// [`CrackerColumn::splice_multi_and_publish`] for a single span.
    fn splice_and_publish(
        &self,
        a: Option<V>,
        b: Option<V>,
        mid: Vec<SnapPiece<V>>,
        finish: Option<u64>,
    ) {
        self.splice_multi_and_publish(vec![(a, b, mid)], finish);
    }

    /// Publishes a new snapshot that replaces, for each span `(a, b, mid)`
    /// (ascending, disjoint), every piece covering the value range `[a, b)`
    /// with `mid` — sharing the segments of every untouched piece,
    /// including interior pieces *between* the spans of one sparse wide
    /// merge. Runs under the pending mutex (the reader linearisation
    /// point); `finish` clears an in-flight merge batch in the same
    /// critical section, so readers switch from "old snapshot + in-flight
    /// items" to "new snapshot" atomically. The replaced snapshot is
    /// retired into the epoch domain.
    ///
    /// Caller holds a structure lock (exclusive for merges/builds, shared
    /// for refreshes).
    fn splice_multi_and_publish(&self, spans: Vec<SpliceSpan<V>>, finish: Option<u64>) {
        let mut p = self.pending.lock();
        let new = match self.snap.load_publisher() {
            None => {
                debug_assert!(
                    spans.len() <= 1,
                    "first publish is at most one whole-column span"
                );
                PieceSnapshot::new(
                    spans
                        .into_iter()
                        .next()
                        .map(|(_, _, m)| m)
                        .unwrap_or_default(),
                )
            }
            Some(old) => {
                let pieces = old.pieces();
                let mid_total: usize = spans.iter().map(|(_, _, m)| m.len()).sum();
                let mut v = Vec::with_capacity(pieces.len() + mid_total);
                let mut cursor = 0usize;
                for (a, b, mid) in spans {
                    let i = match a {
                        None => 0,
                        Some(av) => pieces.partition_point(|q| q.hi_key.is_some_and(|k| k <= av)),
                    };
                    let j = match b {
                        None => pieces.len(),
                        Some(bv) => pieces.partition_point(|q| q.hi_key.is_some_and(|k| k <= bv)),
                    };
                    let i = i.max(cursor);
                    v.extend(pieces[cursor..i].iter().cloned());
                    v.extend(mid);
                    cursor = j.max(i);
                }
                v.extend(pieces[cursor..].iter().cloned());
                PieceSnapshot::new(v)
            }
        };
        let old = self.snap.swap(Arc::new(new));
        if let Some(token) = finish {
            p.finish_merge(token);
        }
        // Retire (and possibly free O(column) bytes of) the replaced
        // snapshot only after the reader linearisation lock is released.
        drop(p);
        if let Some(old) = old {
            self.snap.retire(old);
        }
        self.bump_stats();
    }

    // ------------------------------------------------------------------
    // Verification / instrumentation
    // ------------------------------------------------------------------

    /// Select plus an exclusive checksum scan of the qualifying range. Used
    /// by tests and verification modes; concurrent refinements between the
    /// select and the scan are harmless (they only permute inside the
    /// range), concurrent *updates* are the caller's responsibility.
    pub fn select_verified(
        &self,
        pred: Predicate<V>,
        scratch: &mut CrackScratch<V>,
    ) -> (Selection, RangeStats) {
        let sel = self.select(pred, scratch);
        let _exclusive = self.structure.write();
        // SAFETY: exclusive structure lock — no live mutators.
        let slice = unsafe { self.vals.read_range(sel.start, sel.end) };
        (sel, holix_storage::select::slice_stats(slice))
    }

    /// Copies the values in cracked positions `[start, end)` (exclusive
    /// access for the duration of the copy). Used by consolidation in the
    /// chunked variants and by verification code.
    pub fn snapshot_range(&self, start: usize, end: usize) -> Vec<V> {
        let _exclusive = self.structure.write();
        // SAFETY: exclusive structure lock — no live mutators.
        unsafe { self.vals.read_range(start, end) }.to_vec()
    }

    /// Atomically copies the values currently in `[pred.lo, pred.hi)`.
    /// Both bounds must already be boundaries (run `select` first to crack
    /// them); the bounds are re-located *under the exclusive structure
    /// lock*, so the copy is a consistent snapshot of the merged state at
    /// one instant even when Ripple merges shifted positions since the
    /// select. `None` when a non-sentinel bound is not an exact boundary —
    /// callers fall back to per-query execution.
    pub fn collect_range(&self, pred: Predicate<V>) -> Option<Vec<V>> {
        if pred.is_empty() {
            return Some(Vec::new());
        }
        let _exclusive = self.structure.write();
        let idx = self.index.read();
        let start = if pred.lo == V::MIN_VALUE {
            0
        } else {
            match idx.locate(pred.lo) {
                BoundLookup::Exact(p) => p,
                BoundLookup::Piece { .. } => return None,
            }
        };
        let end = if pred.hi == V::MAX_VALUE {
            idx.len()
        } else {
            match idx.locate(pred.hi) {
                BoundLookup::Exact(p) => p,
                BoundLookup::Piece { .. } => return None,
            }
        };
        // SAFETY: exclusive structure lock — no live mutators.
        Some(unsafe { self.vals.read_range(start, end.max(start)) }.to_vec())
    }

    /// Atomically copies the *base-table row ids* currently in
    /// `[pred.lo, pred.hi)`. Same boundary contract and locking as
    /// [`CrackerColumn::collect_range`] (run `select` first; `None` when a
    /// non-sentinel bound is not an exact boundary). Conjunction execution
    /// collects the driver term's row ids here and probes the remaining
    /// attributes positionally in the base table.
    pub fn collect_row_ids(&self, pred: Predicate<V>) -> Option<Vec<RowId>> {
        if pred.is_empty() {
            return Some(Vec::new());
        }
        let _exclusive = self.structure.write();
        let idx = self.index.read();
        let start = if pred.lo == V::MIN_VALUE {
            0
        } else {
            match idx.locate(pred.lo) {
                BoundLookup::Exact(p) => p,
                BoundLookup::Piece { .. } => return None,
            }
        };
        let end = if pred.hi == V::MAX_VALUE {
            idx.len()
        } else {
            match idx.locate(pred.hi) {
                BoundLookup::Exact(p) => p,
                BoundLookup::Piece { .. } => return None,
            }
        };
        // SAFETY: exclusive structure lock — no live mutators.
        Some(unsafe { self.rows.read_range(start, end.max(start)) }.to_vec())
    }

    /// Panics unless every cracking invariant holds. When `base` is given
    /// (and no updates ran), also checks value/rowid alignment and that the
    /// stored multiset is a permutation of the base.
    pub fn check_invariants(&self, base: Option<&[V]>) {
        let _exclusive = self.structure.write();
        let idx = self.index.read();
        let n = idx.len();
        // SAFETY: exclusive structure lock.
        let vals = unsafe { self.vals.read_range(0, n) };
        let rows = unsafe { self.rows.read_range(0, n) };
        assert_eq!(vals.len(), n);
        assert_eq!(rows.len(), n);

        let bounds = idx.bounds_in_order();
        for w in bounds.windows(2) {
            assert!(w[0].1 <= w[1].1, "bound positions must be non-decreasing");
        }
        let mut prev_key: Option<V> = None;
        let mut prev_pos = 0usize;
        for &(key, pos) in bounds.iter().chain(std::iter::once(&(V::MAX_VALUE, n))) {
            for &v in &vals[prev_pos..pos] {
                if let Some(pk) = prev_key {
                    assert!(v >= pk, "value {v:?} below piece lower key {pk:?}");
                }
                // `key` may be MAX_VALUE sentinel for the last piece; values
                // equal to MAX_VALUE are then legal.
                if key != V::MAX_VALUE || pos != n {
                    assert!(v < key, "value {v:?} not below boundary key {key:?}");
                }
            }
            prev_key = Some(key);
            prev_pos = pos;
        }

        if let Some(base) = base {
            assert_eq!(base.len(), n);
            let mut seen = vec![false; n];
            for (i, (&v, &r)) in vals.iter().zip(rows).enumerate() {
                assert_eq!(
                    base[r as usize], v,
                    "misaligned rowid at cracked position {i}"
                );
                assert!(!seen[r as usize], "duplicate rowid {r}");
                seen[r as usize] = true;
            }
        }
    }
}

impl<V: CrackValue> std::fmt::Debug for CrackerColumn<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrackerColumn")
            .field("name", &self.name)
            .field("len", &self.len())
            .field("pieces", &self.piece_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_storage::select::scan_stats;
    use rand::prelude::*;

    fn column(n: usize, seed: u64) -> (Vec<i64>, CrackerColumn<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<i64> = (0..n).map(|_| rng.random_range(0..1_000)).collect();
        let col = CrackerColumn::from_base("a", &base);
        (base, col)
    }

    #[test]
    fn first_select_cracks_and_matches_scan() {
        let (base, col) = column(10_000, 1);
        let mut scratch = CrackScratch::new();
        let pred = Predicate::range(100, 400);
        let (sel, stats) = col.select_verified(pred, &mut scratch);
        assert_eq!(stats, scan_stats(&base, pred));
        assert_eq!(sel.count(), stats.count);
        assert!(!sel.exact_hit());
        col.check_invariants(Some(&base));
    }

    #[test]
    fn repeated_select_is_exact_hit_and_touches_nothing() {
        let (_, col) = column(10_000, 2);
        let mut scratch = CrackScratch::new();
        let pred = Predicate::range(100, 400);
        let first = col.select(pred, &mut scratch);
        assert!(first.touched > 0);
        let second = col.select(pred, &mut scratch);
        assert!(second.exact_hit());
        assert_eq!(second.touched, 0);
        assert_eq!((second.start, second.end), (first.start, first.end));
    }

    #[test]
    fn successive_queries_touch_less() {
        let (base, col) = column(50_000, 3);
        let mut scratch = CrackScratch::new();
        let mut rng = StdRng::seed_from_u64(33);
        let mut prev_pieces = col.piece_count();
        for _ in 0..100 {
            let a = rng.random_range(0..1_000);
            let b = rng.random_range(0..1_000);
            let pred = Predicate::range(a.min(b), a.max(b));
            let (_, stats) = col.select_verified(pred, &mut scratch);
            assert_eq!(stats, scan_stats(&base, pred));
            assert!(col.piece_count() >= prev_pieces);
            prev_pieces = col.piece_count();
        }
        col.check_invariants(Some(&base));
        assert!(col.piece_count() > 100);
    }

    #[test]
    fn one_sided_predicates() {
        let (base, col) = column(5_000, 4);
        let mut scratch = CrackScratch::new();
        for hi in [0, 1, 500, 999, 1_000] {
            let pred = Predicate::less_than(hi);
            let (sel, stats) = col.select_verified(pred, &mut scratch);
            assert_eq!(stats, scan_stats(&base, pred), "hi={hi}");
            assert_eq!(sel.start, 0);
        }
        let pred = Predicate::at_least(500);
        let (sel, stats) = col.select_verified(pred, &mut scratch);
        assert_eq!(stats, scan_stats(&base, pred));
        assert_eq!(sel.end, base.len());
    }

    #[test]
    fn crack_in_three_used_for_fresh_column() {
        let (base, col) = column(5_000, 5);
        let mut scratch = CrackScratch::new();
        let pred = Predicate::range(300, 600);
        let sel = col.select(pred, &mut scratch);
        // Both bounds in the single initial piece → one pass over the piece.
        assert_eq!(sel.touched, base.len());
        assert_eq!(col.piece_count(), 3);
    }

    #[test]
    fn refine_at_splits_pieces() {
        let (base, col) = column(5_000, 6);
        let mut scratch = CrackScratch::new();
        assert!(matches!(
            col.refine_at(500, &mut scratch),
            RefineOutcome::Refined { .. }
        ));
        assert!(matches!(
            col.refine_at(500, &mut scratch),
            RefineOutcome::AlreadyBound
        ));
        assert_eq!(col.piece_count(), 2);
        col.check_invariants(Some(&base));
    }

    #[test]
    fn refine_busy_when_piece_latched() {
        let (_, col) = column(5_000, 7);
        let mut scratch = CrackScratch::new();
        // Latch the only piece by hand.
        let latch = match col.index.read().locate(500) {
            BoundLookup::Piece { latch, .. } => latch,
            _ => panic!(),
        };
        let guard = latch.lock_write();
        assert_eq!(col.refine_at(500, &mut scratch), RefineOutcome::Busy);
        drop(guard);
        assert!(matches!(
            col.refine_at(500, &mut scratch),
            RefineOutcome::Refined { .. }
        ));
    }

    #[test]
    fn refine_random_converges_to_small_pieces() {
        let (base, col) = column(20_000, 8);
        let mut scratch = CrackScratch::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            col.refine_random(&mut rng, &mut scratch, 4);
        }
        assert!(col.piece_count() > 100);
        assert!(col.avg_piece_len() < base.len() / 100);
        col.check_invariants(Some(&base));
    }

    #[test]
    fn concurrent_queries_and_refiners_preserve_invariants() {
        let (base, col) = column(100_000, 9);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let col = &col;
                s.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    let mut scratch = CrackScratch::new();
                    for _ in 0..200 {
                        let a = rng.random_range(0..1_000);
                        let b = rng.random_range(0..1_000);
                        col.select(Predicate::range(a.min(b), a.max(b)), &mut scratch);
                    }
                });
            }
            for t in 0..4 {
                let col = &col;
                s.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(200 + t);
                    let mut scratch = CrackScratch::new();
                    for _ in 0..500 {
                        col.refine_random(&mut rng, &mut scratch, 8);
                    }
                });
            }
        })
        .unwrap();
        col.check_invariants(Some(&base));
        // And results are still correct afterwards.
        let mut scratch = CrackScratch::new();
        let pred = Predicate::range(250, 750);
        let (_, stats) = col.select_verified(pred, &mut scratch);
        assert_eq!(stats, scan_stats(&base, pred));
    }

    #[test]
    fn updates_merge_on_select() {
        let (mut base, col) = column(10_000, 10);
        let mut scratch = CrackScratch::new();
        // Crack a bit first.
        col.select(Predicate::range(200, 700), &mut scratch);
        // Queue inserts, two of which fall in the probed range.
        let n = base.len() as RowId;
        for (i, v) in [250i64, 650, 900].into_iter().enumerate() {
            col.queue_insert(v, n + i as RowId);
            base.push(v);
        }
        assert_eq!(col.pending_len(), 3);
        let pred = Predicate::range(200, 700);
        let (_, stats) = col.select_verified(pred, &mut scratch);
        assert_eq!(stats, scan_stats(&base, pred));
        assert_eq!(col.pending_len(), 1); // 900 still pending
        col.check_invariants(None);
    }

    #[test]
    fn deletes_merge_on_select() {
        let (base, col) = column(1_000, 11);
        let mut scratch = CrackScratch::new();
        col.select(Predicate::range(100, 800), &mut scratch);
        // Delete the first base row whose value is in [100, 800).
        let (victim_row, victim_val) = base
            .iter()
            .enumerate()
            .find(|(_, &v)| (100..800).contains(&v))
            .map(|(i, &v)| (i as RowId, v))
            .unwrap();
        col.queue_delete(victim_val, victim_row);
        let pred = Predicate::range(100, 800);
        let (_, stats) = col.select_verified(pred, &mut scratch);
        let mut expect = scan_stats(&base, pred);
        expect.count -= 1;
        expect.sum -= victim_val as i128;
        assert_eq!(stats, expect);
        col.check_invariants(None);
    }

    #[test]
    fn empty_predicate_short_circuits() {
        let (_, col) = column(100, 12);
        let mut scratch = CrackScratch::new();
        let sel = col.select(Predicate::range(10, 10), &mut scratch);
        assert_eq!(sel.count(), 0);
        assert_eq!(col.piece_count(), 1);
    }

    #[test]
    fn empty_column() {
        let col = CrackerColumn::<i64>::from_base("e", &[]);
        let mut scratch = CrackScratch::new();
        let sel = col.select(Predicate::range(0, 10), &mut scratch);
        assert_eq!(sel.count(), 0);
        assert_eq!(col.domain(), None);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            col.refine_random(&mut rng, &mut scratch, 3),
            RefineOutcome::AlreadyBound
        );
    }

    #[test]
    fn snapshot_scan_matches_oracle_and_refreshes_granularity() {
        let (base, col) = column(50_000, 20);
        let mut scratch = CrackScratch::new();
        assert!(!col.snapshot_published());
        // First snapshot read: builds the snapshot (one coarse piece),
        // filters everything, then refreshes to live granularity.
        let pred = Predicate::range(200, 600);
        let scan = col.snapshot_scan(pred, &mut scratch);
        let oracle = scan_stats(&base, pred);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        assert!(col.snapshot_published());
        assert!(
            scan.filtered >= base.len(),
            "cold snapshot filters the column"
        );
        // The refresh cracked the live bounds and split the snapshot piece.
        let again = col.snapshot_scan(pred, &mut scratch);
        assert_eq!((again.count, again.sum), (oracle.count, oracle.sum));
        assert_eq!(again.filtered, 0, "refreshed snapshot needs no filtering");
        assert!(col.snapshot_piece_count() >= 3);
        // Sentinel (one-sided) predicates.
        for pred in [Predicate::less_than(300), Predicate::at_least(700)] {
            let scan = col.snapshot_scan(pred, &mut scratch);
            let oracle = scan_stats(&base, pred);
            assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        }
        col.check_invariants(Some(&base));
    }

    #[test]
    fn snapshot_sees_pending_updates_without_merging() {
        let (mut base, col) = column(10_000, 21);
        let mut scratch = CrackScratch::new();
        col.select(Predicate::range(100, 900), &mut scratch);
        let pred = Predicate::range(0, 1_000);
        // Publish a snapshot, then queue updates *after* it.
        col.snapshot_scan(pred, &mut scratch);
        let n = base.len() as RowId;
        col.queue_insert(250, n);
        col.queue_insert(750, n + 1);
        base.push(250);
        base.push(750);
        let victim = base.iter().position(|&v| (300..700).contains(&v)).unwrap();
        col.queue_delete(base[victim], victim as RowId);
        let removed = base.remove(victim);
        let _ = removed;
        // Unmerged updates must be visible immediately (pending overlay) …
        let scan = col.snapshot_scan(pred, &mut scratch);
        let oracle = scan_stats(&base, pred);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        // … and still after a locked select forces the Ripple merge + COW
        // splice (snapshot republished with the merged pieces).
        let (_, locked) = col.select_verified(pred, &mut scratch);
        assert_eq!(locked, oracle);
        let scan = col.snapshot_scan(pred, &mut scratch);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        col.check_invariants(None);
    }

    #[test]
    fn snapshot_collect_matches_filtered_base() {
        let (mut base, col) = column(20_000, 22);
        let mut scratch = CrackScratch::new();
        let pred = Predicate::range(300, 700);
        col.snapshot_scan(pred, &mut scratch); // publish + refresh
        let n = base.len() as RowId;
        col.queue_insert(350, n); // stays pending: overlay must add it
        base.push(350);
        let mut got = Vec::new();
        let scan = col.snapshot_collect(pred, &mut scratch, &mut got);
        got.sort_unstable();
        let mut want: Vec<i64> = base
            .iter()
            .copied()
            .filter(|&v| (300..700).contains(&v))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(scan.count as usize, want.len());
    }

    #[test]
    fn snapshot_reclamation_frees_retired_segments() {
        let (base, col) = column(20_000, 23);
        let mut scratch = CrackScratch::new();
        let full = Predicate::range(0, 1_000);
        col.snapshot_scan(full, &mut scratch);
        let base_bytes = base.len() * std::mem::size_of::<i64>();
        // Crack-heavy loop with Ripple merges: every merge retires a
        // snapshot version. Live snapshot bytes must stay bounded by the
        // column size (plus transient garbage), not grow with iterations.
        let mut rng = StdRng::seed_from_u64(77);
        for i in 0..60 {
            let v = rng.random_range(0..1_000);
            col.queue_insert(v, (base.len() + i) as RowId);
            col.select(Predicate::range(v.saturating_sub(5), v + 5), &mut scratch);
            col.refine_random(&mut rng, &mut scratch, 4);
            col.snapshot_scan(full, &mut scratch);
        }
        col.snapshot_gc();
        let settled = col.snapshot_bytes();
        assert!(
            settled <= 2 * base_bytes,
            "snapshot bytes grew unbounded: {settled} vs column {base_bytes}"
        );
        // A pinned reader keeps retired versions alive …
        let guard = col.snapshot_pin();
        for i in 0..20 {
            let v = rng.random_range(0..1_000);
            col.queue_insert(v, (base.len() + 100 + i) as RowId);
            col.select(Predicate::range(v.saturating_sub(5), v + 5), &mut scratch);
        }
        let pinned_bytes = col.snapshot_bytes();
        assert!(
            pinned_bytes > settled,
            "pinned epoch should hold retired segments ({pinned_bytes} vs {settled})"
        );
        // … and dropping the pin lets reclamation free them.
        drop(guard);
        assert!(col.snapshot_gc() > 0, "dropping the pin frees garbage");
        assert!(
            col.snapshot_bytes() <= 2 * base_bytes,
            "bytes after unpin: {}",
            col.snapshot_bytes()
        );
    }

    #[test]
    fn concurrent_snapshot_scans_with_cracks_and_merges() {
        let (base, col) = column(60_000, 24);
        let full = Predicate::range(0, 1_000);
        let base_stats = scan_stats(&base, full);
        // Updaters insert value 7 and delete their own inserts, so at any
        // instant count == base + (inserts applied - deletes applied) and
        // sum == base_sum + 7 * that delta — a torn read would break the
        // coupling between count and sum.
        crossbeam::thread::scope(|s| {
            for t in 0..2 {
                let col = &col;
                s.spawn(move |_| {
                    let mut scratch = CrackScratch::new();
                    let mut rng = StdRng::seed_from_u64(400 + t);
                    for i in 0..150 {
                        let row = 1_000_000 + (t as RowId) * 10_000 + i;
                        col.queue_insert(7, row);
                        col.select(Predicate::range(0, 20), &mut scratch); // merge
                        col.queue_delete(7, row);
                        if rng.random_range(0..2) == 0 {
                            col.select(Predicate::range(0, 20), &mut scratch);
                        }
                    }
                });
            }
            for t in 0..2 {
                let col = &col;
                s.spawn(move |_| {
                    let mut scratch = CrackScratch::new();
                    let mut rng = StdRng::seed_from_u64(500 + t);
                    for _ in 0..300 {
                        col.refine_random(&mut rng, &mut scratch, 4);
                    }
                });
            }
            for t in 0..2 {
                let col = &col;
                s.spawn(move |_| {
                    let mut scratch = CrackScratch::new();
                    for _ in 0..200 {
                        let scan = col.snapshot_scan(full, &mut scratch);
                        let delta = scan.count as i128 - base_stats.count as i128;
                        assert!(delta >= 0, "snapshot lost base tuples");
                        assert_eq!(
                            scan.sum - base_stats.sum,
                            7 * delta,
                            "count/sum decoupled: torn snapshot (delta={delta})"
                        );
                        let _ = t;
                    }
                });
            }
        })
        .unwrap();
        // Quiesce: merge the remaining pending ops and compare all paths.
        let mut scratch = CrackScratch::new();
        col.merge_pending_range(i64::MIN, i64::MAX);
        let scan = col.snapshot_scan(full, &mut scratch);
        let (_, locked) = col.select_verified(full, &mut scratch);
        assert_eq!((scan.count, scan.sum), (locked.count, locked.sum));
        assert_eq!((scan.count, scan.sum), (base_stats.count, base_stats.sum));
        col.check_invariants(None);
    }

    #[test]
    fn sparse_wide_merge_shares_interior_pieces() {
        let (base, col) = column(50_000, 30);
        let mut scratch = CrackScratch::new();
        // Crack the live index fine, then publish a snapshot at that
        // granularity (ensure_snapshot copies per live piece).
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            let a = rng.random_range(0..1_000);
            let b = rng.random_range(0..1_000);
            let lo = a.min(b);
            col.select(Predicate::range(lo, a.max(b).max(lo + 1)), &mut scratch);
        }
        let full = Predicate::range(0, 1_000);
        col.snapshot_scan(full, &mut scratch);
        col.snapshot_gc();
        let pieces = col.snapshot_piece_count();
        assert!(pieces > 20, "setup failed to produce a fine snapshot");
        // Pin an epoch so retired versions stay charged: the byte delta
        // below then measures exactly what the merge splice *copied*.
        let before = col.snapshot_bytes();
        let _pin = col.snapshot_pin();
        let n = base.len() as RowId;
        col.queue_insert(2, n);
        col.queue_insert(997, n + 1);
        // One wide select merges both pending items in a single batch
        // whose anchor span covers nearly the whole column.
        let (_, stats) = col.select_verified(full, &mut scratch);
        let mut expect = scan_stats(&base, full);
        expect.count += 2;
        expect.sum += 2 + 997;
        assert_eq!(stats, expect);
        let copied = col.snapshot_bytes() - before;
        // Sharing keeps the copy to the two touched edge clusters — a few
        // pieces' worth, not the whole anchor span. (The old single-span
        // splice copied ~all 50k values here: ~400 KB.)
        let budget = (base.len() / pieces).max(1) * std::mem::size_of::<i64>() * 8;
        assert!(
            copied <= budget,
            "wide sparse merge copied {copied} bytes (budget {budget}); \
             interior pieces were not shared"
        );
        // And the snapshot still answers exactly.
        let scan = col.snapshot_scan(full, &mut scratch);
        assert_eq!((scan.count, scan.sum), (expect.count, expect.sum));
    }

    #[test]
    fn stale_snapshot_refresh_converges_without_readers() {
        let (base, col) = column(60_000, 40);
        let mut scratch = CrackScratch::new();
        let full = Predicate::range(0, 1_000);
        // Publish while the column is coarse …
        col.snapshot_scan(full, &mut scratch);
        let coarse = col.snapshot_piece_count();
        // … then crack the live index far past the snapshot's granularity.
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..60 {
            let a = rng.random_range(0..1_000);
            let b = rng.random_range(0..1_000);
            let lo = a.min(b);
            col.select(Predicate::range(lo, a.max(b).max(lo + 1)), &mut scratch);
        }
        col.publish_stats();
        assert!(col.piece_count() > coarse + 40, "setup cracked too little");
        // Idle-worker refreshes converge the snapshot with NO reader ever
        // paying the copy; the position guard makes the loop terminate.
        // Each round refreshes one stale piece to live granularity, so the
        // loop converges in about as many rounds as the coarse snapshot
        // had refreshable pieces.
        let mut rounds = 0;
        while col.refresh_stale_snapshot() {
            rounds += 1;
            assert!(rounds < 10_000, "refresh loop did not converge");
        }
        assert!(rounds >= 1, "refreshes never ran");
        assert!(
            col.snapshot_piece_count() > coarse + 40,
            "snapshot piece table did not chase the live index \
             ({} snapshot vs {} live pieces)",
            col.snapshot_piece_count(),
            col.piece_count()
        );
        // The first reader after convergence pays no big edge filter and
        // still answers exactly.
        let scan = col.snapshot_scan(full, &mut scratch);
        let oracle = scan_stats(&base, full);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        assert!(
            scan.filtered < CrackerColumn::<i64>::REFRESH_FILTER_MIN,
            "reader still paid {} filtered values",
            scan.filtered
        );
    }

    #[test]
    fn morph_cold_segments_shrinks_bytes_and_keeps_scans_exact() {
        // Domain 0..1_000 → a FOR-packed piece needs ≤ 10 bits/value
        // instead of 64: every big piece compresses.
        let (base, col) = column(60_000, 70);
        let mut scratch = CrackScratch::new();
        assert!(!col.morph_cold_segments(), "no snapshot yet");
        let full = Predicate::range(0, 1_000);
        col.snapshot_scan(full, &mut scratch); // publish
        for (a, b) in [(100, 400), (550, 800), (250, 650)] {
            col.select(Predicate::range(a, b), &mut scratch);
        }
        col.publish_stats();
        while col.refresh_stale_snapshot() {}
        col.snapshot_gc();
        let plain_bytes = col.snapshot_bytes();
        assert!(plain_bytes >= base.len() * 8, "snapshot not at full width");
        // Satellite regression: each morph strictly decreases
        // `snapshot_bytes` once the retired plain segment is reclaimed.
        let mut last = plain_bytes;
        let mut morphs = 0;
        while col.morph_cold_segments() {
            col.snapshot_gc();
            let now = col.snapshot_bytes();
            assert!(now < last, "morph {morphs} did not shrink: {last} -> {now}");
            last = now;
            morphs += 1;
            assert!(morphs < 10_000, "morph loop did not converge");
        }
        assert!(morphs >= 1, "no piece ever morphed");
        assert!(
            last * 4 <= plain_bytes,
            "10-bit FOR pieces should shrink ≥4x: {plain_bytes} -> {last}"
        );
        // Published stats expose the encoded pieces to the planner.
        let stats = col.piece_stats().unwrap();
        let pieces = stats.snap_pieces.as_ref().unwrap();
        assert!(pieces.iter().any(|p| !p.plain), "stats still all-plain");
        // Scans on the compressed form stay exact, edge filters included.
        for pred in [full, Predicate::range(123, 777), Predicate::less_than(450)] {
            let scan = col.snapshot_scan(pred, &mut scratch);
            let oracle = scan_stats(&base, pred);
            assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
            let mut got = Vec::new();
            col.snapshot_collect(pred, &mut scratch, &mut got);
            got.sort_unstable();
            let mut want: Vec<i64> = base
                .iter()
                .copied()
                .filter(|&v| pred.matches_unbounded(v))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "collect diverged on {pred:?}");
        }
        // Updates after the morph stay visible through the overlay and the
        // next merge splice.
        let n = base.len() as RowId;
        assert!(col.queue_insert(500, n));
        let scan = col.snapshot_scan(full, &mut scratch);
        let oracle = scan_stats(&base, full);
        assert_eq!((scan.count, scan.sum), (oracle.count + 1, oracle.sum + 500));
    }

    #[test]
    fn refresh_keeps_morphed_pieces_encoded() {
        // Encoded-refresh satellite: once a piece is morphed, a background
        // refresh that replaces it must land its copies back in encoded
        // form — not re-plain it and wait for the morpher again.
        let (base, col) = column(60_000, 73);
        let mut scratch = CrackScratch::new();
        let full = Predicate::range(0, 1_000);
        col.snapshot_scan(full, &mut scratch); // publish
        for (a, b) in [(100, 400), (550, 800)] {
            col.select(Predicate::range(a, b), &mut scratch);
        }
        col.publish_stats();
        while col.refresh_stale_snapshot() {}
        while col.morph_cold_segments() {}
        col.snapshot_gc();
        let encoded_bytes = col.snapshot_bytes();
        let encoded_pieces = |col: &CrackerColumn<i64>| {
            let stats = col.piece_stats().unwrap();
            let pieces = stats.snap_pieces.as_ref().unwrap();
            pieces.iter().filter(|p| !p.plain).count()
        };
        assert!(encoded_pieces(&col) >= 1, "setup morphed nothing");
        // Crack the live index past the snapshot's granularity again, so
        // the morphed pieces become the stalest ones …
        for (a, b) in [(150, 350), (600, 750), (200, 700)] {
            col.select(Predicate::range(a, b), &mut scratch);
        }
        col.publish_stats();
        // … and let the background refresh loop converge.
        let mut rounds = 0;
        while col.refresh_stale_snapshot() {
            rounds += 1;
            assert!(rounds < 10_000, "refresh loop did not converge");
        }
        assert!(rounds >= 1, "nothing was stale after re-cracking");
        col.snapshot_gc();
        assert!(
            encoded_pieces(&col) >= 1,
            "refresh re-plained every morphed piece"
        );
        // The refreshed-and-re-encoded snapshot stays compact: nowhere near
        // the plain footprint (64 bits/value over a 10-bit domain).
        assert!(
            col.snapshot_bytes() < encoded_bytes * 2,
            "refresh blew the footprint back up: {} vs {encoded_bytes}",
            col.snapshot_bytes()
        );
        // And still answers exactly, collects included.
        for pred in [full, Predicate::range(123, 777)] {
            let scan = col.snapshot_scan(pred, &mut scratch);
            let oracle = scan_stats(&base, pred);
            assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        }
    }

    #[test]
    fn piece_stats_publish_and_lock_free_reads() {
        let (_, col) = column(20_000, 50);
        let mut scratch = CrackScratch::new();
        let s0 = col.piece_stats().expect("stats published at build");
        assert_eq!(s0.piece_count, 1);
        assert_eq!(s0.len, 20_000);
        col.select(Predicate::range(200, 700), &mut scratch);
        col.queue_insert(5, 1_000_000);
        col.publish_stats();
        let s1 = col.piece_stats().unwrap();
        assert_eq!(s1.piece_count, 3);
        assert_eq!(s1.pending, 1);
        let (edge, exact) = s1.edge(200);
        assert!(exact && edge == 0, "cracked bound must be an exact hit");
        let (edge, exact) = s1.edge(450);
        assert!(!exact && edge > 0);
        // Reads stay available while a writer holds the structure lock
        // exclusively (the planner's lock-freedom requirement).
        let guard = col.hold_structure_write_for_test();
        let s2 = col.piece_stats().expect("stats readable under writer");
        assert_eq!(s2.piece_count, 3);
        drop(guard);
        // Amortised republication: small deltas below the threshold do not
        // republish, the daemon's forced delta of 1 does.
        col.select(Predicate::range(100, 900), &mut scratch);
        col.maybe_publish_stats(64);
        assert_eq!(col.piece_stats().unwrap().piece_count, 3, "delta too small");
        col.maybe_publish_stats(1);
        assert!(col.piece_stats().unwrap().piece_count > 3);
    }

    #[test]
    fn sealed_column_rejects_updates_but_keeps_reading() {
        let (base, col) = column(5_000, 60);
        let mut scratch = CrackScratch::new();
        assert!(col.queue_insert(250, 5_000));
        col.seal_for_migration();
        assert!(col.is_sealed());
        assert!(!col.queue_insert(300, 5_001));
        assert!(!col.queue_delete(250, 5_000));
        // Reads (and the merge of the already-accepted insert) still work.
        let pred = Predicate::range(100, 400);
        let (_, stats) = col.select_verified(pred, &mut scratch);
        let mut expect = scan_stats(&base, pred);
        expect.count += 1;
        expect.sum += 250;
        assert_eq!(stats, expect);
    }

    #[test]
    fn extract_for_migration_merges_pending_and_keeps_snapshot_exact() {
        let (mut base, col) = column(10_000, 61);
        let mut scratch = CrackScratch::new();
        col.select(Predicate::range(200, 700), &mut scratch);
        let full = Predicate::range(0, 1_001);
        col.snapshot_scan(full, &mut scratch); // publish a snapshot
        let n = base.len() as RowId;
        assert!(col.queue_insert(431, n));
        base.push(431);
        assert!(col.queue_delete(base[0], 0));
        base.remove(0);
        let (vals, rows) = col.extract_for_migration();
        assert_eq!(vals.len(), base.len());
        assert_eq!(rows.len(), vals.len());
        let mut got = vals.clone();
        got.sort_unstable();
        let mut want = base.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        // Old-plan readers still answer exactly from the republished
        // snapshot, and new updates bounce.
        let scan = col.snapshot_scan(full, &mut scratch);
        let oracle = scan_stats(&base, full);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
        assert!(!col.queue_insert(1, 999_999));
        col.check_invariants(None);
    }

    #[test]
    fn point_filter_rebuild_recovers_fpr_after_mass_deletes() {
        let n = 4_096usize;
        let base: Vec<i64> = (0..n as i64).map(|i| i * 2).collect();
        let col = CrackerColumn::from_base("f", &base);
        col.ensure_point_filter();
        assert!(!col.maybe_rebuild_point_filter(), "no churn yet");
        // Delete the top three quarters of the keys.
        let cut = (n as i64 / 4) * 2;
        for (i, &v) in base.iter().enumerate() {
            if v >= cut {
                assert!(col.queue_delete(v, i as RowId));
            }
        }
        // The stale filter still claims every deleted key is present.
        assert_eq!(col.probe_point(cut), Some(true));
        assert!(col.point_filter_staleness() * 4 >= col.len());
        assert!(col.maybe_rebuild_point_filter());
        assert_eq!(col.point_filter_staleness(), 0);
        // Surviving keys keep probing present (no false negatives) …
        for &v in &base[..n / 4] {
            assert_eq!(col.probe_point(v), Some(true));
        }
        // … and the deleted keys' false-positive rate collapses.
        let fp = base[n / 4..]
            .iter()
            .filter(|&&v| col.probe_point(v) == Some(true))
            .count();
        assert!(
            fp * 10 < n - n / 4,
            "rebuild left {fp}/{} stale keys probing present",
            n - n / 4
        );
    }

    #[test]
    fn branchy_and_vectorized_kernels_agree() {
        let mut rng = StdRng::seed_from_u64(13);
        let base: Vec<i64> = (0..20_000).map(|_| rng.random_range(0..1_000)).collect();
        let a = CrackerColumn::with_kernel("a", &base, CrackKernel::Branchy);
        let b = CrackerColumn::with_kernel("b", &base, CrackKernel::Vectorized);
        let mut scratch = CrackScratch::new();
        for _ in 0..50 {
            let x = rng.random_range(0..1_000);
            let y = rng.random_range(0..1_000);
            let pred = Predicate::range(x.min(y), x.max(y));
            let (sa, ra) = a.select_verified(pred, &mut scratch);
            let (sb, rb) = b.select_verified(pred, &mut scratch);
            assert_eq!(ra, rb);
            assert_eq!(sa.count(), sb.count());
        }
        a.check_invariants(Some(&base));
        b.check_invariants(Some(&base));
    }
}
