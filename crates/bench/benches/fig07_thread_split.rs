//! Fig 7 — distributing the hardware contexts between user queries and
//! holistic workers (§5.1). The paper finds that giving user queries only
//! half the contexts and devoting the rest to holistic workers beats using
//! every context for parallel query-driven cracking.
//!
//! Config labels follow the paper: `u{U}w{N}x{T}` = U user contexts, N
//! workers of T threads each.

use holix_bench::{run_per_query, secs, total, BenchEnv};
use holix_engine::api::Dataset;
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 7: thread distribution between user queries and holistic workers",
        "csv: config,total_seconds",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 7));
    let queries = WorkloadSpec::random(env.attrs, env.queries, env.domain, 70).generate();
    let t = env.threads;

    println!("config,total_seconds");

    // All contexts to user queries: plain PVDC, no holistic workers.
    let all_user = run_per_query(
        &AdaptiveEngine::new(data.clone(), CrackMode::Pvdc { threads: t }),
        &queries,
    );
    println!("u{t},{:.6}", secs(total(&all_user)));

    // Splits: (user contexts, workers, threads per worker).
    let mut splits: Vec<(usize, usize, usize)> = Vec::new();
    if t >= 4 {
        splits.push((t - 2, 2, 1));
        splits.push((t / 2, t / 2, 1));
        splits.push((t / 2, 1, t / 2));
        if t / 2 >= 4 {
            splits.push((t / 2, t / 4, 2));
        }
        splits.push((2, t - 2, 1));
    } else {
        splits.push((t / 2, t / 2, 1));
    }

    for (user, workers, wt) in splits {
        let mut cfg = HolisticEngineConfig::split_half(t);
        cfg.user_threads = user.max(1);
        cfg.holistic.worker_threads = wt.max(1);
        cfg.holistic.max_workers = Some(workers.max(1));
        let engine = HolisticEngine::new(data.clone(), cfg);
        let times = run_per_query(&engine, &queries);
        engine.stop();
        println!("u{user}w{workers}x{wt},{:.6}", secs(total(&times)));
    }
}
