//! Synthetic TPC-H data and query variants for §5.6 (Q1, Q6, Q12, SF 10 in
//! the paper; SF is a parameter here).
//!
//! The official `dbgen` tool is replaced by a generator that reproduces the
//! value distributions the three queries are sensitive to (substitution
//! documented in DESIGN.md): date arithmetic (`shipdate`/`commitdate`/
//! `receiptdate` derived from `orderdate` with the spec's offsets), the
//! discrete `discount`/`tax`/`quantity` domains, the date-correlated
//! `returnflag`/`linestatus` flags, and uniform ship modes and priorities.
//! Money is fixed-point cents (`i64`), dates are days since 1992-01-01
//! (`i32`) — dense, crackable integer columns throughout.

use rand::prelude::*;

/// Days since 1992-01-01 for 1998-12-01 (the Q1 reference date).
pub const DATE_1998_12_01: i32 = 2526;
/// Days since 1992-01-01 for 1995-06-17 (the `currentdate` of the spec).
pub const DATE_CURRENT: i32 = 1263;
/// First day of each year 1992..=1998 (approximate 365.25-day years).
pub fn year_start(year: i32) -> i32 {
    ((year - 1992) as f64 * 365.25) as i32
}

/// The seven ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
/// The five order priorities; indices 0 and 1 are the "high" ones Q12
/// counts separately.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Return-flag encoding.
pub const RF_A: i8 = 0;
/// Return-flag `N`.
pub const RF_N: i8 = 1;
/// Return-flag `R`.
pub const RF_R: i8 = 2;
/// Line-status `F`.
pub const LS_F: i8 = 0;
/// Line-status `O`.
pub const LS_O: i8 = 1;

/// Columns of `lineitem` touched by Q1/Q6/Q12.
#[derive(Debug, Clone, Default)]
pub struct Lineitem {
    pub orderkey: Vec<i64>,
    pub quantity: Vec<i64>,
    /// Cents.
    pub extendedprice: Vec<i64>,
    /// Hundredths (0.00–0.10 → 0–10).
    pub discount: Vec<i64>,
    /// Hundredths (0.00–0.08 → 0–8).
    pub tax: Vec<i64>,
    pub returnflag: Vec<i8>,
    pub linestatus: Vec<i8>,
    pub shipdate: Vec<i32>,
    pub commitdate: Vec<i32>,
    pub receiptdate: Vec<i32>,
    /// Index into [`SHIP_MODES`].
    pub shipmode: Vec<i8>,
}

impl Lineitem {
    /// Row count.
    pub fn len(&self) -> usize {
        self.orderkey.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.orderkey.is_empty()
    }
}

/// Columns of `orders` touched by Q12.
#[derive(Debug, Clone, Default)]
pub struct Orders {
    pub orderkey: Vec<i64>,
    pub orderdate: Vec<i32>,
    /// Index into [`PRIORITIES`].
    pub orderpriority: Vec<i8>,
}

impl Orders {
    /// Row count.
    pub fn len(&self) -> usize {
        self.orderkey.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.orderkey.is_empty()
    }
}

/// Generated TPC-H subset.
#[derive(Debug, Clone)]
pub struct TpchData {
    pub lineitem: Lineitem,
    pub orders: Orders,
}

/// Generates roughly `sf * 1_500_000` orders with 1–7 lineitems each
/// (`sf * 6M` lineitems on average, like the spec).
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let n_orders = ((sf * 1_500_000.0) as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut orders = Orders::default();
    let mut li = Lineitem::default();

    for ok in 1..=n_orders as i64 {
        let orderdate = rng.random_range(0..=2406); // 1992-01-01 .. 1998-08-02
        orders.orderkey.push(ok);
        orders.orderdate.push(orderdate);
        orders.orderpriority.push(rng.random_range(0..5) as i8);

        let lines = rng.random_range(1..=7);
        for _ in 0..lines {
            let quantity = rng.random_range(1..=50i64);
            let partprice = rng.random_range(90_000..=200_000i64); // cents
            let shipdate = orderdate + rng.random_range(1..=121);
            let commitdate = orderdate + rng.random_range(30..=90);
            let receiptdate = shipdate + rng.random_range(1..=30);
            li.orderkey.push(ok);
            li.quantity.push(quantity);
            li.extendedprice.push(quantity * partprice);
            li.discount.push(rng.random_range(0..=10));
            li.tax.push(rng.random_range(0..=8));
            li.returnflag.push(if receiptdate <= DATE_CURRENT {
                if rng.random_bool(0.5) {
                    RF_R
                } else {
                    RF_A
                }
            } else {
                RF_N
            });
            li.linestatus
                .push(if shipdate > DATE_CURRENT { LS_O } else { LS_F });
            li.shipdate.push(shipdate);
            li.commitdate.push(commitdate);
            li.receiptdate.push(receiptdate);
            li.shipmode.push(rng.random_range(0..7) as i8);
        }
    }

    TpchData {
        lineitem: li,
        orders,
    }
}

// ---------------------------------------------------------------------
// Query variants (the paper runs 30 random variations per query type).
// ---------------------------------------------------------------------

/// Q1: `shipdate <= 1998-12-01 − delta days`, `delta ∈ [60, 120]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q1Params {
    /// Inclusive shipdate cutoff.
    pub ship_cutoff: i32,
}

/// Q6: one year of shipdate, a ±0.01 discount band, a quantity cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q6Params {
    pub date_lo: i32,
    pub date_hi: i32,
    /// Inclusive discount bounds (hundredths).
    pub discount_lo: i64,
    pub discount_hi: i64,
    /// Exclusive quantity bound.
    pub quantity_max: i64,
}

/// Q12: two ship modes and one receipt year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q12Params {
    pub mode1: i8,
    pub mode2: i8,
    pub date_lo: i32,
    pub date_hi: i32,
}

/// `n` random Q1 variants.
pub fn q1_variants(n: usize, seed: u64) -> Vec<Q1Params> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Q1Params {
            ship_cutoff: DATE_1998_12_01 - rng.random_range(60..=120),
        })
        .collect()
}

/// `n` random Q6 variants.
pub fn q6_variants(n: usize, seed: u64) -> Vec<Q6Params> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let year = rng.random_range(1993..=1997);
            let x = rng.random_range(2..=9i64);
            Q6Params {
                date_lo: year_start(year),
                date_hi: year_start(year + 1),
                discount_lo: x - 1,
                discount_hi: x + 1,
                quantity_max: rng.random_range(24..=25),
            }
        })
        .collect()
}

/// `n` random Q12 variants.
pub fn q12_variants(n: usize, seed: u64) -> Vec<Q12Params> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let m1 = rng.random_range(0..7) as i8;
            let mut m2 = rng.random_range(0..7) as i8;
            while m2 == m1 {
                m2 = (m2 + 1) % 7;
            }
            let year = rng.random_range(1993..=1997);
            Q12Params {
                mode1: m1,
                mode2: m2,
                date_lo: year_start(year),
                date_hi: year_start(year + 1),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Reference (row-at-a-time) evaluations — the oracles the engine's
// columnar plans are tested against.
// ---------------------------------------------------------------------

/// One Q1 output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Q1Row {
    pub sum_qty: i128,
    pub sum_base_price: i128,
    /// Σ extprice·(100−disc) (in cent·hundredths; divide by 100 to format).
    pub sum_disc_price: i128,
    /// Σ extprice·(100−disc)·(100+tax).
    pub sum_charge: i128,
    pub count: u64,
}

/// Row-at-a-time Q1 over the 6 (returnflag, linestatus) groups.
pub fn q1_reference(li: &Lineitem, p: Q1Params) -> Vec<((i8, i8), Q1Row)> {
    let mut groups: std::collections::BTreeMap<(i8, i8), Q1Row> = Default::default();
    for i in 0..li.len() {
        if li.shipdate[i] > p.ship_cutoff {
            continue;
        }
        let g = groups
            .entry((li.returnflag[i], li.linestatus[i]))
            .or_default();
        let price = li.extendedprice[i] as i128;
        let disc = li.discount[i] as i128;
        let tax = li.tax[i] as i128;
        g.sum_qty += li.quantity[i] as i128;
        g.sum_base_price += price;
        g.sum_disc_price += price * (100 - disc);
        g.sum_charge += price * (100 - disc) * (100 + tax);
        g.count += 1;
    }
    groups.into_iter().collect()
}

/// Row-at-a-time Q6: Σ extprice·disc (cent·hundredths).
pub fn q6_reference(li: &Lineitem, p: Q6Params) -> i128 {
    let mut revenue = 0i128;
    for i in 0..li.len() {
        if li.shipdate[i] >= p.date_lo
            && li.shipdate[i] < p.date_hi
            && li.discount[i] >= p.discount_lo
            && li.discount[i] <= p.discount_hi
            && li.quantity[i] < p.quantity_max
        {
            revenue += li.extendedprice[i] as i128 * li.discount[i] as i128;
        }
    }
    revenue
}

/// Row-at-a-time Q12: per ship mode, (high-priority, low-priority) counts.
pub fn q12_reference(li: &Lineitem, orders: &Orders, p: Q12Params) -> Vec<(i8, u64, u64)> {
    // orderkey → priority (orderkeys are dense 1..=n here).
    let mut prio = vec![0i8; orders.len() + 1];
    for (i, &ok) in orders.orderkey.iter().enumerate() {
        prio[ok as usize] = orders.orderpriority[i];
    }
    let mut out: std::collections::BTreeMap<i8, (u64, u64)> = Default::default();
    out.insert(p.mode1, (0, 0));
    out.insert(p.mode2, (0, 0));
    for i in 0..li.len() {
        let m = li.shipmode[i];
        if (m != p.mode1 && m != p.mode2)
            || li.commitdate[i] >= li.receiptdate[i]
            || li.shipdate[i] >= li.commitdate[i]
            || li.receiptdate[i] < p.date_lo
            || li.receiptdate[i] >= p.date_hi
        {
            continue;
        }
        let e = out.get_mut(&m).unwrap();
        if prio[li.orderkey[i] as usize] < 2 {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    out.into_iter().map(|(m, (h, l))| (m, h, l)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchData {
        generate(0.001, 7) // ~1500 orders, ~6000 lineitems
    }

    #[test]
    fn generator_respects_domains() {
        let d = small();
        let li = &d.lineitem;
        assert!(li.len() > 3_000);
        assert_eq!(d.orders.len(), 1_500);
        for i in 0..li.len() {
            assert!((1..=50).contains(&li.quantity[i]));
            assert!((0..=10).contains(&li.discount[i]));
            assert!((0..=8).contains(&li.tax[i]));
            assert!((0..7).contains(&li.shipmode[i]));
            assert!(li.shipdate[i] < li.receiptdate[i]);
            assert!(li.extendedprice[i] >= 90_000);
        }
    }

    #[test]
    fn flags_correlate_with_dates() {
        let d = small();
        let li = &d.lineitem;
        for i in 0..li.len() {
            if li.returnflag[i] == RF_N {
                assert!(li.receiptdate[i] > DATE_CURRENT);
            } else {
                assert!(li.receiptdate[i] <= DATE_CURRENT);
            }
            assert_eq!(li.linestatus[i] == LS_O, li.shipdate[i] > DATE_CURRENT);
        }
    }

    #[test]
    fn q1_reference_covers_most_rows() {
        let d = small();
        let p = q1_variants(1, 1)[0];
        let rows = q1_reference(&d.lineitem, p);
        let total: u64 = rows.iter().map(|(_, r)| r.count).sum();
        // Cutoff near the end of the date domain: ~95% of rows qualify.
        assert!(total as usize > d.lineitem.len() * 9 / 10);
        assert!(rows.len() >= 4, "expected >=4 of the 6 groups");
        for (_, r) in &rows {
            assert!(r.sum_disc_price <= r.sum_base_price * 100);
            assert!(r.sum_charge >= r.sum_disc_price * 100);
        }
    }

    #[test]
    fn q6_reference_selects_narrow_band() {
        let d = small();
        for p in q6_variants(5, 2) {
            let rev = q6_reference(&d.lineitem, p);
            assert!(rev >= 0);
        }
        // A band covering everything yields more than a narrow band.
        let wide = Q6Params {
            date_lo: 0,
            date_hi: 10_000,
            discount_lo: 0,
            discount_hi: 10,
            quantity_max: 51,
        };
        let narrow = q6_variants(1, 3)[0];
        assert!(q6_reference(&d.lineitem, wide) > q6_reference(&d.lineitem, narrow));
    }

    #[test]
    fn q12_reference_counts_priorities() {
        let d = small();
        let p = q12_variants(1, 4)[0];
        let rows = q12_reference(&d.lineitem, &d.orders, p);
        assert_eq!(rows.len(), 2);
        let total: u64 = rows.iter().map(|&(_, h, l)| h + l).sum();
        assert!(total > 0, "no qualifying rows");

        // High priorities are 2 of 5 → roughly 40% of counted lines; check
        // the fraction on a wide window so the sample is large enough.
        let wide = Q12Params {
            mode1: 0,
            mode2: 1,
            date_lo: 0,
            date_hi: 10_000,
        };
        let rows = q12_reference(&d.lineitem, &d.orders, wide);
        let total: u64 = rows.iter().map(|&(_, h, l)| h + l).sum();
        let high: u64 = rows.iter().map(|&(_, h, _)| h).sum();
        // ~6000 lineitems × 2/7 modes × ~11% passing the three date
        // predicates (spec offsets: ship +U[1,121], commit +U[30,90],
        // receipt ship+U[1,30]) ≈ 190 rows; 150 keeps the fraction check
        // statistically meaningful without assuming more than the generator
        // provides.
        assert!(total > 150, "wide window too small: {total}");
        let frac = high as f64 / total as f64;
        assert!((0.3..0.5).contains(&frac), "high fraction {frac}");
    }

    #[test]
    fn variants_are_deterministic_and_in_range() {
        assert_eq!(q1_variants(30, 9), q1_variants(30, 9));
        for p in q6_variants(30, 9) {
            assert!(p.date_hi - p.date_lo >= 364);
            assert!(p.discount_lo >= 1 && p.discount_hi <= 10);
        }
        for p in q12_variants(30, 9) {
            assert_ne!(p.mode1, p.mode2);
        }
    }
}
