//! Replan policy: when should the daemon split a hot shard or merge two
//! cold neighbours?
//!
//! The input is the same published statistic the cost model prices
//! queries against — per-shard `PieceStats` reduced to a [`ShardLoad`]
//! (merged rows + pending backlog) — so the decision is lock-free and
//! pure. The *mechanism* (sealing, draining, rebuilding, epoch-publishing
//! the successor plan) lives in
//! [`holix_cracking::ShardedColumn::apply_replan`]; this module only
//! decides **whether** and **where**, mirroring how the paper's holistic
//! daemon separates deciding (Equation 1 weights) from doing (worker
//! refinement steps).
//!
//! Hippo (PAPERS.md) reorganizes its maintenance-light partial index when
//! the update distribution shifts; ByteStore re-derives per-partition
//! layout from observed access. The policy here is the cracking analogue:
//! a drifting hot region piles rows and pending updates into one shard,
//! the skew trips [`ReplanPolicy::split_skew`], and the split restores
//! per-shard work balance without ever blocking readers.

use holix_cracking::ReplanAction;

/// One shard's load as seen by the replanner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Merged tuples (published `PieceStats::len`).
    pub rows: usize,
    /// Pending Ripple backlog (published `PieceStats::pending`).
    pub pending: usize,
    /// Access heat in row-equivalents: the shard's observed query traffic
    /// (the paper's per-index `f_I`), pre-scaled by the caller so one unit
    /// compares to one resident row. Zero when the caller does not track
    /// access (size-only balancing, the pre-PR-8 behaviour).
    pub access: usize,
}

impl ShardLoad {
    /// The balance weight: merged rows plus the unmerged backlog (a shard
    /// absorbing a drifting insert hot spot is hot *before* its rows are)
    /// plus the access heat (a small shard every query hammers — scalding
    /// — deserves a split even though its rows never trip the size skew).
    pub fn weight(&self) -> usize {
        self.rows + self.pending + self.access
    }
}

/// Guard rails for replan proposals.
#[derive(Debug, Clone, Copy)]
pub struct ReplanPolicy {
    /// Never split a shard whose row count is below twice this (both
    /// halves must stay at least this large).
    pub min_shard_rows: usize,
    /// Split the heaviest shard when its weight exceeds this multiple of
    /// the mean shard weight.
    pub split_skew: f64,
    /// Merge the lightest adjacent pair when their combined weight is
    /// below this fraction of the mean shard weight.
    pub merge_fraction: f64,
    /// Never split past this many shards.
    pub max_shards: usize,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            min_shard_rows: 1024,
            split_skew: 2.0,
            merge_fraction: 0.5,
            max_shards: 64,
        }
    }
}

/// Shard-weight skew `max/mean` — the balance number `fig_replan`
/// reports. 1.0 is perfectly balanced; 0.0 for an empty plan.
pub fn load_skew(loads: &[ShardLoad]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let total: usize = loads.iter().map(|l| l.weight()).sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().map(|l| l.weight()).max().unwrap_or(0);
    max as f64 / mean
}

/// Proposes at most one plan change from the current per-shard loads:
/// split the heaviest shard if it trips the skew threshold (and both
/// halves would stay above the row floor), else merge the lightest
/// adjacent pair if it has gone cold. One action per call keeps each
/// migration's copy work bounded to one or two shards; the daemon simply
/// proposes again next cycle if imbalance remains.
pub fn propose_replan(loads: &[ShardLoad], policy: &ReplanPolicy) -> Option<ReplanAction> {
    if loads.len() < 2 && loads.len() >= policy.max_shards {
        return None;
    }
    let total: usize = loads.iter().map(|l| l.weight()).sum();
    if total == 0 {
        return None;
    }
    let mean = total as f64 / loads.len() as f64;

    // Hot split first: restoring balance for readers beats compacting
    // cold shards.
    if loads.len() < policy.max_shards {
        let (hot, load) = loads
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.weight())
            .expect("non-empty loads");
        if load.weight() as f64 > policy.split_skew * mean && load.rows >= 2 * policy.min_shard_rows
        {
            return Some(ReplanAction::Split { shard: hot });
        }
    }

    // Cold merge: lightest adjacent pair, if genuinely cold.
    if loads.len() >= 2 {
        let (left, pair) = loads
            .windows(2)
            .enumerate()
            .map(|(k, w)| (k, w[0].weight() + w[1].weight()))
            .min_by_key(|&(_, w)| w)
            .expect("at least one adjacent pair");
        if (pair as f64) < policy.merge_fraction * mean {
            return Some(ReplanAction::Merge { left });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(rows: usize, pending: usize) -> ShardLoad {
        ShardLoad {
            rows,
            pending,
            access: 0,
        }
    }

    #[test]
    fn balanced_loads_propose_nothing() {
        let policy = ReplanPolicy::default();
        let loads = vec![load(10_000, 0); 4];
        assert_eq!(propose_replan(&loads, &policy), None);
        assert!((load_skew(&loads) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hot_shard_trips_a_split() {
        let policy = ReplanPolicy::default();
        let loads = vec![load(5_000, 0), load(40_000, 2_000), load(5_000, 0)];
        assert_eq!(
            propose_replan(&loads, &policy),
            Some(ReplanAction::Split { shard: 1 })
        );
        assert!(load_skew(&loads) > policy.split_skew);
    }

    #[test]
    fn pending_backlog_counts_toward_heat() {
        let policy = ReplanPolicy::default();
        // Rows balanced, but one shard is absorbing the insert hot spot.
        let loads = vec![load(10_000, 90_000), load(10_000, 0), load(10_000, 0)];
        assert_eq!(
            propose_replan(&loads, &policy),
            Some(ReplanAction::Split { shard: 0 })
        );
    }

    #[test]
    fn scalding_small_shard_splits_on_access_skew() {
        let policy = ReplanPolicy::default();
        // Rows perfectly balanced — size-only balancing would do nothing —
        // but shard 2 absorbs nearly all the query traffic.
        let mut loads = vec![load(10_000, 0); 4];
        loads[2].access = 100_000;
        assert_eq!(
            propose_replan(&loads, &policy),
            Some(ReplanAction::Split { shard: 2 })
        );
        assert!(load_skew(&loads) > policy.split_skew);
        // The row floor still holds: a scalding shard too small to yield
        // two valid halves is left alone (splitting it cannot spread the
        // heat without creating an undersized shard).
        let mut loads = vec![load(10_000, 0); 4];
        loads[2] = ShardLoad {
            rows: 1_000,
            pending: 0,
            access: 200_000,
        };
        assert_ne!(
            propose_replan(&loads, &policy),
            Some(ReplanAction::Split { shard: 2 })
        );
    }

    #[test]
    fn cold_pair_merges_when_no_split_is_due() {
        let policy = ReplanPolicy::default();
        let loads = vec![load(30_000, 0), load(200, 0), load(300, 0), load(30_000, 0)];
        assert_eq!(
            propose_replan(&loads, &policy),
            Some(ReplanAction::Merge { left: 1 })
        );
    }

    #[test]
    fn guard_rails_hold() {
        let policy = ReplanPolicy {
            max_shards: 2,
            ..ReplanPolicy::default()
        };
        // Hot but already at the shard cap: no split.
        let loads = vec![load(50_000, 0), load(1_000, 0)];
        assert_eq!(propose_replan(&loads, &policy), None);
        // Hot but too small to split into two valid halves.
        let policy = ReplanPolicy::default();
        let loads = vec![load(1_500, 0), load(100, 0), load(100, 0)];
        assert_ne!(
            propose_replan(&loads, &policy),
            Some(ReplanAction::Split { shard: 0 })
        );
        // Empty plans propose nothing.
        assert_eq!(propose_replan(&[], &policy), None);
        assert_eq!(propose_replan(&[load(0, 0)], &policy), None);
    }
}
