//! Exploratory analytics on a SkyServer-like trace (§5.3 of the paper):
//! an astronomer's queries dwell on one region of the sky, then jump to
//! another. Query-driven cracking alone leaves the rest of the sky
//! unindexed; holistic indexing keeps refining the whole domain, so the
//! next jump lands on prepared ground.
//!
//! ```sh
//! cargo run --release --example skyserver_exploration
//! ```

use holix::engine::{
    AdaptiveEngine, CrackMode, Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine,
};
use holix::workloads::data::uniform_column;
use holix::workloads::skyserver::SkyServerSpec;
use std::time::Instant;

fn run(engine: &dyn QueryEngine, queries: &[holix::workloads::QuerySpec]) -> (f64, f64) {
    // Returns (total seconds, worst single "jump" query in seconds).
    let mut total = 0.0;
    let mut worst = 0.0f64;
    for q in queries {
        let t0 = Instant::now();
        std::hint::black_box(engine.execute(q));
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        worst = worst.max(dt);
    }
    (total, worst)
}

fn main() {
    let rows = 1 << 21;
    let domain = 1 << 30;
    println!("loading ascension column: {rows} tuples");
    let data = Dataset::new(vec![uniform_column(rows, domain, 2015)]);

    let trace = SkyServerSpec {
        n_queries: 2_000,
        domain,
        dwell: 200,
        seed: 77,
    }
    .generate();
    println!("replaying {} dwell-and-jump queries", trace.len());

    let contexts = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);

    let adaptive = AdaptiveEngine::new(data.clone(), CrackMode::Pvdc { threads: contexts });
    let (a_total, a_worst) = run(&adaptive, &trace);
    println!(
        "adaptive (PVDC):   total {:.2}s | worst query {:.1} ms | {} pieces",
        a_total,
        a_worst * 1e3,
        adaptive.total_pieces()
    );

    let holistic = HolisticEngine::new(data, HolisticEngineConfig::split_half(contexts));
    let (h_total, h_worst) = run(&holistic, &trace);
    println!(
        "holistic:          total {:.2}s | worst query {:.1} ms | {} pieces",
        h_total,
        h_worst * 1e3,
        holistic.total_pieces()
    );
    holistic.stop();

    println!("---");
    println!(
        "holistic/adaptive total: {:.2}x, worst-query: {:.2}x",
        a_total / h_total.max(1e-9),
        a_worst / h_worst.max(1e-9)
    );
    println!("jumps to unexplored sky regions are where background refinement pays off");
}
