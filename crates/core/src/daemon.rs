//! The holistic indexing thread (Fig 2): monitor CPU utilisation → activate
//! one worker per idle hardware context → wait for all workers → repeat.
//!
//! "At all times there is an active holistic indexing thread which runs in
//! parallel to user queries. […] When n idle CPU cores are detected, n
//! holistic worker threads are activated." The daemon records one
//! [`CycleRecord`] per activation so Fig 6(d) (worker time and worker count
//! per tuning cycle) can be regenerated.

use crate::config::HolisticConfig;
use crate::cpu::CpuMonitor;
use crate::index_space::IndexSpace;
use crate::worker::{idle_function, WorkerReport};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One tuning-cycle activation (Fig 6(d) series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRecord {
    /// Workers activated this cycle.
    pub workers: usize,
    /// Wall time of the cycle (activation to last worker finishing).
    pub wall: Duration,
    /// Summed worker time (the paper's "total response time of all workers
    /// during a single tuning cycle").
    pub worker_time_total: Duration,
    /// Successful refinements across all workers.
    pub refinements: u64,
    /// Attempts aborted on latched pieces.
    pub busy: u64,
    /// Stale snapshot pieces refreshed in the background this cycle.
    pub snapshot_refreshes: u64,
    /// Point membership filters rebuilt after delete churn this cycle.
    pub filter_rebuilds: u64,
    /// Plain snapshot pieces re-encoded (FOR / delta / RLE) this cycle.
    pub segment_morphs: u64,
}

/// Handle to the running holistic indexing thread.
pub struct HolisticDaemon {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    cycles: Arc<Mutex<Vec<CycleRecord>>>,
    total_refinements: Arc<AtomicU64>,
}

impl HolisticDaemon {
    /// Starts the tuning thread. It runs until [`HolisticDaemon::stop`] (or
    /// drop).
    pub fn spawn(
        space: Arc<IndexSpace>,
        monitor: Arc<dyn CpuMonitor>,
        config: HolisticConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(Mutex::new(Vec::new()));
        let total_refinements = Arc::new(AtomicU64::new(0));

        let t_stop = Arc::clone(&stop);
        let t_cycles = Arc::clone(&cycles);
        let t_total = Arc::clone(&total_refinements);
        let thread = std::thread::Builder::new()
            .name("holistic-daemon".into())
            .spawn(move || {
                daemon_loop(
                    &space,
                    monitor.as_ref(),
                    &config,
                    &t_stop,
                    &t_cycles,
                    &t_total,
                );
            })
            .expect("failed to spawn holistic daemon");

        HolisticDaemon {
            stop,
            thread: Some(thread),
            cycles,
            total_refinements,
        }
    }

    /// Signals the thread to stop and joins it.
    pub fn stop(mut self) -> Vec<CycleRecord> {
        self.shutdown();
        self.cycles.lock().clone()
    }

    /// Snapshot of cycle records so far.
    pub fn cycles(&self) -> Vec<CycleRecord> {
        self.cycles.lock().clone()
    }

    /// Total successful refinements across all cycles.
    pub fn total_refinements(&self) -> u64 {
        self.total_refinements.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HolisticDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn daemon_loop(
    space: &IndexSpace,
    monitor: &dyn CpuMonitor,
    config: &HolisticConfig,
    stop: &AtomicBool,
    cycles: &Mutex<Vec<CycleRecord>>,
    total_refinements: &AtomicU64,
) {
    let mut cycle_no = 0u64;
    while !stop.load(Ordering::Relaxed) {
        // Blocks ~monitor_interval: "Monitor CPU Utilization … Sleep 1 sec".
        let idle = monitor.idle_contexts(config.monitor_interval);
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let n = (idle / config.worker_threads.max(1)).min(config.max_workers.unwrap_or(usize::MAX));
        if n == 0 {
            continue;
        }

        // Nothing to refine? Skip the activation entirely (cheap check so an
        // idle system does not spin worker threads).
        {
            let mut probe = SmallRng::seed_from_u64(config.seed ^ cycle_no);
            if space.pick(&mut probe).is_none() {
                cycle_no += 1;
                continue;
            }
        }

        let t0 = Instant::now();
        let reports: Vec<WorkerReport> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|w| {
                    let seed = config
                        .seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(cycle_no << 8)
                        .wrapping_add(w as u64);
                    s.spawn(move |_| {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        idle_function(
                            space,
                            config.refinements_per_worker,
                            config.latch_attempts,
                            &mut rng,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("holistic worker panicked"))
                .collect()
        })
        .expect("holistic worker scope panicked");

        let record = CycleRecord {
            workers: n,
            wall: t0.elapsed(),
            worker_time_total: reports.iter().map(|r| r.duration).sum(),
            refinements: reports.iter().map(|r| r.refinements).sum(),
            busy: reports.iter().map(|r| r.busy).sum(),
            snapshot_refreshes: reports.iter().map(|r| r.snapshot_refreshes).sum(),
            filter_rebuilds: reports.iter().map(|r| r.filter_rebuilds).sum(),
            segment_morphs: reports.iter().map(|r| r.segment_morphs).sum(),
        };
        total_refinements.fetch_add(record.refinements, Ordering::Relaxed);
        // Mirror the cycle record into the process-wide registry so a live
        // service exposes the daemon's Fig 6(d) series without stopping it.
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("engine_cycles_total").inc();
            holix_telemetry::counter!("engine_refinements_total").add(record.refinements);
            holix_telemetry::counter!("engine_busy_aborts_total").add(record.busy);
            holix_telemetry::counter!("engine_snapshot_refreshes_total")
                .add(record.snapshot_refreshes);
            holix_telemetry::counter!("engine_filter_rebuilds_total").add(record.filter_rebuilds);
            holix_telemetry::counter!("engine_segment_morphs_total").add(record.segment_morphs);
            holix_telemetry::counter!("engine_worker_ns_total")
                .add(record.worker_time_total.as_nanos() as u64);
            holix_telemetry::gauge!("engine_cycle_workers").set(record.workers as i64);
            holix_telemetry::histogram!("engine_cycle_wall_ns")
                .record(record.wall.as_nanos() as u64);
        }
        cycles.lock().push(record);
        cycle_no += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::LoadAccountant;
    use crate::handle::CrackerHandle;
    use holix_cracking::CrackerColumn;

    fn space_with_columns(cols: usize, n: usize) -> Arc<IndexSpace> {
        let space = IndexSpace::new(HolisticConfig {
            monitor_interval: Duration::from_millis(1),
            ..HolisticConfig::default()
        });
        for c in 0..cols {
            let base: Vec<i64> = (0..n as i64).rev().collect();
            let h = Arc::new(CrackerHandle::new(Arc::new(CrackerColumn::from_base(
                format!("c{c}"),
                &base,
            ))));
            space.register_actual(h);
        }
        Arc::new(space)
    }

    fn fast_config() -> HolisticConfig {
        HolisticConfig {
            monitor_interval: Duration::from_millis(1),
            ..HolisticConfig::default()
        }
    }

    #[test]
    fn daemon_refines_until_stopped() {
        let space = space_with_columns(4, 200_000);
        let monitor = LoadAccountant::new(4);
        let daemon = HolisticDaemon::spawn(Arc::clone(&space), monitor, fast_config());
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while space.total_pieces() <= 4 {
            assert!(std::time::Instant::now() < deadline, "daemon never refined");
            std::thread::sleep(Duration::from_millis(10));
        }
        let cycles = daemon.stop();
        assert!(!cycles.is_empty(), "no cycles ran");
        let total: u64 = cycles.iter().map(|c| c.refinements).sum();
        assert!(total > 0, "no refinements");
    }

    #[test]
    fn no_workers_when_cpu_saturated() {
        let space = space_with_columns(2, 100_000);
        let monitor = LoadAccountant::new(2);
        let _g = monitor.begin_task(2); // saturate both contexts
        let daemon = HolisticDaemon::spawn(
            Arc::clone(&space),
            Arc::clone(&monitor) as Arc<dyn CpuMonitor>,
            fast_config(),
        );
        std::thread::sleep(Duration::from_millis(60));
        let cycles = daemon.stop();
        assert!(cycles.is_empty(), "workers ran despite saturation");
        assert_eq!(space.total_pieces(), 2);
    }

    #[test]
    fn worker_count_matches_idle_contexts() {
        let space = space_with_columns(8, 100_000);
        let monitor = LoadAccountant::new(8);
        let _g = monitor.begin_task(5); // 3 idle
        let daemon = HolisticDaemon::spawn(
            Arc::clone(&space),
            Arc::clone(&monitor) as Arc<dyn CpuMonitor>,
            fast_config(),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while daemon.cycles().is_empty() {
            assert!(std::time::Instant::now() < deadline, "no cycle ever ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        let cycles = daemon.stop();
        assert!(cycles.iter().all(|c| c.workers == 3), "{cycles:?}");
    }

    #[test]
    fn max_workers_caps_activation() {
        let space = space_with_columns(8, 100_000);
        let monitor = LoadAccountant::new(16);
        let cfg = HolisticConfig {
            max_workers: Some(2),
            ..fast_config()
        };
        let daemon = HolisticDaemon::spawn(Arc::clone(&space), monitor, cfg);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while daemon.cycles().is_empty() {
            assert!(std::time::Instant::now() < deadline, "no cycle ever ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        let cycles = daemon.stop();
        assert!(cycles.iter().all(|c| c.workers == 2));
    }

    #[test]
    fn daemon_goes_quiet_once_everything_is_optimal() {
        // Small columns: optimal after a couple of splits.
        let space = space_with_columns(2, 10_000);
        let monitor = LoadAccountant::new(4);
        let daemon = HolisticDaemon::spawn(Arc::clone(&space), monitor, fast_config());
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while space.membership_counts().2 < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "columns did not reach optimal: {:?}",
                space.membership_counts()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let cycles_at_optimal = daemon.cycles().len();
        std::thread::sleep(Duration::from_millis(60));
        // No further activations once nothing is pickable.
        assert_eq!(daemon.cycles().len(), cycles_at_optimal);
        drop(daemon);
    }

    #[test]
    fn drop_stops_the_thread() {
        let space = space_with_columns(1, 100_000);
        let monitor = LoadAccountant::new(2);
        let daemon = HolisticDaemon::spawn(space, monitor, fast_config());
        drop(daemon); // must not hang
    }
}
