//! # holix-server — the concurrent query service layer
//!
//! The paper's §5.8 drives one engine from many concurrent clients and
//! shows holistic indexing absorbing rising load by scaling its workers
//! down. This crate is that serving substrate, grown past the paper's
//! round-robin harness into a small production-shaped service:
//!
//! - [`session`] — session registry plus completion tickets, so any number
//!   of client threads can submit queries and block on answers.
//! - [`queue`] — the bounded admission queue: block (closed-loop
//!   backpressure) or reject (open-loop load shedding) when full.
//! - [`batcher`] — crack-aware batch ordering: queries are grouped per
//!   column and sorted by predicate bounds (widest range first on ties) so
//!   consecutive predicates land in already-cracked or adjacent pieces;
//!   duplicate predicates coalesce and contained predicates are answered
//!   from their batched superset's post-filtered values.
//! - [`dispatcher`] — the worker pool draining the queue(s), executing
//!   against any [`holix_engine::api::QueryEngine`], and registering its
//!   thread usage with the [`holix_core::cpu::LoadAccountant`] so the
//!   holistic daemon sees the service's true load. Shard-affine mode pins
//!   each `routing_key` (attribute shard) to one worker over per-worker
//!   queues, so no two dispatchers latch the same shard.
//! - [`stats`] — sustained-QPS and p50/p95/p99 latency accounting.
//! - [`harness`] — the §5.8 multi-client driver, superseding
//!   `holix_engine::session`.

pub mod batcher;
pub mod dispatcher;
pub mod harness;
pub mod queue;
pub mod session;
pub mod stats;

pub use batcher::Scheduling;
pub use dispatcher::{DecomposePolicy, QueryService, ServiceConfig, Session};
pub use harness::{run_clients, run_clients_with, ClientReport};
pub use holix_planner::{Calibrator, CostModel};
pub use queue::{AdmissionPolicy, BoundedQueue, SubmitError};
pub use session::{QueryResult, SessionRegistry, Ticket};
pub use stats::{percentile, PlanDecision, ServiceStats, StatsSummary};
