//! The cracker index: AVL-mapped piece boundaries plus per-piece latches.
//!
//! A boundary `(key → pos)` states the cracking invariant: every value at a
//! position `< pos` is `< key`, and every value at a position `>= pos` is
//! `>= key`. The gaps between consecutive boundaries are the *pieces*. The
//! piece starting at boundary `b` owns the latch stored in `b`'s entry; the
//! piece starting at position 0 owns `first_latch`.
//!
//! Boundaries never move once created — cracking only permutes values
//! strictly inside one piece — except under the exclusive Ripple-update path,
//! which shifts boundary positions via [`CrackerIndex::shift_bounds`].

use crate::avl::Avl;
use crate::latch::PieceLatch;
use holix_storage::types::CrackValue;

/// Value part of a boundary entry.
#[derive(Debug, Clone)]
pub struct BoundEntry {
    /// First position of the piece that starts at this boundary.
    pub pos: usize,
    /// Latch of the piece starting here.
    pub latch: PieceLatch,
}

/// One piece addressed by its starting boundary key (snapshot-refresh
/// walks; see [`CrackerIndex::piece_after`]).
#[derive(Debug, Clone)]
pub struct PieceRef<V> {
    /// First position of the piece.
    pub start: usize,
    /// One past the last position.
    pub end: usize,
    /// The piece's latch.
    pub latch: PieceLatch,
    /// Upper boundary key (`None` = last piece).
    pub hi_key: Option<V>,
}

/// Result of locating a bound value in the index.
#[derive(Debug, Clone)]
pub enum BoundLookup<V> {
    /// The value is already a boundary: its position can be used directly
    /// (an "exact hit" in the paper's statistics).
    Exact(usize),
    /// The value falls inside a piece that must be cracked.
    Piece {
        /// First position of the piece.
        start: usize,
        /// One past the last position of the piece.
        end: usize,
        /// The piece's latch.
        latch: PieceLatch,
        /// Boundary key on the left (`None` = column minimum side): every
        /// value in the piece is `>= lo_key`.
        lo_key: Option<V>,
        /// Boundary key on the right (`None` = column maximum side): every
        /// value in the piece is `< hi_key`.
        hi_key: Option<V>,
    },
}

/// Piece bookkeeping for one cracker column.
///
/// `Clone` duplicates the bookkeeping but *shares* the piece latches (they
/// are `Arc`-backed); benchmark setups use this to re-run destructive
/// operations from one prepared state.
#[derive(Debug, Clone)]
pub struct CrackerIndex<V> {
    bounds: Avl<V, BoundEntry>,
    first_latch: PieceLatch,
    len: usize,
}

impl<V: CrackValue> CrackerIndex<V> {
    /// A fresh index over a column of `len` values: one piece, no bounds.
    pub fn new(len: usize) -> Self {
        CrackerIndex {
            bounds: Avl::new(),
            first_latch: PieceLatch::new(),
            len,
        }
    }

    /// Column length tracked by the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the indexed column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces (`bounds + 1`).
    pub fn piece_count(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Number of boundaries.
    pub fn bound_count(&self) -> usize {
        self.bounds.len()
    }

    /// Average piece size in values — the `N/p` of Equation (1).
    pub fn avg_piece_len(&self) -> usize {
        self.len / self.piece_count()
    }

    /// Locates the piece a bound value falls into (or the exact boundary).
    pub fn locate(&self, v: V) -> BoundLookup<V> {
        if let Some(entry) = self.bounds.get(&v) {
            return BoundLookup::Exact(entry.pos);
        }
        let (start, latch, lo_key) = match self.bounds.pred_strict(&v) {
            Some((k, e)) => (e.pos, e.latch.clone(), Some(k)),
            None => (0, self.first_latch.clone(), None),
        };
        let (end, hi_key) = match self.bounds.succ_strict(&v) {
            Some((k, e)) => (e.pos, Some(k)),
            None => (self.len, None),
        };
        BoundLookup::Piece {
            start,
            end,
            latch,
            lo_key,
            hi_key,
        }
    }

    /// Records a new boundary `key → pos` after a crack. The latch for the
    /// new right piece (starting at `pos`) is created here; the left piece
    /// keeps the latch of the piece that was split.
    ///
    /// Panics if the key already exists (callers re-validate under the piece
    /// latch before cracking, so a duplicate insert is a protocol bug).
    pub fn insert_bound(&mut self, key: V, pos: usize) {
        debug_assert!(pos <= self.len);
        let prev = self.bounds.insert(
            key,
            BoundEntry {
                pos,
                latch: PieceLatch::new(),
            },
        );
        assert!(prev.is_none(), "duplicate boundary inserted");
    }

    /// Shifts every boundary at position `>= from_pos` by `delta` (Ripple
    /// updates only; caller holds the column exclusively).
    pub fn shift_bounds(&mut self, from_pos: usize, delta: isize) {
        self.bounds.for_each_mut(|_, e| {
            if e.pos >= from_pos {
                e.pos = e.pos.checked_add_signed(delta).expect("bound underflow");
            }
        });
        self.len = self.len.checked_add_signed(delta).expect("len underflow");
    }

    /// Shifts every boundary whose *key* is strictly greater than `key` by
    /// `delta`, and the tracked length with it. This is the shift the Ripple
    /// algorithm needs: inserting a value `v` moves exactly the pieces to the
    /// right of `v`'s piece, i.e. the boundaries with key `> v` — a purely
    /// positional shift would also catch same-position boundaries of empty
    /// pieces on the left of `v`.
    pub fn shift_bounds_key_gt(&mut self, key: V, delta: isize) {
        self.bounds.for_each_mut(|k, e| {
            if k > key {
                e.pos = e.pos.checked_add_signed(delta).expect("bound underflow");
            }
        });
        self.len = self.len.checked_add_signed(delta).expect("len underflow");
    }

    /// Adjusts only the tracked length (batch helpers that maintain bounds
    /// themselves).
    pub fn set_len(&mut self, len: usize) {
        self.len = len;
    }

    /// In-order boundaries as `(key, pos)` (invariant checks / stats).
    pub fn bounds_in_order(&self) -> Vec<(V, usize)> {
        self.bounds.iter().map(|(k, e)| (k, e.pos)).collect()
    }

    /// In-order pieces as `(start, end)` position ranges.
    pub fn pieces_in_order(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.piece_count());
        let mut prev = 0usize;
        for (_, e) in self.bounds.iter() {
            out.push((prev, e.pos));
            prev = e.pos;
        }
        out.push((prev, self.len));
        out
    }

    /// The piece that *starts* at boundary `lo_key` (`None` = position 0):
    /// its position range, latch and upper boundary key. Snapshot refresh
    /// walks a value range piece by piece through this — re-looking the
    /// chain up by key per step, so pieces split by concurrent cracks are
    /// picked up at their current extent (boundaries are never removed, so
    /// a key that once started a piece always does). Returns `None` only
    /// when `lo_key` is not a boundary at all.
    pub fn piece_after(&self, lo_key: Option<V>) -> Option<PieceRef<V>> {
        let (start, latch) = match lo_key {
            None => (0, self.first_latch.clone()),
            Some(k) => {
                let e = self.bounds.get(&k)?;
                (e.pos, e.latch.clone())
            }
        };
        let (end, hi_key) = match lo_key {
            None => match self.bounds.min_key() {
                Some(k) => (self.bounds.get(&k).expect("min key present").pos, Some(k)),
                None => (self.len, None),
            },
            Some(k) => match self.bounds.succ_strict(&k) {
                Some((nk, ne)) => (ne.pos, Some(nk)),
                None => (self.len, None),
            },
        };
        Some(PieceRef {
            start,
            end,
            latch,
            hi_key,
        })
    }

    /// Latch of the piece *starting* at `start` (0 = first piece). Used by
    /// verification reads that walk pieces in order.
    pub fn latch_for_piece_start(&self, start: usize) -> Option<PieceLatch> {
        if start == 0 {
            return Some(self.first_latch.clone());
        }
        // Any boundary whose pos equals `start` owns that piece's latch; with
        // empty pieces several bounds share a pos, in which case the *last*
        // one in key order starts the non-empty piece, but all of them must
        // be latched by a range reader anyway, so returning one is enough
        // only for non-empty pieces. Walk via iteration (cold path).
        self.bounds
            .iter()
            .find(|(_, e)| e.pos == start)
            .map(|(_, e)| e.latch.clone())
    }

    /// Memory used by the index structure itself (rough, for budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.bounds.len() * (std::mem::size_of::<V>() + std::mem::size_of::<BoundEntry>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_index_is_one_piece() {
        let idx = CrackerIndex::<i64>::new(100);
        assert_eq!(idx.piece_count(), 1);
        assert_eq!(idx.avg_piece_len(), 100);
        match idx.locate(50) {
            BoundLookup::Piece {
                start,
                end,
                lo_key,
                hi_key,
                ..
            } => {
                assert_eq!((start, end), (0, 100));
                assert_eq!((lo_key, hi_key), (None, None));
            }
            _ => panic!("expected piece"),
        }
    }

    #[test]
    fn exact_hit_after_insert() {
        let mut idx = CrackerIndex::<i64>::new(100);
        idx.insert_bound(50, 42);
        match idx.locate(50) {
            BoundLookup::Exact(pos) => assert_eq!(pos, 42),
            _ => panic!("expected exact"),
        }
        assert_eq!(idx.piece_count(), 2);
    }

    #[test]
    fn locate_between_bounds() {
        let mut idx = CrackerIndex::<i64>::new(100);
        idx.insert_bound(30, 25);
        idx.insert_bound(70, 80);
        match idx.locate(45) {
            BoundLookup::Piece {
                start,
                end,
                lo_key,
                hi_key,
                ..
            } => {
                assert_eq!((start, end), (25, 80));
                assert_eq!((lo_key, hi_key), (Some(30), Some(70)));
            }
            _ => panic!(),
        }
        match idx.locate(10) {
            BoundLookup::Piece { start, end, .. } => assert_eq!((start, end), (0, 25)),
            _ => panic!(),
        }
        match idx.locate(90) {
            BoundLookup::Piece { start, end, .. } => assert_eq!((start, end), (80, 100)),
            _ => panic!(),
        }
    }

    #[test]
    fn split_keeps_left_latch_and_creates_right() {
        let mut idx = CrackerIndex::<i64>::new(100);
        let left_latch = match idx.locate(50) {
            BoundLookup::Piece { latch, .. } => latch,
            _ => panic!(),
        };
        idx.insert_bound(50, 40);
        // Left piece [0,40) keeps the original latch.
        match idx.locate(20) {
            BoundLookup::Piece {
                start, end, latch, ..
            } => {
                assert_eq!((start, end), (0, 40));
                assert!(latch.same_as(&left_latch));
            }
            _ => panic!(),
        }
        // Right piece [40,100) has a fresh latch.
        match idx.locate(80) {
            BoundLookup::Piece {
                start, end, latch, ..
            } => {
                assert_eq!((start, end), (40, 100));
                assert!(!latch.same_as(&left_latch));
            }
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate boundary")]
    fn duplicate_bound_panics() {
        let mut idx = CrackerIndex::<i64>::new(10);
        idx.insert_bound(5, 3);
        idx.insert_bound(5, 3);
    }

    #[test]
    fn pieces_in_order_covers_column() {
        let mut idx = CrackerIndex::<i64>::new(100);
        idx.insert_bound(30, 25);
        idx.insert_bound(70, 80);
        idx.insert_bound(50, 60);
        assert_eq!(
            idx.pieces_in_order(),
            vec![(0, 25), (25, 60), (60, 80), (80, 100)]
        );
        assert_eq!(idx.bounds_in_order(), vec![(30, 25), (50, 60), (70, 80)]);
    }

    #[test]
    fn shift_bounds_moves_suffix() {
        let mut idx = CrackerIndex::<i64>::new(100);
        idx.insert_bound(30, 25);
        idx.insert_bound(70, 80);
        idx.shift_bounds(80, 1); // insert into the middle piece
        assert_eq!(idx.bounds_in_order(), vec![(30, 25), (70, 81)]);
        assert_eq!(idx.len(), 101);
        idx.shift_bounds(25, -1);
        assert_eq!(idx.bounds_in_order(), vec![(30, 24), (70, 80)]);
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn shift_bounds_key_gt_skips_left_empty_pieces() {
        let mut idx = CrackerIndex::<i64>::new(10);
        // Two bounds sharing position 5 (empty piece between them).
        idx.insert_bound(30, 5);
        idx.insert_bound(40, 5);
        // Inserting value 35 (piece [5,5)) must shift only key 40.
        idx.shift_bounds_key_gt(35, 1);
        assert_eq!(idx.bounds_in_order(), vec![(30, 5), (40, 6)]);
        assert_eq!(idx.len(), 11);
    }

    #[test]
    fn piece_after_walks_the_whole_column() {
        let mut idx = CrackerIndex::<i64>::new(100);
        idx.insert_bound(30, 25);
        idx.insert_bound(70, 80);
        let mut cur = None;
        let mut seen = Vec::new();
        loop {
            let p = idx.piece_after(cur).unwrap();
            seen.push((p.start, p.end, p.hi_key));
            match p.hi_key {
                Some(k) => cur = Some(k),
                None => break,
            }
        }
        assert_eq!(
            seen,
            vec![(0, 25, Some(30)), (25, 80, Some(70)), (80, 100, None)]
        );
        assert!(idx.piece_after(Some(31)).is_none(), "31 is not a boundary");
        // Empty index: one piece spanning everything.
        let empty = CrackerIndex::<i64>::new(7);
        let p = empty.piece_after(None).unwrap();
        assert_eq!((p.start, p.end, p.hi_key), (0, 7, None));
    }

    #[test]
    fn latch_for_piece_start_finds_latches() {
        let mut idx = CrackerIndex::<i64>::new(100);
        idx.insert_bound(30, 25);
        assert!(idx.latch_for_piece_start(0).is_some());
        assert!(idx.latch_for_piece_start(25).is_some());
        assert!(idx.latch_for_piece_start(26).is_none());
    }
}
