//! The holistic indexing engine: adaptive indexing plus the always-on
//! tuning daemon.
//!
//! User queries behave exactly like the adaptive engine (parallel vectorized
//! cracking with the user thread budget); in the background the holistic
//! daemon watches the load accountant and spends every idle hardware context
//! on random-pivot refinements of the registered cracker columns.
//!
//! ## Horizontal shards
//!
//! With [`HolisticEngineConfig::shards`] > 1 each attribute is split into S
//! range-partitioned shards ([`holix_cracking::ShardedColumn`]): every shard
//! is its own cracker column with its own Ripple buffer and its own
//! `(attr, shard)` slot in the [`IndexSpace`], so concurrent queries on the
//! same attribute only contend when their value ranges overlap the same
//! shard, and the daemon's weight heap ranks all `attrs × S` slots
//! uniformly — holistic refinement still picks the globally hottest piece.
//! A query fans out to the shards its predicate intersects and merges
//! counts/sums; fully-covered interior shards answer without cracking.
//!
//! ## Versioned shard plans
//!
//! With [`HolisticEngineConfig::replan`] the shard plan stops being a
//! build-time constant: a replanner thread watches each materialised
//! shard's published [`holix_cracking::PieceStats`] (merged rows +
//! pending backlog), asks `holix_planner::propose_replan` whether a hot
//! shard should split or two cold neighbours merge, and migrates the
//! affected values through [`ShardedColumn::apply_replan`] — sealed
//! predecessor shards drain their Ripple backlog and republish their
//! snapshots, untouched shards are shared by `Arc` into the successor.
//! The new plan is published as a [`PlanEpoch`] through an epoch cell:
//! in-flight queries finish against the `(column, plan)` pair they
//! started with, new queries route by the published epoch, and updates
//! rejected by a sealed predecessor retry against the successor. Readers
//! never block mid-replan.

use crate::api::{Capabilities, Dataset, QueryEngine, SnapshotCollect};
use holix_core::cpu::LoadAccountant;
use holix_core::handle::CrackerHandle;
use holix_core::index_space::{IndexId, IndexSpace, Membership};
use holix_core::{CpuMonitor, CycleRecord, HolisticConfig, HolisticDaemon};
use holix_cracking::{
    CrackScratch, CrackerColumn, EpochCell, PlanEpoch, ReplanAction, ShardPlan, ShardedColumn,
};
use holix_parallel::pvdc::parallel_partition_fn;
use holix_planner::{propose_replan, PlanCost, ReplanPolicy, ShardLoad};
use holix_storage::select::{Predicate, RangeStats};
use holix_workloads::QuerySpec;
use parking_lot::RwLock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static SCRATCH: RefCell<CrackScratch<i64>> = RefCell::new(CrackScratch::new());
}

/// Engine-level configuration on top of the core [`HolisticConfig`].
#[derive(Debug, Clone)]
pub struct HolisticEngineConfig {
    /// Hardware contexts the experiment exposes (the paper's 32).
    pub total_contexts: usize,
    /// Contexts one user query uses for parallel cracking (the paper's
    /// `uN` labels).
    pub user_threads: usize,
    /// Horizontal range shards per attribute (1 = one cracker column per
    /// attribute, the paper's layout).
    pub shards: usize,
    /// Screen equality/IN probes through per-shard point-membership
    /// filters: a filter-negative probe answers "empty" without cracking
    /// anything (the `f_Ih` exact-hit analogue for point traffic).
    pub point_filters: bool,
    /// Run the replanner thread: watch per-shard load skew and publish
    /// split/merge plan revisions through the attribute's epoch cell.
    /// Off by default — the paper's layout is a fixed plan, and frozen
    /// plans are the baseline every `fig_replan` bed compares against.
    pub replan: bool,
    /// Core tuning configuration (x, interval, strategy, budget,
    /// worker_threads …).
    pub holistic: HolisticConfig,
}

impl HolisticEngineConfig {
    /// The paper's preferred split (§5.1/Fig 7): half the contexts to user
    /// queries, the rest to holistic workers, with a fast monitor interval
    /// for laptop-scale runs.
    pub fn split_half(total_contexts: usize) -> Self {
        HolisticEngineConfig {
            total_contexts,
            user_threads: (total_contexts / 2).max(1),
            shards: 1,
            point_filters: true,
            replan: false,
            holistic: HolisticConfig::fast(),
        }
    }

    /// [`HolisticEngineConfig::split_half`] with S shards per attribute.
    pub fn split_half_sharded(total_contexts: usize, shards: usize) -> Self {
        HolisticEngineConfig {
            shards: shards.max(1),
            ..Self::split_half(total_contexts)
        }
    }
}

struct AttrSlot {
    col: Arc<ShardedColumn<i64>>,
    /// One `IndexSpace` slot per shard, parallel to `col`'s shard order.
    /// Shared so the per-query path clones a pointer, not a vector.
    ids: Arc<[IndexId]>,
}

/// The plan-versioned state a replan mutates, shared with the replanner
/// thread. Lock discipline: `plan_cells` is published *before* the slot
/// in `cols` swaps, so a reader that routed by the new epoch always
/// finds a column at least as new (in-flight readers keep their old
/// `(col, ids)` Arcs and finish against the plan they started with).
struct PlanShared {
    cols: Vec<RwLock<Option<AttrSlot>>>,
    /// Per-attribute published plan epoch. Always published (version 0 at
    /// construction); routing and decomposition read it lock-free.
    plan_cells: Vec<EpochCell<PlanEpoch<i64>>>,
    /// Total split/merge cutovers published across all attributes.
    replans: AtomicU64,
}

struct Replanner {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

/// Adaptive indexing + background tuning.
pub struct HolisticEngine {
    data: Dataset,
    cfg: HolisticEngineConfig,
    space: Arc<IndexSpace>,
    accountant: Arc<LoadAccountant>,
    daemon: parking_lot::Mutex<Option<HolisticDaemon>>,
    /// Columns + published plan epochs, shared with the replanner thread.
    shared: Arc<PlanShared>,
    /// Uniform multiplier for [`QueryEngine::routing_key`] — at least the
    /// maximum shard count across attributes, so no two attributes' keys
    /// collide even when some plans collapsed to fewer shards. With
    /// replanning enabled it is widened to the policy's shard cap so
    /// split-born shards get distinct keys; the stride itself never moves
    /// (routing keys must stay comparable across plan versions).
    routing_stride: u64,
    replan_policy: ReplanPolicy,
    replanner: parking_lot::Mutex<Option<Replanner>>,
}

impl HolisticEngine {
    /// Builds the engine and starts the tuning daemon (and, with
    /// [`HolisticEngineConfig::replan`], the replanner thread).
    pub fn new(data: Dataset, cfg: HolisticEngineConfig) -> Self {
        let space = Arc::new(IndexSpace::new(cfg.holistic.clone()));
        let accountant = LoadAccountant::new(cfg.total_contexts);
        let daemon = HolisticDaemon::spawn(
            Arc::clone(&space),
            Arc::clone(&accountant) as Arc<dyn CpuMonitor>,
            cfg.holistic.clone(),
        );
        let plans: Vec<ShardPlan<i64>> = (0..data.attrs())
            .map(|a| ShardPlan::from_values(data.column(a), cfg.shards))
            .collect();
        let replan_policy = ReplanPolicy::default();
        // Uniform routing stride: plans can collapse to fewer shards on
        // low-cardinality attributes, and per-attribute multipliers would
        // make different attributes' key ranges overlap — every key must
        // identify exactly one (attr, shard) structure.
        let mut routing_stride = plans
            .iter()
            .map(ShardPlan::shards)
            .max()
            .unwrap_or(1)
            .max(1) as u64;
        if cfg.replan {
            routing_stride = routing_stride.max(replan_policy.max_shards as u64);
        }
        let plan_cells: Vec<EpochCell<PlanEpoch<i64>>> = plans
            .iter()
            .map(|plan| {
                let cell = EpochCell::new();
                cell.publish(Arc::new(PlanEpoch {
                    version: 0,
                    plan: plan.clone(),
                }));
                cell
            })
            .collect();
        let shared = Arc::new(PlanShared {
            cols: (0..data.attrs()).map(|_| RwLock::new(None)).collect(),
            plan_cells,
            replans: AtomicU64::new(0),
        });
        let replanner = cfg.replan.then(|| {
            spawn_replanner(
                Arc::clone(&shared),
                Arc::clone(&space),
                replan_policy,
                cfg.holistic.monitor_interval,
            )
        });
        HolisticEngine {
            data,
            cfg,
            space,
            accountant,
            daemon: parking_lot::Mutex::new(Some(daemon)),
            shared,
            routing_stride,
            replan_policy,
            replanner: parking_lot::Mutex::new(replanner),
        }
    }

    /// The published plan epoch for an attribute: the lock-free routing
    /// authority. A query that loaded this epoch is *pinned* to it — the
    /// column it fans out over is at least as new as the epoch's plan,
    /// and a concurrent replan publishes a fresh epoch without disturbing
    /// the loaded `Arc`.
    pub fn plan_epoch(&self, attr: usize) -> Arc<PlanEpoch<i64>> {
        self.shared.plan_cells[attr]
            .load()
            .expect("plan epochs are published at construction")
    }

    /// Version of the currently published plan for `attr` (0 until the
    /// first replan cutover).
    pub fn plan_version(&self, attr: usize) -> u64 {
        self.plan_epoch(attr).version
    }

    /// Total replan cutovers (splits + merges) published so far.
    pub fn replan_count(&self) -> u64 {
        self.shared.replans.load(Ordering::Relaxed)
    }

    fn build_column(&self, attr: usize) -> Arc<ShardedColumn<i64>> {
        let refine_threads = self.cfg.holistic.worker_threads.max(1);
        Arc::new(ShardedColumn::with_partition_fns(
            &format!("attr{attr}"),
            self.data.column(attr),
            // The *published* plan, not the construction plan: an
            // attribute evicted after a replan must rebuild with the
            // revised cuts or its routing would silently regress.
            self.plan_epoch(attr).plan.clone(),
            parallel_partition_fn(self.cfg.user_threads),
            parallel_partition_fn(refine_threads),
        ))
    }

    /// Registers all of an attribute's shards as ONE admission batch, so
    /// the storage budget can evict other attributes but never a sibling
    /// shard of the batch being registered (which would leave this slot
    /// born-dead and rebuilt on every query).
    fn register_shards(
        &self,
        col: &Arc<ShardedColumn<i64>>,
        register_batch: impl FnOnce(
            Vec<Arc<dyn holix_core::RefinableIndex>>,
        ) -> Vec<(IndexId, Arc<holix_core::IndexStats>)>,
    ) -> Arc<[IndexId]> {
        let handles: Vec<Arc<dyn holix_core::RefinableIndex>> = (0..col.shard_count())
            .map(|k| {
                Arc::new(CrackerHandle::new(Arc::clone(col.shard(k))))
                    as Arc<dyn holix_core::RefinableIndex>
            })
            .collect();
        register_batch(handles)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn slot_live(&self, slot: &AttrSlot) -> bool {
        // Without a storage budget nothing is ever evicted — skip the
        // per-shard membership probes on the hot path.
        if self.cfg.holistic.storage_budget.is_none() {
            return true;
        }
        slot.ids
            .iter()
            .all(|&id| self.space.membership(id) != Some(Membership::Dropped))
    }

    /// Gets (or creates / re-creates after eviction) the sharded column for
    /// an attribute; creation registers every shard in `C_actual`.
    /// Eviction granularity is the whole attribute: when any shard slot was
    /// dropped by the storage budget, all of the attribute's shards are
    /// rebuilt and re-registered.
    pub fn sharded(&self, attr: usize) -> (Arc<ShardedColumn<i64>>, Arc<[IndexId]>) {
        {
            let guard = self.shared.cols[attr].read();
            if let Some(slot) = guard.as_ref() {
                if self.slot_live(slot) {
                    return (Arc::clone(&slot.col), Arc::clone(&slot.ids));
                }
            }
        }
        let mut guard = self.shared.cols[attr].write();
        if let Some(slot) = guard.as_ref() {
            if self.slot_live(slot) {
                return (Arc::clone(&slot.col), Arc::clone(&slot.ids));
            }
            // Partial eviction: the budget dropped some shard(s). The
            // survivors must be retired before the rebuild, or their live
            // registry entries become unreachable orphans double-counting
            // the budget and feeding the daemon dead columns.
            self.retire_slot(slot);
        }
        let col = self.build_column(attr);
        let ids = self.register_shards(&col, |hs| self.space.register_actual_batch(hs));
        *guard = Some(AttrSlot {
            col: Arc::clone(&col),
            ids: Arc::clone(&ids),
        });
        (col, ids)
    }

    fn retire_slot(&self, slot: &AttrSlot) {
        for &id in slot.ids.iter() {
            self.space.retire(id);
        }
    }

    /// The first shard's cracker column and slot id. With `shards == 1`
    /// (the default) this is the attribute's whole cracker column —
    /// invariant checks and single-column experiments use it.
    pub fn column(&self, attr: usize) -> (Arc<CrackerColumn<i64>>, IndexId) {
        let (col, ids) = self.sharded(attr);
        (Arc::clone(col.shard(0)), ids[0])
    }

    /// Adds speculative indices to `C_potential` (the Fig 9 idle-time
    /// scenario: "holistic indexing chooses random indexes to insert in
    /// C_potential and refines them until the first query arrives").
    ///
    /// A slot whose index was evicted by the storage budget
    /// ([`Membership::Dropped`]) is re-registered, mirroring
    /// [`HolisticEngine::sharded`] — an occupied-but-dead slot must not
    /// block re-speculation.
    pub fn add_potential(&self, attrs: &[usize]) {
        for &attr in attrs {
            let mut guard = self.shared.cols[attr].write();
            if let Some(slot) = guard.as_ref() {
                if self.slot_live(slot) {
                    continue;
                }
                self.retire_slot(slot);
            }
            let col = self.build_column(attr);
            let ids = self.register_shards(&col, |hs| self.space.register_potential_batch(hs));
            *guard = Some(AttrSlot { col, ids });
        }
    }

    /// The shared index space (inspection / experiments).
    pub fn space(&self) -> &Arc<IndexSpace> {
        &self.space
    }

    /// The load accountant — external load (e.g. other clients) can be
    /// modelled by holding task guards.
    pub fn accountant(&self) -> &Arc<LoadAccountant> {
        &self.accountant
    }

    /// Shards per attribute.
    pub fn shard_count(&self) -> usize {
        self.shared
            .plan_cells
            .first()
            .and_then(EpochCell::load)
            .map_or(1, |e| e.plan.shards())
    }

    /// Total pieces across all live indices (Fig 6(c)).
    pub fn total_pieces(&self) -> usize {
        self.space.total_pieces()
    }

    /// Tuning-cycle records so far (Fig 6(d)).
    pub fn cycles(&self) -> Vec<CycleRecord> {
        self.daemon
            .lock()
            .as_ref()
            .map(|d| d.cycles())
            .unwrap_or_default()
    }

    /// Stops the daemon and returns all cycle records. The daemon's final
    /// duty is to leave every materialised shard's plan-time summary
    /// fresh (it republished once per cycle while alive), so plan-priced
    /// decisions stay accurate after the background refresher is gone.
    pub fn stop(&self) -> Vec<CycleRecord> {
        // The replanner goes first: a migration racing daemon shutdown
        // would re-register successor shards into a space nobody refines.
        if let Some(replanner) = self.replanner.lock().take() {
            replanner.stop.store(true, Ordering::Relaxed);
            let _ = replanner.handle.join();
        }
        let Some(daemon) = self.daemon.lock().take() else {
            return Vec::new();
        };
        let records = daemon.stop();
        for slot in &self.shared.cols {
            if let Some(slot) = slot.read().as_ref() {
                for k in 0..slot.col.shard_count() {
                    slot.col.shard(k).maybe_publish_stats(1);
                }
            }
        }
        records
    }

    /// Queues an insertion of `v` for base row `row` on `attr`; it lands in
    /// the pending buffer of exactly the shard owning `v`'s value range and
    /// is merged when a query or worker touches that range (Ripple).
    ///
    /// A shard sealed for migration rejects the enqueue; the update
    /// retries against the successor plan once its cutover publishes (or
    /// against the reopened shard if the migration aborted) — updates are
    /// never silently dropped across a replan.
    pub fn queue_insert(&self, attr: usize, v: i64, row: holix_storage::types::RowId) {
        loop {
            let (col, _) = self.sharded(attr);
            if col.queue_insert(v, row) {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Queues a deletion of the value previously inserted for `row`
    /// (same sealed-shard retry discipline as [`Self::queue_insert`]).
    pub fn queue_delete(&self, attr: usize, v: i64, row: holix_storage::types::RowId) {
        loop {
            let (col, _) = self.sharded(attr);
            if col.queue_delete(v, row) {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Evaluates the replan policy for one attribute and, when it fires,
    /// migrates and publishes the successor plan. Returns the applied
    /// action. Cold (never-materialised) attributes are never replanned.
    pub fn maybe_replan(&self, attr: usize) -> Option<ReplanAction> {
        maybe_replan_attr(&self.shared, &self.space, &self.replan_policy, attr)
    }

    /// Applies a specific split/merge unconditionally (tests and the
    /// `fig_replan` harness force migrations the policy would pace).
    /// Returns `false` when the attribute is cold, the action is out of
    /// range, or the migration aborted (e.g. an unsplittable
    /// constant-valued shard).
    pub fn force_replan(&self, attr: usize, action: ReplanAction) -> bool {
        let Some((col, ids)) = peek_slot(&self.shared, attr) else {
            return false;
        };
        apply_replan_action(&self.shared, &self.space, attr, &col, &ids, action)
    }

    /// Fans a predicate out to the intersecting shards, records per-shard
    /// statistics and folds each shard's selection through `fold`.
    fn fan_out<T>(
        &self,
        q: &QuerySpec,
        mut fold: impl FnMut(
            &CrackerColumn<i64>,
            Predicate<i64>,
            &mut CrackScratch<i64>,
        ) -> (holix_cracking::Selection, T),
        mut merge: impl FnMut(T),
    ) {
        let _task = self.accountant.begin_task(self.cfg.user_threads);
        let (col, ids) = self.sharded(q.attr);
        let pred = Predicate::range(q.lo, q.hi);
        let plan = col.plan();
        let Some((first, last)) = plan.shard_range(pred.lo, pred.hi) else {
            return;
        };
        SCRATCH.with(|s| {
            let scratch = &mut s.borrow_mut();
            // Inline fan-out (no intermediate Vec: this runs per query).
            for k in first..=last {
                let (sel, out) = fold(col.shard(k), plan.clamp(k, pred), scratch);
                let cracked = (!sel.hit_lo) as u64 + (!sel.hit_hi) as u64;
                self.space
                    .record_user_query(ids[k], sel.exact_hit(), cracked);
                merge(out);
            }
        });
        // Keep the planner's summaries loosely fresh: a cheap version
        // check per touched shard, the O(p) republish only every ~32
        // structural changes (the daemon forces the remainder each cycle).
        for k in first..=last {
            col.shard(k).maybe_publish_stats(32);
        }
    }

    /// Point-probe screening: `Some(0)` when the owning shard's membership
    /// filter **proves** `v` absent — the probe answers empty having
    /// touched no piece and cracked nothing (recorded as an exact hit, the
    /// paper's `f_Ih` statistic extended to point traffic). `None` when
    /// the value may be present or screening is disabled; the caller runs
    /// the normal unit-range fan-out, which cracks at most one shard.
    /// Screening must inspect the *original* bounds: `ShardPlan::clamp`
    /// widens a unit range ending exactly at a shard cut to the `MAX`
    /// sentinel, which no longer reads as a point.
    fn screen_point(&self, attr: usize, v: i64) -> Option<u64> {
        if !self.cfg.point_filters {
            return None;
        }
        let (col, ids) = self.sharded(attr);
        let k = col.plan().shard_of(v);
        let shard = col.shard(k);
        shard.ensure_point_filter();
        if shard.probe_point(v) == Some(false) {
            self.space.record_user_query(ids[k], true, 0);
            return Some(0);
        }
        None
    }

    /// The locked range fan-out shared by [`QueryEngine::execute`] and the
    /// unit-range fallbacks of the point paths (which have already probed
    /// the filter and must not probe again).
    fn execute_range(&self, q: &QuerySpec) -> u64 {
        let mut count = 0u64;
        self.fan_out(
            q,
            |shard, pred, scratch| {
                let sel = shard.select(pred, scratch);
                (sel, sel.count())
            },
            |c| count += c,
        );
        count
    }
}

impl QueryEngine for HolisticEngine {
    fn name(&self) -> &'static str {
        "holistic"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            workload_analysis: true,
            idle_before_queries: true,
            idle_during_queries: true,
            full_materialization: false,
            high_update_cost: false,
            dynamic: true,
            point_screening: true,
        }
    }

    fn plan_version(&self, q: &QuerySpec) -> u64 {
        HolisticEngine::plan_version(self, q.attr)
    }

    fn execute(&self, q: &QuerySpec) -> u64 {
        if let Some(v) = Predicate::range(q.lo, q.hi).as_point() {
            if let Some(n) = self.screen_point(q.attr, v) {
                return n;
            }
        }
        self.execute_range(q)
    }

    fn execute_verified(&self, q: &QuerySpec) -> (u64, i128) {
        let mut stats = RangeStats::default();
        self.fan_out(
            q,
            |shard, pred, scratch| {
                let (sel, s) = shard.select_verified(pred, scratch);
                (sel, s)
            },
            |s| stats.merge(s),
        );
        (stats.count, stats.sum)
    }

    fn routing_key(&self, q: &QuerySpec) -> u64 {
        // Home shard of the lower bound under the *published* plan epoch:
        // narrow hot-set queries land whole on one shard, so per-key
        // pinning keeps workers off each other's latches for the dominant
        // traffic. The stride is uniform across attributes so keys of
        // different attributes never collide; the clamp covers a plan
        // that split past the stride (pinning is a contention
        // optimisation, never a safety invariant, so key aliasing in that
        // tail is acceptable).
        let shard = self.plan_epoch(q.attr).plan.shard_of(q.lo) as u64;
        q.attr as u64 * self.routing_stride + shard.min(self.routing_stride - 1)
    }

    fn estimate_cost(&self, q: &QuerySpec) -> Option<PlanCost> {
        let pred = Predicate::range(q.lo, q.hi);
        // Read-only peek at the attribute slot: a cold attribute must NOT
        // be materialised here (admission control prices queries before
        // anything commits to paying the O(N) column copy) — its price is
        // exactly that copy-and-crack.
        let guard = self.shared.cols[q.attr].read();
        let Some(slot) = guard.as_ref().filter(|s| self.slot_live(s)) else {
            return Some(PlanCost::cold(self.data.rows()));
        };
        let col = &slot.col;
        let plan = col.plan();
        // Point screening at plan time, from the *published* filter only —
        // a lock-free epoch load plus k bit probes; `ensure_point_filter`
        // (which takes locks) is never called here. A negative probe
        // prices the query Screened: admission executes it inline instead
        // of spending a queue slot. Probes on unbuilt filters fall through
        // to normal range pricing.
        if self.cfg.point_filters {
            if let Some(v) = pred.as_point() {
                if col.shard(plan.shard_of(v)).probe_point(v) == Some(false) {
                    return Some(PlanCost::screened_point());
                }
            }
        }
        let Some((first, last)) = plan.shard_range(pred.lo, pred.hi) else {
            // Empty predicate: free.
            return Some(PlanCost {
                exact_hit: true,
                ..PlanCost::default()
            });
        };
        let mut cost = PlanCost::default();
        for k in first..=last {
            // `piece_stats` is a lock-free Arc load out of the shard's
            // epoch-published cell; `estimate` is a pure function of it —
            // no structure lock, no index lock, no maintenance lock.
            let shard_cost = match col.shard(k).piece_stats() {
                Some(stats) => holix_planner::estimate(&stats, plan.clamp(k, pred)),
                // Columns publish at build, so this is unreachable in
                // practice — and `data.rows()` keeps even the fallback free
                // of index locks.
                None => PlanCost::cold(self.data.rows()),
            };
            cost.merge(shard_cost);
        }
        Some(cost)
    }

    fn decompose(&self, q: &QuerySpec) -> Option<Vec<QuerySpec>> {
        // Derives from the published plan epoch only (like routing_key):
        // stable across eviction and never materialises a column. Parts
        // cut at a replanned boundary stay correct even if another replan
        // publishes before they execute — each part is a plain range
        // query; boundary cuts only lose their single-shard affinity.
        holix_planner::decompose_spanning(&self.plan_epoch(q.attr).plan, q)
    }

    fn execute_snapshot(&self, q: &QuerySpec) -> Option<(u64, i128)> {
        let _task = self.accountant.begin_task(self.cfg.user_threads);
        let (col, ids) = self.sharded(q.attr);
        let pred = Predicate::range(q.lo, q.hi);
        let plan = col.plan();
        let Some((first, last)) = plan.shard_range(pred.lo, pred.hi) else {
            return Some((0, 0));
        };
        SCRATCH.with(|s| {
            let scratch = &mut s.borrow_mut();
            let mut count = 0u64;
            let mut sum = 0i128;
            for k in first..=last {
                let scan = col.shard(k).snapshot_scan(plan.clamp(k, pred), scratch);
                // Snapshot reads never crack; a scan that needed no edge
                // filtering hit snapshot boundaries exactly (the `f_Ih`
                // analogue). Recording keeps the weight heap hot so the
                // daemon still refines what snapshot traffic touches.
                self.space.record_user_query(ids[k], scan.filtered == 0, 0);
                count += scan.count;
                sum += scan.sum;
            }
            Some((count, sum))
        })
    }

    fn execute_collect_snapshot(&self, q: &QuerySpec) -> SnapshotCollect {
        // Same copy cap as the locked collect path: past this many
        // qualifying values, containment coalescing stops paying for the
        // materialisation — and since the locked path shares the cap, the
        // overflow is reported as `CapExceeded`, not `Unsupported`, so the
        // caller does not re-materialise the same doomed superset under
        // the shard locks.
        const COLLECT_CAP: usize = 1 << 16;
        let _task = self.accountant.begin_task(self.cfg.user_threads);
        let (col, ids) = self.sharded(q.attr);
        let pred = Predicate::range(q.lo, q.hi);
        let plan = col.plan();
        let Some((first, last)) = plan.shard_range(pred.lo, pred.hi) else {
            return SnapshotCollect::Values(Vec::new());
        };
        SCRATCH.with(|s| {
            let scratch = &mut s.borrow_mut();
            // Pre-count with the O(pieces + edges) aggregate scan before
            // materialising anything: a wide superset past the cap must
            // not first copy its (possibly huge) qualifying set only to
            // throw it away — the same pre-count discipline as the locked
            // collect path.
            let mut total = 0u64;
            for k in first..=last {
                let scan = col.shard(k).snapshot_scan(plan.clamp(k, pred), scratch);
                self.space.record_user_query(ids[k], scan.filtered == 0, 0);
                total += scan.count;
                if total > COLLECT_CAP as u64 {
                    return SnapshotCollect::CapExceeded;
                }
            }
            // Updates can land between the count and the copy, so the
            // collect can exceed the pre-count slightly — the cap is a
            // cost heuristic, not a hard limit, exactly as on the locked
            // path (which also races its select counts against the copy).
            let mut values = Vec::with_capacity(total as usize);
            for k in first..=last {
                col.shard(k)
                    .snapshot_collect(plan.clamp(k, pred), scratch, &mut values);
            }
            SnapshotCollect::Values(values)
        })
    }

    fn execute_collect(&self, q: &QuerySpec) -> Option<Vec<i64>> {
        // Copy cap: past this many qualifying values, materialising them
        // (a snapshot under each shard's exclusive structure lock) costs
        // more than the per-query executions containment coalescing would
        // save — and an unselective superset must never turn the service's
        // fast path into a multi-megabyte copy. The cracks the attempt
        // performed are kept, so the fallback executions are exact hits.
        const COLLECT_CAP: u64 = 1 << 16;
        let mut values = Some(Vec::new());
        let mut total = 0u64;
        let mut doomed = false;
        self.fan_out(
            q,
            |shard, pred, scratch| {
                let sel = shard.select(pred, scratch);
                total += sel.count();
                // `collect_range` re-locates the bounds under the shard's
                // exclusive structure lock, so a Ripple merge racing the
                // select cannot make the copy serve a stale window; it
                // reflects the merged state at the instant of the copy.
                // Once any shard overflowed the cap or failed to locate
                // its bounds the overall result is None — skip further
                // copies (each would take an exclusive lock for nothing);
                // the selects still run for their cracking side effect.
                let vals = if !doomed && total <= COLLECT_CAP {
                    shard.collect_range(pred)
                } else {
                    None
                };
                doomed |= vals.is_none();
                (sel, vals)
            },
            |v: Option<Vec<i64>>| match v {
                Some(v) => {
                    if let Some(values) = values.as_mut() {
                        values.extend(v);
                    }
                }
                None => values = None,
            },
        );
        values
    }

    fn execute_points(&self, attr: usize, values: &[i64]) -> Option<u64> {
        // Dedupe: an IN list counts each qualifying tuple once, and
        // coalesced batches legitimately repeat values.
        let mut vals: Vec<i64> = values.to_vec();
        vals.sort_unstable();
        vals.dedup();
        let mut total = 0u64;
        for v in vals {
            if v == i64::MAX {
                continue; // the sentinel cannot be probed (empty unit range)
            }
            if let Some(n) = self.screen_point(attr, v) {
                total += n; // filter-negative: zero cracks, zero touches
                continue;
            }
            // Maybe-present: the unit-range fan-out cracks (at most) the
            // one shard owning `v`. Bypasses `execute` so a probe that
            // already failed screening is not screened twice.
            total += self.execute_range(&QuerySpec {
                attr,
                lo: v,
                hi: v + 1,
            });
        }
        Some(total)
    }

    fn execute_conjunction(&self, terms: &[QuerySpec]) -> Option<u64> {
        // Past this many driver rows, materialising the row-id set costs
        // more than the intersection saves — same cap discipline as the
        // collect paths; callers fall back to per-term execution.
        const DRIVER_CAP: u64 = 1 << 16;
        if terms.is_empty() {
            return Some(0);
        }
        if terms
            .iter()
            .any(|t| Predicate::range(t.lo, t.hi).is_empty())
        {
            return Some(0); // one empty term empties the conjunction
        }
        // Driver: the term expected to qualify fewest rows. Elected by
        // the equi-depth cardinality estimate (`est_rows`, interpolated
        // inside the edge pieces), not the conservative positional span —
        // on a coarsely cracked attribute the span covers whole pieces
        // and would lose a selective term the histogram can see. Ties and
        // cold attributes (est = full length) fall back to first-wins,
        // exactly as before. Lock-free: priced from published statistics.
        let di = terms
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| self.estimate_cost(t).map_or(u64::MAX, |c| c.est_rows))
            .map(|(i, _)| i)?;
        let driver = &terms[di];
        // Collect the driver's qualifying *base row ids* shard by shard
        // (select cracks the bounds, the positional copy re-locates them
        // under the shard's exclusive lock — same protocol as
        // `execute_collect`).
        let mut rows: Option<Vec<holix_storage::types::RowId>> = Some(Vec::new());
        let mut total = 0u64;
        let mut doomed = false;
        self.fan_out(
            driver,
            |shard, pred, scratch| {
                let sel = shard.select(pred, scratch);
                total += sel.count();
                let ids = if !doomed && total <= DRIVER_CAP {
                    shard.collect_row_ids(pred)
                } else {
                    None
                };
                doomed |= ids.is_none();
                (sel, ids)
            },
            |ids: Option<Vec<holix_storage::types::RowId>>| match ids {
                Some(ids) => {
                    if let Some(rows) = rows.as_mut() {
                        rows.extend(ids);
                    }
                }
                None => rows = None,
            },
        );
        let rows = rows?;
        // Conjunctions are answered over the *base table*: row ids at or
        // past `data.rows()` belong to queued inserts, whose other-attribute
        // values the engine does not store — they are excluded by
        // definition, so results stay exact under concurrent updates that
        // only add or delete their own inserted rows.
        let base_rows = self.data.rows();
        let others: Vec<(usize, Predicate<i64>)> = terms
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != di)
            .map(|(_, t)| (t.attr, Predicate::range(t.lo, t.hi)))
            .collect();
        let mut count = 0u64;
        for &r in &rows {
            let r = r as usize;
            if r >= base_rows {
                continue;
            }
            if others
                .iter()
                .all(|&(attr, p)| p.matches_unbounded(self.data.column(attr)[r]))
            {
                count += 1;
            }
        }
        Some(count)
    }
}

impl Drop for HolisticEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// An attribute's published sharded column and its per-shard index ids.
type SlotPair = (Arc<ShardedColumn<i64>>, Arc<[IndexId]>);

/// Clones the live `(column, ids)` pair for an attribute without
/// materialising anything — `None` for cold attributes.
fn peek_slot(shared: &PlanShared, attr: usize) -> Option<SlotPair> {
    let guard = shared.cols[attr].read();
    let slot = guard.as_ref()?;
    Some((Arc::clone(&slot.col), Arc::clone(&slot.ids)))
}

/// Row-equivalents charged per recorded query when converting a shard's
/// `f_I` into [`ShardLoad::access`] heat: one query-touch weighs like
/// scanning this many resident rows. `f_I` is cumulative, but a split
/// re-registers the hot halves with fresh counters, so the heat a split is
/// meant to dissipate actually resets afterwards — untouched shards keep
/// their accumulated weight by `Arc` identity, which is exactly the skew
/// signal the policy wants.
const ACCESS_ROW_EQUIV: u64 = 64;

/// One policy evaluation for one attribute: read per-shard loads from the
/// published statistics (lock-free), propose, migrate, publish.
fn maybe_replan_attr(
    shared: &PlanShared,
    space: &IndexSpace,
    policy: &ReplanPolicy,
    attr: usize,
) -> Option<ReplanAction> {
    let (col, ids) = peek_slot(shared, attr)?;
    // Refresh before reading: the daemon republishes the shards it
    // refines each cycle, but a pure pending pile-up (updates with no
    // queries) advances no refinement — the policy must not starve on
    // stale summaries. `maybe_publish_stats(1)` is a no-op when nothing
    // changed.
    for k in 0..col.shard_count() {
        col.shard(k).maybe_publish_stats(1);
    }
    let loads: Vec<ShardLoad> = (0..col.shard_count())
        .map(|k| {
            // Access heat: the shard's registry `f_I` (queries routed to
            // it) in row-equivalents, so a small shard every query hammers
            // can out-weigh a large cold one and trip the split skew.
            let access = ids
                .get(k)
                .and_then(|&id| space.get(id))
                .map(|(_, stats)| (stats.queries().saturating_mul(ACCESS_ROW_EQUIV)) as usize)
                .unwrap_or(0);
            match col.shard(k).piece_stats() {
                Some(s) => ShardLoad {
                    rows: s.len,
                    pending: s.pending,
                    access,
                },
                // Columns publish at build; the fallback reads the live
                // lengths so a stats-less shard is not mistaken for empty.
                None => ShardLoad {
                    rows: col.shard(k).len(),
                    pending: col.shard(k).pending_len(),
                    access,
                },
            }
        })
        .collect();
    let action = propose_replan(&loads, policy)?;
    if holix_telemetry::metrics_enabled() {
        holix_telemetry::counter!("planner_replan_proposals_total").inc();
    }
    apply_replan_action(shared, space, attr, &col, &ids, action).then_some(action)
}

/// Migrates `action` against `col` and publishes the successor plan.
///
/// Readers are never blocked: the migration seals and drains only the
/// replaced shard(s) while queries keep executing against the predecessor
/// `(col, ids)` they already cloned. The cutover order is
/// plan-epoch-then-slot, so any query routed by the new epoch finds a
/// column at least that new; the replaced shards' registry entries are
/// retired and the rebuilt shards registered, untouched shards keep their
/// identity (and their accumulated daemon weights) by `Arc` sharing.
fn apply_replan_action(
    shared: &PlanShared,
    space: &IndexSpace,
    attr: usize,
    col: &Arc<ShardedColumn<i64>>,
    ids: &Arc<[IndexId]>,
    action: ReplanAction,
) -> bool {
    let Some(successor) = col.apply_replan(action) else {
        return false;
    };
    let successor = Arc::new(successor);
    let mut guard = shared.cols[attr].write();
    match guard.as_ref() {
        // The slot was evicted and rebuilt while we migrated: our
        // predecessor is defunct, the successor is based on stale shards —
        // abandon it (its fresh shards were never registered; updates the
        // sealed shards rejected retry against the rebuilt slot).
        Some(slot) if !Arc::ptr_eq(&slot.col, col) => return false,
        None => return false,
        Some(_) => {}
    }
    // Identity-diff the shard lists: untouched shards were shared by
    // `Arc` into the successor and keep their registry ids.
    let mut new_ids: Vec<Option<IndexId>> = vec![None; successor.shard_count()];
    let mut reused = vec![false; col.shard_count()];
    for (j, slot_id) in new_ids.iter_mut().enumerate() {
        for i in 0..col.shard_count() {
            if !reused[i] && Arc::ptr_eq(successor.shard(j), col.shard(i)) {
                *slot_id = Some(ids[i]);
                reused[i] = true;
                break;
            }
        }
    }
    let fresh: Vec<Arc<dyn holix_core::RefinableIndex>> = (0..successor.shard_count())
        .filter(|&j| new_ids[j].is_none())
        .map(|j| {
            Arc::new(CrackerHandle::new(Arc::clone(successor.shard(j))))
                as Arc<dyn holix_core::RefinableIndex>
        })
        .collect();
    let mut registered = space.register_actual_batch(fresh).into_iter();
    for slot_id in new_ids.iter_mut() {
        if slot_id.is_none() {
            *slot_id = registered.next().map(|(id, _)| id);
        }
    }
    let new_ids: Arc<[IndexId]> = new_ids
        .into_iter()
        .map(|id| id.expect("one registration per rebuilt shard"))
        .collect();
    for i in 0..col.shard_count() {
        if !reused[i] {
            space.retire(ids[i]);
        }
    }
    // Seed the successor's rebuilt shards with fresh statistics so the
    // next policy evaluation (and plan-priced admission) sees them.
    for k in 0..successor.shard_count() {
        successor.shard(k).maybe_publish_stats(1);
    }
    let version = shared.plan_cells[attr].load().map_or(1, |e| e.version + 1);
    shared.plan_cells[attr].publish(Arc::new(PlanEpoch {
        version,
        plan: successor.plan().clone(),
    }));
    *guard = Some(AttrSlot {
        col: successor,
        ids: new_ids,
    });
    drop(guard);
    shared.replans.fetch_add(1, Ordering::Relaxed);
    if holix_telemetry::metrics_enabled() {
        holix_telemetry::counter!("planner_replan_applies_total").inc();
    }
    true
}

/// The replanner thread: a policy sweep over all attributes every
/// `interval`, for as long as the engine lives.
fn spawn_replanner(
    shared: Arc<PlanShared>,
    space: Arc<IndexSpace>,
    policy: ReplanPolicy,
    interval: std::time::Duration,
) -> Replanner {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("holix-replanner".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                for attr in 0..shared.cols.len() {
                    if stop_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    maybe_replan_attr(&shared, &space, &policy, attr);
                }
                std::thread::sleep(interval);
            }
        })
        .expect("spawn replanner thread");
    Replanner { stop, handle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_storage::select::scan_stats;
    use holix_workloads::data::uniform_table;
    use rand::prelude::*;
    use std::time::Duration;

    fn engine(attrs: usize, rows: usize) -> HolisticEngine {
        let data = Dataset::new(uniform_table(attrs, rows, 1_000_000, 3));
        let mut cfg = HolisticEngineConfig::split_half(4);
        cfg.holistic.monitor_interval = Duration::from_millis(1);
        HolisticEngine::new(data, cfg)
    }

    fn sharded_engine(attrs: usize, rows: usize, shards: usize) -> HolisticEngine {
        let data = Dataset::new(uniform_table(attrs, rows, 1_000_000, 3));
        let mut cfg = HolisticEngineConfig::split_half_sharded(4, shards);
        cfg.holistic.monitor_interval = Duration::from_millis(1);
        HolisticEngine::new(data, cfg)
    }

    #[test]
    fn queries_match_scan_oracle_while_daemon_runs() {
        let e = engine(3, 100_000);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..60 {
            let attr = rng.random_range(0..3);
            let a = rng.random_range(0..1_000_000);
            let b = rng.random_range(0..1_000_000);
            let q = QuerySpec {
                attr,
                lo: a.min(b),
                hi: a.max(b).max(a.min(b) + 1),
            };
            let oracle = scan_stats(e.data.column(attr), Predicate::range(q.lo, q.hi));
            assert_eq!(e.execute(&q), oracle.count);
        }
        e.stop();
    }

    #[test]
    fn sharded_queries_match_scan_oracle_while_daemon_runs() {
        let e = sharded_engine(2, 100_000, 4);
        assert_eq!(e.shard_count(), 4);
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..80 {
            let attr = rng.random_range(0..2);
            let a = rng.random_range(0..1_000_000);
            let b = rng.random_range(0..1_000_000);
            let q = QuerySpec {
                attr,
                lo: a.min(b),
                hi: a.max(b).max(a.min(b) + 1),
            };
            let oracle = scan_stats(e.data.column(attr), Predicate::range(q.lo, q.hi));
            assert_eq!(e.execute(&q), oracle.count);
            let (count, sum) = e.execute_verified(&q);
            assert_eq!((count, sum), (oracle.count, oracle.sum));
        }
        // One IndexSpace slot per (attr, shard) that was touched.
        let (a, p, o, d) = e.space().membership_counts();
        assert_eq!(a + p + o + d, 2 * 4);
        e.stop();
    }

    #[test]
    fn point_probes_match_oracle_and_absent_values_crack_nothing() {
        // Even values only: every odd probe is provably absent.
        let base: Vec<i64> = (0..40_000).map(|i| (i % 10_000) * 2).collect();
        let data = Dataset::new(vec![base.clone()]);
        let mut cfg = HolisticEngineConfig::split_half_sharded(4, 4);
        cfg.holistic.monitor_interval = Duration::from_millis(1);
        let e = HolisticEngine::new(data, cfg);
        // Warm the filters with one probe per shard region, then snapshot
        // the piece count: further absent probes must not crack.
        for v in [1i64, 6_001, 12_001, 18_001] {
            assert_eq!(
                e.execute(&QuerySpec {
                    attr: 0,
                    lo: v,
                    hi: v + 1
                }),
                0
            );
        }
        let (col, _) = e.sharded(0);
        let pieces = col.piece_count();
        for i in 0..500 {
            let v = i * 39 * 2 % 20_000 + 1; // odd → absent
            assert_eq!(
                e.execute(&QuerySpec {
                    attr: 0,
                    lo: v,
                    hi: v + 1
                }),
                0
            );
        }
        assert_eq!(
            col.piece_count(),
            pieces,
            "absent point probes cracked shards"
        );
        // Present values still count exactly (4 copies of each even value).
        for v in [0i64, 5_000, 19_998] {
            assert_eq!(
                e.execute(&QuerySpec {
                    attr: 0,
                    lo: v,
                    hi: v + 1
                }),
                4
            );
        }
        e.stop();
    }

    #[test]
    fn execute_points_counts_in_lists_with_duplicates() {
        let e = sharded_engine(1, 50_000, 4);
        let base = e.data.column(0).to_vec();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let mut vals: Vec<i64> = (0..8).map(|_| rng.random_range(0..1_000_000)).collect();
            vals.push(vals[0]); // duplicate must not double-count
            let got = e.execute_points(0, &vals).unwrap();
            let mut dedup = vals.clone();
            dedup.sort_unstable();
            dedup.dedup();
            let want = base
                .iter()
                .filter(|v| dedup.binary_search(v).is_ok())
                .count() as u64;
            assert_eq!(got, want);
        }
        e.stop();
    }

    #[test]
    fn execute_conjunction_matches_base_table_oracle() {
        let e = sharded_engine(3, 50_000, 4);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let terms: Vec<QuerySpec> = (0..3)
                .map(|attr| {
                    let a = rng.random_range(0..1_000_000);
                    let b = rng.random_range(0..1_000_000);
                    QuerySpec {
                        attr,
                        lo: a.min(b),
                        hi: a.max(b).max(a.min(b) + 1),
                    }
                })
                .collect();
            let got = e.execute_conjunction(&terms);
            let want = (0..e.data.rows())
                .filter(|&r| {
                    terms
                        .iter()
                        .all(|t| (t.lo..t.hi).contains(&e.data.column(t.attr)[r]))
                })
                .count() as u64;
            // Driver sets past the cap legitimately return None; these
            // selectivities stay far below it, so the result must be exact.
            assert_eq!(got, Some(want));
        }
        // One empty term empties the conjunction.
        let terms = vec![
            QuerySpec {
                attr: 0,
                lo: 0,
                hi: 1_000_000,
            },
            QuerySpec {
                attr: 1,
                lo: 500,
                hi: 500,
            },
        ];
        assert_eq!(e.execute_conjunction(&terms), Some(0));
        assert_eq!(e.execute_conjunction(&[]), Some(0));
        e.stop();
    }

    #[test]
    fn execute_collect_returns_qualifying_values() {
        let e = sharded_engine(1, 50_000, 3);
        let q = QuerySpec {
            attr: 0,
            lo: 250_000,
            hi: 750_000,
        };
        let mut got = e.execute_collect(&q).unwrap();
        got.sort_unstable();
        let mut want: Vec<i64> = e
            .data
            .column(0)
            .iter()
            .copied()
            .filter(|&v| (250_000..750_000).contains(&v))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        e.stop();
    }

    #[test]
    fn snapshot_execution_matches_locked_path_and_oracle() {
        let e = sharded_engine(2, 80_000, 4);
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..60 {
            let attr = rng.random_range(0..2);
            let a = rng.random_range(0..1_000_000);
            let b = rng.random_range(0..1_000_000);
            let q = QuerySpec {
                attr,
                lo: a.min(b),
                hi: a.max(b).max(a.min(b) + 1),
            };
            let oracle = scan_stats(e.data.column(attr), Predicate::range(q.lo, q.hi));
            let (count, sum) = e.execute_snapshot(&q).expect("holistic supports snapshots");
            assert_eq!((count, sum), (oracle.count, oracle.sum), "i={i}");
            // Interleave locked executions so cracks/merges race snapshots.
            assert_eq!(e.execute(&q), oracle.count, "i={i}");
        }
        e.stop();
    }

    #[test]
    fn snapshot_execution_sees_queued_updates() {
        let e = sharded_engine(1, 40_000, 3);
        let q = QuerySpec {
            attr: 0,
            lo: 0,
            hi: 1_000_000,
        };
        let oracle = scan_stats(e.data.column(0), Predicate::range(q.lo, q.hi));
        let (count, _) = e.execute_snapshot(&q).unwrap();
        assert_eq!(count, oracle.count);
        // Queue updates but never run a locked query: the snapshot overlay
        // must reflect them immediately.
        e.queue_insert(0, 17, 1_000_000);
        e.queue_insert(0, 999_983, 1_000_001);
        let (count, sum) = e.execute_snapshot(&q).unwrap();
        assert_eq!(count, oracle.count + 2);
        assert_eq!(sum, oracle.sum + 17 + 999_983);
        e.queue_delete(0, 17, 1_000_000);
        let (count, _) = e.execute_snapshot(&q).unwrap();
        assert_eq!(count, oracle.count + 1);
        e.stop();
    }

    #[test]
    fn snapshot_collect_matches_locked_collect() {
        let e = sharded_engine(1, 50_000, 3);
        let q = QuerySpec {
            attr: 0,
            lo: 250_000,
            hi: 750_000,
        };
        let SnapshotCollect::Values(mut snap) = e.execute_collect_snapshot(&q) else {
            panic!("snapshot collect unavailable");
        };
        let mut locked = e.execute_collect(&q).unwrap();
        snap.sort_unstable();
        locked.sort_unstable();
        assert_eq!(snap, locked);
        // Cap: the full-domain collect of 50k values exceeds COLLECT_CAP
        // only when big enough; with 50k < 64Ki both succeed — force the
        // cap with a wide query on a larger engine instead. The overflow
        // must be reported as CapExceeded (not Unsupported) so the service
        // does not retry the identical doomed copy under the shard locks.
        let big = sharded_engine(1, 80_000, 2);
        let wide = QuerySpec {
            attr: 0,
            lo: 0,
            hi: 1_000_000,
        };
        assert_eq!(
            big.execute_collect_snapshot(&wide),
            SnapshotCollect::CapExceeded
        );
        big.stop();
        e.stop();
    }

    #[test]
    fn routing_keys_are_shard_granular_and_stable() {
        let e = sharded_engine(2, 50_000, 4);
        let keys: Vec<u64> = [0i64, 300_000, 600_000, 900_000]
            .iter()
            .map(|&lo| {
                e.routing_key(&QuerySpec {
                    attr: 1,
                    lo,
                    hi: lo + 10,
                })
            })
            .collect();
        // Distinct shards for spread-out lows, all in attr 1's key range.
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "{keys:?}");
        assert!(keys.iter().all(|&k| (4..8).contains(&k)), "{keys:?}");
        // Stable across eviction/rebuild: keys derive from the plan only.
        let again: Vec<u64> = [0i64, 300_000, 600_000, 900_000]
            .iter()
            .map(|&lo| {
                e.routing_key(&QuerySpec {
                    attr: 1,
                    lo,
                    hi: lo + 10,
                })
            })
            .collect();
        assert_eq!(keys, again);
        e.stop();
    }

    #[test]
    fn decompose_parts_partition_and_sum_to_the_whole() {
        let e = sharded_engine(2, 60_000, 4);
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..40 {
            let attr = rng.random_range(0..2);
            let a = rng.random_range(0..1_000_000);
            let b = rng.random_range(0..1_000_000);
            let q = QuerySpec {
                attr,
                lo: a.min(b),
                hi: a.max(b).max(a.min(b) + 1),
            };
            let oracle = scan_stats(e.data.column(attr), Predicate::range(q.lo, q.hi));
            match e.decompose(&q) {
                Some(parts) => {
                    assert!(parts.len() >= 2);
                    assert_eq!(parts[0].lo, q.lo);
                    assert_eq!(parts.last().unwrap().hi, q.hi);
                    for w in parts.windows(2) {
                        assert_eq!(w[0].hi, w[1].lo, "parts must partition the range");
                    }
                    // Every part confined to one routing key; keys ascend.
                    let keys: Vec<u64> = parts.iter().map(|p| e.routing_key(p)).collect();
                    let mut uniq = keys.clone();
                    uniq.dedup();
                    assert_eq!(uniq.len(), keys.len(), "parts share a routing key");
                    let sum: u64 = parts.iter().map(|p| e.execute(p)).sum();
                    assert_eq!(sum, oracle.count, "{q:?} decomposed {parts:?}");
                }
                None => {
                    // Single-shard range: nothing to decompose.
                    let (first, last) = e.plan_epoch(q.attr).plan.shard_range(q.lo, q.hi).unwrap();
                    assert_eq!(first, last, "spanning {q:?} was not decomposed");
                }
            }
            assert_eq!(e.execute(&q), oracle.count);
        }
        e.stop();
    }

    #[test]
    fn estimate_cost_prices_hits_and_cold_attrs_without_building() {
        let e = sharded_engine(2, 50_000, 4);
        let q = QuerySpec {
            attr: 1,
            lo: 200_000,
            hi: 700_000,
        };
        // Cold attribute: expensive, and the estimate must NOT have
        // materialised the cracker column (no registry slot appears).
        let cold = e.estimate_cost(&q).unwrap();
        assert!(cold.crack_values >= 50_000);
        let (a, p, o, d) = e.space().membership_counts();
        assert_eq!(a + p + o + d, 0, "estimate_cost materialised a column");
        // Warm it, then the same predicate is an exact hit (every cracked
        // bound republished into the stats by the post-query publish).
        e.execute(&q);
        for k in 0..4 {
            e.sharded(1).0.shard(k).publish_stats();
        }
        let warm = e.estimate_cost(&q).unwrap();
        assert!(warm.exact_hit, "repeat predicate should price as exact hit");
        assert_eq!(warm.crack_values, 0);
        assert!(warm.shards_touched >= 2, "spanning estimate folds shards");
        assert!(cold.crack_values > warm.crack_values);
        e.stop();
    }

    #[test]
    fn estimate_cost_takes_no_structure_or_maintenance_lock() {
        // The acceptance bar: plan-time estimates complete while BOTH the
        // daemon's weight-heap mutex and a shard's structure write lock
        // are held by another thread.
        let e = Arc::new(sharded_engine(1, 40_000, 4));
        let q = QuerySpec {
            attr: 0,
            lo: 0,
            hi: 1_000_000,
        };
        e.execute(&q); // build + publish stats
        let (col, _) = e.sharded(0);
        let _structure = col.shard(1).hold_structure_write_for_test();
        let _heap = e.space().hold_maintenance_lock_for_test();
        let (tx, rx) = std::sync::mpsc::channel();
        let probe = Arc::clone(&e);
        std::thread::spawn(move || {
            // Touches every shard, including the write-locked one.
            let cost = probe.estimate_cost(&q);
            let _ = tx.send(cost);
        });
        let cost = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("estimate_cost blocked on a structure/maintenance lock")
            .expect("holistic engine keeps plan statistics");
        assert_eq!(cost.shards_touched, 4);
        drop(_structure);
        drop(_heap);
        e.stop();
    }

    #[test]
    fn daemon_refines_beyond_query_driven_cracks() {
        let e = engine(2, 200_000);
        // One query creates the index; then let the daemon work.
        e.execute(&QuerySpec {
            attr: 0,
            lo: 100,
            hi: 200_000,
        });
        let after_query = e.total_pieces();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while e.total_pieces() <= after_query + 10 {
            assert!(
                std::time::Instant::now() < deadline,
                "daemon inactive: still at {} pieces",
                e.total_pieces()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let cycles = e.stop();
        assert!(cycles.iter().map(|c| c.refinements).sum::<u64>() > 10);
    }

    #[test]
    fn potential_indices_refined_before_first_query() {
        let e = engine(4, 100_000);
        e.add_potential(&[0, 1, 2, 3]);
        // The daemon is already running and may graduate a potential index
        // (to actual or optimal) before this thread gets scheduled again, so
        // assert on the total tracked rather than racing it on `potential`.
        let (actual, potential, optimal, dropped) = e.space().membership_counts();
        assert_eq!(
            actual + potential + optimal,
            4,
            "all four attrs tracked (a={actual} p={potential} o={optimal} d={dropped})"
        );
        // Bounded wait: under test-runner contention the daemon thread may
        // be scheduled late, so poll instead of sleeping a fixed interval.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while e.total_pieces() <= 12 {
            assert!(
                std::time::Instant::now() < deadline,
                "potential indices not refined"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // First query on a potential attr promotes it to actual — unless the
        // daemon already drove it all the way to optimal, which also removes
        // it from C_potential.
        e.execute(&QuerySpec {
            attr: 2,
            lo: 0,
            hi: 500,
        });
        let (actual, potential, optimal, _) = e.space().membership_counts();
        assert!(
            actual + optimal >= 1,
            "queried index neither actual nor optimal"
        );
        assert!(potential <= 3, "queried index still potential");
        e.stop();
    }

    #[test]
    fn eviction_and_recreation_under_budget() {
        let data = Dataset::new(uniform_table(3, 50_000, 1_000_000, 4));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(1);
        // Budget fits roughly one 50k-row column (600 KiB payload each).
        cfg.holistic.storage_budget = Some(700 * 1024);
        let e = HolisticEngine::new(data, cfg);
        for attr in 0..3 {
            let q = QuerySpec {
                attr,
                lo: 0,
                hi: 1_000,
            };
            assert_eq!(
                e.execute(&q),
                scan_stats(e.data.column(attr), Predicate::range(0, 1_000)).count
            );
        }
        let (_, _, _, dropped) = e.space().membership_counts();
        assert!(dropped >= 2, "budget never evicted (dropped={dropped})");
        // Queries on evicted attributes still answer correctly (re-created).
        for attr in 0..3 {
            let q = QuerySpec {
                attr,
                lo: 500_000,
                hi: 600_000,
            };
            assert_eq!(
                e.execute(&q),
                scan_stats(e.data.column(attr), Predicate::range(500_000, 600_000)).count
            );
        }
        e.stop();
    }

    #[test]
    fn partial_shard_eviction_retires_surviving_orphans() {
        // Budget fits ~1.5 of the two 600 KiB attribute columns, so
        // registering the second attribute evicts one of the first's two
        // shards. The rebuild of the first attribute must retire the
        // surviving shard's entry — a live orphan would double-count the
        // budget and feed the daemon a dead column.
        let data = Dataset::new(uniform_table(2, 50_000, 1_000_000, 6));
        let mut cfg = HolisticEngineConfig::split_half_sharded(2, 2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        cfg.holistic.storage_budget = Some(900 * 1024);
        let e = HolisticEngine::new(data, cfg);
        let narrow = |attr| QuerySpec {
            attr,
            lo: 10_000,
            hi: 20_000,
        };
        let oracle = |attr| scan_stats(e.data.column(attr), Predicate::range(10_000, 20_000)).count;
        assert_eq!(e.execute(&narrow(0)), oracle(0));
        assert_eq!(e.execute(&narrow(1)), oracle(1));
        let (_, _, _, dropped) = e.space().membership_counts();
        assert!(dropped >= 1, "budget never evicted (dropped={dropped})");
        // Rebuild of attr 0 (some shard was evicted) + more churn.
        for _ in 0..3 {
            assert_eq!(e.execute(&narrow(0)), oracle(0));
            assert_eq!(e.execute(&narrow(1)), oracle(1));
        }
        // Every live entry must be referenced by a current attr slot: at
        // most attrs × shards live ids; an orphaned survivor would exceed
        // this and pin payload bytes the budget no longer sees.
        let live = e.space().live_ids().len();
        assert!(live <= 4, "orphaned registry entries: {live} live ids");
        assert!(
            e.space().bytes_used() <= 2 * 900 * 1024,
            "orphans pin payload past any eviction bound"
        );
        e.stop();
    }

    #[test]
    fn add_potential_reregisters_evicted_slots() {
        let data = Dataset::new(uniform_table(3, 50_000, 1_000_000, 5));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(1);
        // Budget fits roughly one 50k-row column, forcing evictions.
        cfg.holistic.storage_budget = Some(700 * 1024);
        let e = HolisticEngine::new(data, cfg);
        e.add_potential(&[0, 1, 2]);
        let (a0, p0, o0, d0) = e.space().membership_counts();
        assert!(d0 >= 2, "budget never evicted (dropped={d0})");
        // The dropped slots are still `Some`, but add_potential must see
        // through them and re-register instead of skipping. Entries are
        // never removed from the space, so the total strictly grows iff
        // re-registration happened (the daemon can only flip memberships).
        e.add_potential(&[0, 1, 2]);
        let (a1, p1, o1, d1) = e.space().membership_counts();
        assert!(
            a1 + p1 + o1 + d1 > a0 + p0 + o0 + d0,
            "dropped slots were not re-registered \
             (before: {a0}+{p0}+{o0}+{d0}, after: {a1}+{p1}+{o1}+{d1})"
        );
        assert!(a1 + p1 + o1 >= 1, "no live index after re-registration");
        // And every attribute still answers queries correctly.
        for attr in 0..3 {
            let q = QuerySpec {
                attr,
                lo: 0,
                hi: 1_000,
            };
            assert_eq!(
                e.execute(&q),
                scan_stats(e.data.column(attr), Predicate::range(0, 1_000)).count
            );
        }
        e.stop();
    }

    #[test]
    fn stop_is_idempotent() {
        let e = engine(1, 10_000);
        e.stop();
        assert!(e.stop().is_empty());
    }

    #[test]
    fn forced_split_and_merge_preserve_results_across_plan_versions() {
        let e = sharded_engine(1, 40_000, 4);
        let q = QuerySpec {
            attr: 0,
            lo: 100_000,
            hi: 900_000,
        };
        let oracle = scan_stats(e.data.column(0), Predicate::range(q.lo, q.hi)).count;
        assert_eq!(e.execute(&q), oracle);
        assert_eq!(e.plan_version(0), 0);
        let old_epoch = e.plan_epoch(0);
        let (old_col, _) = e.sharded(0);

        assert!(e.force_replan(0, ReplanAction::Split { shard: 1 }));
        assert_eq!(e.plan_version(0), 1);
        assert_eq!(e.replan_count(), 1);
        let (col, ids) = e.sharded(0);
        assert_eq!(col.shard_count(), 5);
        assert_eq!(ids.len(), 5);
        assert_eq!(e.execute(&q), oracle, "results survive the split");

        // A query pinned to the old plan (it loaded the epoch and cloned
        // the column before the cutover) still completes correctly: the
        // sealed predecessor drained its backlog and stays readable.
        assert_eq!(old_epoch.version, 0);
        SCRATCH.with(|s| {
            let (_, stats) =
                old_col.select_verified(Predicate::range(q.lo, q.hi), &mut s.borrow_mut());
            assert_eq!(stats.count, oracle, "old-plan reader sees exact data");
        });

        // Updates queued across the replan land in the successor (the
        // sealed shard rejects, the engine retries) and stay countable.
        e.queue_insert(0, 500_000, 1_000_000);
        assert_eq!(e.execute(&q), oracle + 1);

        assert!(e.force_replan(0, ReplanAction::Merge { left: 1 }));
        assert_eq!(e.plan_version(0), 2);
        assert_eq!(e.sharded(0).0.shard_count(), 4);
        assert_eq!(e.execute(&q), oracle + 1, "results survive the merge");

        // Registry bookkeeping: every live entry belongs to the current
        // slot (replaced shards were retired, not orphaned).
        assert!(e.space().live_ids().len() <= 4);
        e.stop();
    }

    #[test]
    fn replan_policy_splits_a_pending_hot_spot() {
        let e = sharded_engine(1, 40_000, 4);
        let q = QuerySpec {
            attr: 0,
            lo: 0,
            hi: 1_000_000,
        };
        let oracle = scan_stats(e.data.column(0), Predicate::range(q.lo, q.hi)).count;
        assert_eq!(e.execute(&q), oracle);
        assert_eq!(e.maybe_replan(0), None, "balanced plan: policy is quiet");
        // Pile pending inserts into shard 0's value range: the backlog
        // makes it hot before a single update is merged.
        let (col, _) = e.sharded(0);
        let cut = col.plan().cuts()[0];
        let n = 90_000u64;
        for i in 0..n {
            e.queue_insert(0, (i as i64) % cut.max(1), 1_000_000 + i as u32);
        }
        for k in 0..col.shard_count() {
            col.shard(k).publish_stats();
        }
        assert_eq!(
            e.maybe_replan(0),
            Some(ReplanAction::Split { shard: 0 }),
            "pending skew must trip the split"
        );
        assert_eq!(e.plan_version(0), 1);
        assert_eq!(e.execute(&q), oracle + n, "backlog survives the migration");
        e.stop();
    }

    #[test]
    fn replanner_thread_rebalances_under_drift() {
        let data = Dataset::new(uniform_table(1, 40_000, 1_000_000, 11));
        let mut cfg = HolisticEngineConfig::split_half_sharded(4, 4);
        cfg.holistic.monitor_interval = Duration::from_millis(1);
        cfg.replan = true;
        let e = HolisticEngine::new(data, cfg);
        let q = QuerySpec {
            attr: 0,
            lo: 0,
            hi: 1_000_000,
        };
        let oracle = scan_stats(e.data.column(0), Predicate::range(q.lo, q.hi)).count;
        assert_eq!(e.execute(&q), oracle);
        // Drifted hot region: a pending pile-up in the last shard.
        let (col, _) = e.sharded(0);
        let lowest = *col.plan().cuts().last().unwrap();
        for i in 0..90_000u64 {
            e.queue_insert(0, lowest + (i as i64 % 1_000), 1_000_000 + i as u32);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while e.replan_count() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "replanner never split the hot shard"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(e.plan_version(0) >= 1);
        assert_eq!(e.execute(&q), oracle + 90_000, "exact under live replans");
        e.stop();
        e.stop(); // idempotent with the replanner too
    }
}
