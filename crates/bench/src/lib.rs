//! # holix-bench — shared infrastructure for the figure/table harnesses
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the paper's evaluation (§5) at laptop scale and prints the same
//! rows/series as CSV. Scale knobs come from the environment:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `HOLIX_N` | rows per attribute | `1 << 20` |
//! | `HOLIX_QUERIES` | queries per workload | `512` |
//! | `HOLIX_ATTRS` | attributes in the microbenchmark table | `10` |
//! | `HOLIX_THREADS` | hardware contexts to model | machine |
//! | `HOLIX_TPCH_SF` | TPC-H scale factor | `0.02` |
//! | `HOLIX_IDLE_MS` | scaled idle period (Fig 9/16) | `500` |
//! | `HOLIX_CLIENTS` | concurrent client sessions (service harness) | `16` |
//! | `HOLIX_SHARDS` | horizontal shards per attribute (shard sweeps) | `4` |
//! | `HOLIX_REPS` | measured repetitions (service harness; CI smoke uses 1) | `6` |
//! | `HOLIX_UPDATERS` | Ripple updater threads (snapshot-interference harness sweeps this and 2×it) | `2` |
//! | `HOLIX_POINTS` | distinct hot keys in the point-probe mix (filter harness) | `64` |
//! | `HOLIX_POINT_PROB` | equality-probe fraction of the point-heavy mix | `0.8` |
//! | `HOLIX_PHASES` | drift phases — distinct hot regions the workload visits in turn (replan harness) | `3` |
//! | `HOLIX_BUDGET_COLS` | attributes competing for one storage budget (compression harness) | `8` |
//! | `HOLIX_METRICS` | process-wide metrics registry on/off (`0`/`false`/`off`/`no` disable; harnesses may override programmatically) | on |
//! | `HOLIX_TRACE` | per-query lifecycle tracing into the bounded ring (same off values) | off |
//!
//! The paper's sizes (2³⁰ rows, 32 contexts, 1 s monitor interval) are
//! reachable by setting the variables accordingly. A knob that is set but
//! does not parse is a hard error — silently benchmarking the default
//! scale under `HOLIX_N=2^30` would produce misleading numbers.

use holix_engine::api::QueryEngine;
use holix_workloads::QuerySpec;
use std::time::{Duration, Instant};

/// Scale parameters resolved from the environment.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    pub n: usize,
    pub queries: usize,
    pub attrs: usize,
    pub threads: usize,
    pub domain: i64,
    pub tpch_sf: f64,
    pub idle_ms: u64,
    pub clients: usize,
    pub shards: usize,
    pub reps: usize,
    pub updaters: usize,
    pub points: usize,
    pub point_prob: f64,
    pub phases: usize,
    pub budget_cols: usize,
}

/// Resolves an integer knob; a set-but-unparsable value panics with the
/// variable name and offending value (a typo like `HOLIX_N=2^30` must not
/// silently benchmark the default scale). Pure core of [`env_usize`],
/// separated so tests never have to mutate the process environment.
fn parse_usize_knob(key: &str, value: Option<&str>, default: usize) -> usize {
    match value {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{key}={v:?} is not a valid unsigned integer")),
    }
}

/// Pure core of [`env_f64`]; same contract as [`parse_usize_knob`].
fn parse_f64_knob(key: &str, value: Option<&str>, default: f64) -> f64 {
    match value {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{key}={v:?} is not a valid float")),
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    parse_usize_knob(key, std::env::var(key).ok().as_deref(), default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    parse_f64_knob(key, std::env::var(key).ok().as_deref(), default)
}

impl BenchEnv {
    /// Reads the scale knobs.
    pub fn from_env() -> Self {
        // Contexts are modelled logically (LoadAccountant), so the default
        // gives the tuning daemon head-room even on small machines; threads
        // beyond the physical cores simply oversubscribe.
        let threads = env_usize(
            "HOLIX_THREADS",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4),
        );
        let n = env_usize("HOLIX_N", 1 << 20);
        BenchEnv {
            n,
            queries: env_usize("HOLIX_QUERIES", 512),
            attrs: env_usize("HOLIX_ATTRS", 10),
            threads: threads.max(2),
            domain: (n as i64).max(1 << 20),
            tpch_sf: env_f64("HOLIX_TPCH_SF", 0.02),
            idle_ms: env_usize("HOLIX_IDLE_MS", 500) as u64,
            clients: env_usize("HOLIX_CLIENTS", 16),
            shards: env_usize("HOLIX_SHARDS", 4).max(1),
            reps: env_usize("HOLIX_REPS", 6).max(1),
            updaters: env_usize("HOLIX_UPDATERS", 2).max(1),
            points: env_usize("HOLIX_POINTS", 64).max(1),
            point_prob: env_f64("HOLIX_POINT_PROB", 0.8).clamp(0.0, 1.0),
            phases: env_usize("HOLIX_PHASES", 3).max(1),
            budget_cols: env_usize("HOLIX_BUDGET_COLS", 8).max(2),
        }
    }

    /// Prints the standard experiment header.
    pub fn banner(&self, figure: &str, notes: &str) {
        println!("# {figure}");
        println!(
            "# scale: N={} queries={} attrs={} threads={} domain={} tpch_sf={} idle_ms={} clients={} shards={} reps={} updaters={} points={} point_prob={} phases={} budget_cols={}",
            self.n,
            self.queries,
            self.attrs,
            self.threads,
            self.domain,
            self.tpch_sf,
            self.idle_ms,
            self.clients,
            self.shards,
            self.reps,
            self.updaters,
            self.points,
            self.point_prob,
            self.phases,
            self.budget_cols
        );
        if !notes.is_empty() {
            println!("# {notes}");
        }
    }
}

/// Times one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Executes a workload sequentially, returning per-query durations.
pub fn run_per_query(engine: &dyn QueryEngine, queries: &[QuerySpec]) -> Vec<Duration> {
    queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            std::hint::black_box(engine.execute(q));
            t0.elapsed()
        })
        .collect()
}

/// Total across per-query times.
pub fn total(times: &[Duration]) -> Duration {
    times.iter().sum()
}

/// Cumulative series.
pub fn cumulative(times: &[Duration]) -> Vec<Duration> {
    let mut acc = Duration::ZERO;
    times
        .iter()
        .map(|&t| {
            acc += t;
            acc
        })
        .collect()
}

/// Seconds as fractional value for CSV output.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Sample indices for plotting a long series (~`points` log-ish spaced rows,
/// always including the first and the last).
pub fn sample_indices(len: usize, points: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let step = (len / points.max(1)).max(1);
    let mut idx: Vec<usize> = (0..len).step_by(step).collect();
    if *idx.last().unwrap() != len - 1 {
        idx.push(len - 1);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_accumulates() {
        let times = [Duration::from_millis(1), Duration::from_millis(2)];
        let c = cumulative(&times);
        assert_eq!(c[1], Duration::from_millis(3));
        assert_eq!(total(&times), Duration::from_millis(3));
    }

    #[test]
    fn sample_indices_cover_ends() {
        let idx = sample_indices(1000, 10);
        assert_eq!(idx[0], 0);
        assert_eq!(*idx.last().unwrap(), 999);
        assert!(idx.len() <= 12);
        assert!(sample_indices(0, 10).is_empty());
    }

    #[test]
    fn env_defaults() {
        let e = BenchEnv::from_env();
        assert!(e.threads >= 2);
        assert!(e.n > 0);
        assert!(e.clients > 0);
        assert!(e.shards >= 1);
        assert!(e.reps >= 1);
    }

    // Knob parsing is tested through the pure cores: mutating the process
    // environment from parallel test threads is UB on glibc (concurrent
    // setenv/getenv), so no test calls std::env::set_var.

    #[test]
    fn env_knobs_parse_when_set() {
        assert_eq!(parse_usize_knob("HOLIX_N", Some("4096"), 7), 4096);
        assert_eq!(parse_f64_knob("HOLIX_TPCH_SF", Some("0.125"), 7.0), 0.125);
        // Unset variables fall back to the default.
        assert_eq!(parse_usize_knob("HOLIX_N", None, 7), 7);
        assert_eq!(parse_f64_knob("HOLIX_TPCH_SF", None, 7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "HOLIX_N=\"2^30\" is not a valid unsigned integer")]
    fn unparsable_usize_knob_panics_with_name_and_value() {
        parse_usize_knob("HOLIX_N", Some("2^30"), 7);
    }

    #[test]
    #[should_panic(expected = "HOLIX_TPCH_SF=\"fast\" is not a valid float")]
    fn unparsable_f64_knob_panics_with_name_and_value() {
        parse_f64_knob("HOLIX_TPCH_SF", Some("fast"), 0.5);
    }
}
