//! Sharded holistic engine vs single-shard/sorted oracles: shard-boundary
//! equivalence for counts *and* sums, update routing across shards, and a
//! concurrent stress where Ripple updates land on different shards while
//! queries span all of them and the daemon refines in the background.

use holix::engine::{Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine};
use holix::storage::select::{scan_stats, Predicate};
use holix::workloads::data::uniform_table;
use holix::workloads::QuerySpec;
use rand::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sharded_engine(data: &Dataset, shards: usize) -> HolisticEngine {
    let mut cfg = HolisticEngineConfig::split_half_sharded(4, shards);
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    HolisticEngine::new(data.clone(), cfg)
}

/// Queries built to stress shard boundaries: exact cut values as bounds,
/// one-off-the-cut values, whole-domain spans, plus random ranges.
fn boundary_queries(
    engine: &HolisticEngine,
    attr: usize,
    domain: i64,
    seed: u64,
) -> Vec<QuerySpec> {
    let (col, _) = engine.sharded(attr);
    let cuts: Vec<i64> = col.plan().cuts().to_vec();
    let mut queries = Vec::new();
    for &c in &cuts {
        // Bounds exactly on, just below and just above a shard cut.
        queries.push(QuerySpec {
            attr,
            lo: (c - 100).max(0),
            hi: c + 100,
        });
        queries.push(QuerySpec {
            attr,
            lo: c,
            hi: (c + 1).min(domain),
        });
        queries.push(QuerySpec { attr, lo: 0, hi: c });
        queries.push(QuerySpec {
            attr,
            lo: c,
            hi: domain,
        });
    }
    // Spans crossing two or more cuts, and the full domain.
    if cuts.len() >= 2 {
        queries.push(QuerySpec {
            attr,
            lo: cuts[0] - 5,
            hi: cuts[cuts.len() - 1] + 5,
        });
    }
    queries.push(QuerySpec {
        attr,
        lo: 0,
        hi: domain,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..60 {
        let a = rng.random_range(0..domain);
        let b = rng.random_range(0..domain);
        queries.push(QuerySpec {
            attr,
            lo: a.min(b),
            hi: a.max(b).max(a.min(b) + 1),
        });
    }
    queries
}

#[test]
fn sharded_counts_and_sums_match_single_shard_and_sorted_oracle() {
    let attrs = 2;
    let rows = 60_000;
    let domain = 1 << 20;
    let data = Dataset::new(uniform_table(attrs, rows, domain, 71));
    let sorted: Vec<Vec<i64>> = (0..attrs)
        .map(|a| {
            let mut c = data.column(a).to_vec();
            c.sort_unstable();
            c
        })
        .collect();
    let single = sharded_engine(&data, 1);
    for shards in [2usize, 4, 7] {
        let engine = sharded_engine(&data, shards);
        for (attr, col) in sorted.iter().enumerate() {
            for q in boundary_queries(&engine, attr, domain, 710 + shards as u64) {
                // Sorted-column oracle via binary search.
                let count = (col.partition_point(|&v| v < q.hi)
                    - col.partition_point(|&v| v < q.lo)) as u64;
                let oracle = scan_stats(data.column(attr), Predicate::range(q.lo, q.hi));
                assert_eq!(oracle.count, count);
                assert_eq!(
                    engine.execute_verified(&q),
                    (oracle.count, oracle.sum),
                    "shards={shards} {q:?}"
                );
                assert_eq!(
                    single.execute_verified(&q),
                    (oracle.count, oracle.sum),
                    "single-shard {q:?}"
                );
            }
        }
        engine.stop();
    }
    single.stop();
}

#[test]
fn updates_route_to_distinct_shards_and_merge_correctly() {
    let domain = 1 << 20;
    let data = Dataset::new(uniform_table(1, 40_000, domain, 72));
    let engine = sharded_engine(&data, 4);
    let (col, _) = engine.sharded(0);
    let cuts = col.plan().cuts().to_vec();
    assert_eq!(cuts.len(), 3, "plan did not produce 4 shards");

    // One insert per shard region; pending buffers must be disjoint.
    let probes = [0i64, cuts[0], cuts[1], cuts[2]];
    let mut model = data.column(0).to_vec();
    for (i, &v) in probes.iter().enumerate() {
        engine.queue_insert(0, v, (model.len() + i) as u32);
    }
    for (k, &v) in probes.iter().enumerate() {
        assert_eq!(
            col.shard(k).pending_len(),
            1,
            "insert of {v} not routed to shard {k} alone"
        );
    }
    model.extend_from_slice(&probes);

    // A span over everything merges all four and agrees with the model.
    let q = QuerySpec {
        attr: 0,
        lo: 0,
        hi: domain,
    };
    let oracle = scan_stats(&model, Predicate::range(q.lo, q.hi));
    assert_eq!(engine.execute_verified(&q), (oracle.count, oracle.sum));
    assert_eq!(col.pending_len(), 0, "pending updates survived the span");

    // Deletes route the same way.
    engine.queue_delete(0, probes[2], (model.len() - 2) as u32);
    assert_eq!(col.shard(2).pending_len(), 1);
    let oracle = scan_stats(&model, Predicate::range(q.lo, q.hi));
    let (count, sum) = engine.execute_verified(&q);
    assert_eq!(count, oracle.count - 1);
    assert_eq!(sum, oracle.sum - probes[2] as i128);
    engine.stop();
}

#[test]
fn concurrent_cross_shard_queries_race_rippling_updaters() {
    let domain = 1 << 20;
    let rows = 60_000usize;
    let data = Dataset::new(uniform_table(1, rows, domain, 73));
    let engine = Arc::new(sharded_engine(&data, 4));
    let (col, _) = engine.sharded(0);
    let cuts = col.plan().cuts().to_vec();
    let base_count = rows as u64;
    // Each updater thread owns one shard's value region and inserts a fixed
    // number of values there (unique row ids), deleting half of them again.
    let inserts_per_updater = 300usize;
    let updaters = 4usize;
    let stop = Arc::new(AtomicBool::new(false));

    let region_bounds = |k: usize| -> (i64, i64) {
        let lo = if k == 0 { 0 } else { cuts[k - 1] };
        let hi = if k == cuts.len() { domain } else { cuts[k] };
        (lo, hi)
    };

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for k in 0..updaters {
            let engine = Arc::clone(&engine);
            let (lo, hi) = region_bounds(k);
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(730 + k as u64);
                let mut net: i128 = 0;
                let mut net_count: i64 = 0;
                let row_base = (rows + k * inserts_per_updater) as u32;
                let mut inserted: Vec<(i64, u32)> = Vec::new();
                for i in 0..inserts_per_updater {
                    let v = rng.random_range(lo..hi);
                    let row = row_base + i as u32;
                    engine.queue_insert(0, v, row);
                    inserted.push((v, row));
                    net += v as i128;
                    net_count += 1;
                    // Delete every other previously-inserted value.
                    if i % 2 == 1 {
                        let (dv, drow) = inserted[i - 1];
                        engine.queue_delete(0, dv, drow);
                        net -= dv as i128;
                        net_count -= 1;
                    }
                }
                (net_count, net)
            }));
        }
        // Query threads: spans crossing all shards while updates ripple in.
        for t in 0..3usize {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7300 + t as u64);
                let max_count = base_count + (updaters * inserts_per_updater) as u64;
                while !stop.load(Ordering::Relaxed) {
                    let lo = rng.random_range(0..domain / 4);
                    let hi = rng.random_range(3 * domain / 4..domain);
                    let q = QuerySpec { attr: 0, lo, hi };
                    let count = engine.execute(&q);
                    // Mid-race the exact count is unknowable, but it can
                    // never exceed every tuple that could ever exist, nor
                    // can a three-quarter-domain span return zero.
                    assert!(count <= max_count, "impossible count {count}");
                    assert!(count > 0, "span lost all tuples");
                }
            });
        }
        let nets: Vec<(i64, i128)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);

        // Quiesce: final full-domain verified query folds every pending
        // update in and must match base + net inserts exactly.
        let net_count: i64 = nets.iter().map(|(c, _)| *c).sum();
        let net_sum: i128 = nets.iter().map(|(_, s)| *s).sum();
        let base_stats = scan_stats(data.column(0), Predicate::range(0, domain));
        let q = QuerySpec {
            attr: 0,
            lo: 0,
            hi: domain,
        };
        let (count, sum) = engine.execute_verified(&q);
        assert_eq!(count as i64, base_stats.count as i64 + net_count);
        assert_eq!(sum, base_stats.sum + net_sum);
    });
    engine.stop();
    // Invariants hold on every shard after the melee.
    let (col, _) = engine.sharded(0);
    for k in 0..col.shard_count() {
        col.shard(k).check_invariants(None);
    }
}
