//! Fig 6(b) — response-time breakdown: cost of the first query, the next 9,
//! the next 90, and the remaining queries, adaptive vs holistic indexing
//! (§5.1). The paper's buckets (1/9/90/900) scale with the workload length.

use holix_bench::{run_per_query, secs, total, BenchEnv};
use holix_engine::api::Dataset;
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;
use std::time::Duration;

fn buckets(times: &[Duration], n: usize) -> Vec<(String, f64)> {
    // 1, 9, 90, rest — scaled to the workload length by powers of ten.
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut width = 1usize;
    while start < n {
        let end = (start + width).min(n);
        out.push((
            format!("{}..{}", start + 1, end),
            secs(total(&times[start..end])),
        ));
        start = end;
        width *= 9; // 1, 9, 81·…ish — mirrors the paper's 1/9/90/900 split
        width = width.min(n);
    }
    out
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 6(b): breakdown of total response time, adaptive vs holistic",
        "csv: bucket,adaptive,holistic (seconds)",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 6));
    let queries = WorkloadSpec::random(env.attrs, env.queries, env.domain, 60).generate();

    let adaptive = run_per_query(
        &AdaptiveEngine::new(
            data.clone(),
            CrackMode::Pvdc {
                threads: env.threads,
            },
        ),
        &queries,
    );
    let holistic = {
        let engine = HolisticEngine::new(data, HolisticEngineConfig::split_half(env.threads));
        let t = run_per_query(&engine, &queries);
        engine.stop();
        t
    };

    let ba = buckets(&adaptive, env.queries);
    let bh = buckets(&holistic, env.queries);
    println!("bucket,adaptive,holistic");
    for ((label, a), (_, h)) in ba.iter().zip(&bh) {
        println!("{label},{a:.6},{h:.6}");
    }
    println!("# total,adaptive,{:.6}", secs(total(&adaptive)));
    println!("# total,holistic,{:.6}", secs(total(&holistic)));
}
