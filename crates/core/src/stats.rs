//! Per-index workload statistics (§4.1 "Statistical Information").
//!
//! "For each column in the schema it collects information regarding how many
//! times it has been accessed by user queries, how many pieces the relevant
//! cracker column contains, how many queries did not need to further refine
//! the index because there was an exact hit."
//!
//! The counters are atomics because the select operator (user queries) and
//! holistic workers update them concurrently.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one adaptive index.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// `f_I`: user queries that accessed the index.
    queries: AtomicU64,
    /// `f_Ih`: user queries answered without any refinement (both bounds
    /// were exact hits).
    exact_hits: AtomicU64,
    /// Refinements performed by user queries (bounds cracked).
    query_refinements: AtomicU64,
    /// Refinements performed by holistic workers.
    worker_refinements: AtomicU64,
    /// Worker refinement attempts that found the piece latched.
    worker_busy: AtomicU64,
}

impl IndexStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one user query; `exact_hit` when no bound needed cracking.
    pub fn record_query(&self, exact_hit: bool, bounds_cracked: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if exact_hit {
            self.exact_hits.fetch_add(1, Ordering::Relaxed);
        }
        if bounds_cracked > 0 {
            self.query_refinements
                .fetch_add(bounds_cracked, Ordering::Relaxed);
        }
    }

    /// Records one successful worker refinement.
    pub fn record_worker_refinement(&self) {
        self.worker_refinements.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker attempt that hit a latched piece.
    pub fn record_worker_busy(&self) {
        self.worker_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// `f_I` — user-query accesses.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// `f_Ih` — exact-hit queries.
    pub fn exact_hits(&self) -> u64 {
        self.exact_hits.load(Ordering::Relaxed)
    }

    /// Bounds cracked by user queries.
    pub fn query_refinements(&self) -> u64 {
        self.query_refinements.load(Ordering::Relaxed)
    }

    /// Successful holistic-worker refinements.
    pub fn worker_refinements(&self) -> u64 {
        self.worker_refinements.load(Ordering::Relaxed)
    }

    /// Worker attempts aborted on latched pieces.
    pub fn worker_busy(&self) -> u64 {
        self.worker_busy.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = IndexStats::new();
        s.record_query(false, 2);
        s.record_query(true, 0);
        s.record_worker_refinement();
        s.record_worker_busy();
        assert_eq!(s.queries(), 2);
        assert_eq!(s.exact_hits(), 1);
        assert_eq!(s.query_refinements(), 2);
        assert_eq!(s.worker_refinements(), 1);
        assert_eq!(s.worker_busy(), 1);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = Arc::new(IndexStats::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    s.record_query(false, 1);
                    s.record_worker_refinement();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.queries(), 8_000);
        assert_eq!(s.worker_refinements(), 8_000);
    }
}
