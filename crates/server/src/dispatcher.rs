//! The query service: admission queue(s) + dispatcher worker pool.
//!
//! [`QueryService`] accepts queries from any number of concurrent
//! [`Session`]s, applies admission control at the bounded queue, and runs a
//! small pool of dispatcher threads. Each dispatcher drains a batch,
//! reorders it per the configured [`Scheduling`], and executes it against
//! the shared [`QueryEngine`]. While a dispatcher is busy it holds a
//! [`LoadAccountant`] task guard, so the holistic daemon sees the service's
//! true load and yields hardware contexts under pressure (§5.8: workers
//! scale down as client load rises). Engine-internal guards (the holistic
//! engine registers each query's crack gang) stack on top — over-counting
//! saturates toward "no idle contexts", which is exactly the conservative
//! signal wanted while the service is loaded.
//!
//! ## Shard-affine dispatch
//!
//! With [`ServiceConfig::affinity`] the service runs one admission queue
//! *per worker* and routes each submission by the engine's
//! [`QueryEngine::routing_key`] — for a sharded engine, the `(attribute,
//! shard)` its predicate's *lower bound* lands in. Every key is pinned to
//! one dispatcher, so for queries confined to their home shard (the
//! dominant narrow-window traffic) no two workers latch the same shard,
//! and batches arrive pre-grouped per shard. A predicate *spanning*
//! shards still fans out to neighbours from its home worker — the shard
//! columns' own latching keeps that correct; pinning is a contention
//! optimisation, never a safety invariant.
//!
//! ## Containment coalescing
//!
//! Under crack-aware scheduling a batch is sorted widest-range-first within
//! each `(attr, lo)` group; a run of predicates contained in the head's
//! range executes the head *once* via [`QueryEngine::execute_collect`] and
//! answers the rest by post-filtering the returned values (exact duplicates
//! fan the count out directly, as before).
//!
//! ## Plan-aware decisions (holix-planner)
//!
//! Three decisions consult the engine's plan-time cost estimates
//! ([`QueryEngine::estimate_cost`] — lock-free reads of published piece
//! statistics):
//!
//! - **Spanning-query decomposition** (`decompose` + affinity): a range
//!   spanning shards is cut at the shard plan's boundaries; each per-shard
//!   sub-query routes to its pinned worker's queue and a merge ticket
//!   folds the counts — wide scans never break shard/worker affinity.
//! - **Cost-based admission** ([`AdmissionPolicy::CostAware`]): a full
//!   queue sheds by *price*, not position — cheap exact-hits go to a
//!   bounded overflow reserve (never shed), expensive queries with a
//!   fresh snapshot estimate are served inline from the lock-free
//!   snapshot path (downgrade), only expensive cold cracks are shed.
//! - **Snapshot/locked cutover**: the dispatcher routes a whole read-only
//!   query through [`QueryEngine::execute_snapshot`] exactly when the
//!   model says the snapshot's edge pieces are fresh enough to beat the
//!   locked crack.
//!
//! All three price against the *calibrated* model: the service shares one
//! [`Calibrator`] seeded from [`ServiceConfig::cost`], and with
//! [`ServiceConfig::calibration`] each dispatcher feeds its plain-path
//! service times back so the knobs track the actual machine (inside
//! `[seed/4, seed*4]` guard rails). Crack-aware batches additionally
//! drain cheapest-first: members are priced and exact-hits/screened
//! probes execute ahead of expensive cold cracks.

use crate::batcher::{containment_run_len, duplicate_run_len, order_batch_priced, Scheduling};
use crate::queue::{AdmissionPolicy, BoundedQueue, SubmitError};
use crate::session::{MergeState, QueryResult, SessionHandle, SessionRegistry, Ticket};
use crate::stats::{PlanDecision, ServiceStats, StatsSummary};
use holix_core::cpu::LoadAccountant;
use holix_engine::api::{QueryEngine, SnapshotCollect};
use holix_planner::{Calibrator, CostModel, PlanCost, QueryPrice, Route};
use holix_telemetry::{AdmitOutcome, CoalesceKind, QueryTrace, TraceRoute};
use holix_workloads::QuerySpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dispatcher threads executing queries.
    pub workers: usize,
    /// Admission-queue depth (per queue; affinity mode runs one queue per
    /// worker).
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// Batch ordering policy.
    pub scheduling: Scheduling,
    /// Most queries one dispatcher drains per batch.
    pub batch_max: usize,
    /// Hardware contexts each busy dispatcher registers with the load
    /// accountant.
    pub contexts_per_worker: usize,
    /// Shard-affine dispatch: one queue per worker, submissions routed by
    /// [`QueryEngine::routing_key`] so queries confined to their home
    /// attribute shard are only ever executed by that shard's pinned
    /// worker (shard-spanning queries still fan out under the shards' own
    /// latches).
    pub affinity: bool,
    /// Spanning-query decomposition policy: when to cut multi-shard
    /// ranges into per-shard sub-queries completed under one merge
    /// ticket. Only effective with `affinity` (parts must route to
    /// distinct pinned workers to buy anything).
    pub decompose: DecomposePolicy,
    /// Snapshot/locked cost cutover: the dispatcher consults the plan per
    /// executed query and routes read-only queries through
    /// [`QueryEngine::execute_snapshot`] when the snapshot's refreshed
    /// edge pieces beat the locked crack (e.g. under Ripple backlog).
    /// Disable for cost-blind baseline beds — the per-query estimate is
    /// then skipped entirely.
    pub cutover: bool,
    /// Cost-model constants for plan-priced decisions (admission pricing
    /// and the snapshot/locked cutover). With [`ServiceConfig::calibration`]
    /// these are the *seed* the online calibrator's guard rails anchor to.
    pub cost: CostModel,
    /// Online cost-model calibration: dispatchers feed each plain-path
    /// execution's measured service time back into a shared
    /// [`Calibrator`], which regresses observed ns-per-value and
    /// ns-per-merge rates and republishes nudged `cost` knobs inside
    /// `[seed/4, seed*4]` guard rails. All plan-priced decisions
    /// (admission, downgrade, cutover, batch pricing) then read the
    /// calibrated model. Off by default: the seeded constants stand.
    pub calibration: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            admission: AdmissionPolicy::Block,
            scheduling: Scheduling::CrackAware,
            batch_max: 64,
            contexts_per_worker: 1,
            affinity: false,
            decompose: DecomposePolicy::Off,
            cutover: true,
            cost: CostModel::default(),
            calibration: false,
        }
    }
}

/// When the session decomposes a shard-spanning range into per-shard
/// parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecomposePolicy {
    /// Never decompose: a spanning range executes whole on its home
    /// worker (fanning out under the shards' own latches).
    #[default]
    Off,
    /// Consult the plan: decompose exactly the spanning queries the cost
    /// model prices [`QueryPrice::Expensive`] — there is real per-shard
    /// work to parallelise. Cheap (exact-hit) spans run whole: splitting
    /// them buys nothing and pays two queue hops.
    CostBased,
    /// Decompose every spanning range (tests, and multicore beds where
    /// parts genuinely run in parallel).
    Always,
}

impl DecomposePolicy {
    /// CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            DecomposePolicy::Off => "whole",
            DecomposePolicy::CostBased => "cost_based",
            DecomposePolicy::Always => "always",
        }
    }
}

/// Where one queued query's answer goes.
enum Sink {
    /// A client ticket (the common case).
    Direct(Ticket),
    /// One per-shard part of a decomposed spanning query.
    Part(Arc<MergeState>),
}

impl Sink {
    /// Delivers one count. A direct sink completes its ticket and records
    /// the completion; a part sink folds into the merge, recording the
    /// parent's single completion when the last part lands.
    fn complete(
        &self,
        stats: &ServiceStats,
        enqueued: Instant,
        count: u64,
        service: std::time::Duration,
    ) {
        match self {
            Sink::Direct(ticket) => {
                let latency = enqueued.elapsed();
                ticket.state.complete(QueryResult {
                    count,
                    latency,
                    service_time: service,
                });
                stats.record_completed(latency);
            }
            Sink::Part(merge) => {
                if let Some(latency) = merge.complete_part(count, service) {
                    stats.record_completed(latency);
                }
            }
        }
    }
}

/// One queued query: spec, completion sink, submission timestamp.
struct QueuedQuery {
    spec: QuerySpec,
    sink: Sink,
    enqueued: Instant,
}

/// A running query service over one engine.
pub struct QueryService {
    /// One queue in shared mode; one per worker in affinity mode.
    queues: Vec<Arc<BoundedQueue<QueuedQuery>>>,
    engine: Arc<dyn QueryEngine>,
    stats: Arc<ServiceStats>,
    registry: Arc<SessionRegistry>,
    workers: Vec<std::thread::JoinHandle<()>>,
    started: Instant,
    admission: AdmissionPolicy,
    decompose: DecomposePolicy,
    calibrator: Arc<Calibrator>,
}

impl QueryService {
    /// Starts the dispatcher pool. When `accountant` is given, busy
    /// dispatchers register their thread usage so a holistic daemon
    /// watching the same accountant scales its workers down under load.
    pub fn start(
        engine: Arc<dyn QueryEngine>,
        accountant: Option<Arc<LoadAccountant>>,
        config: ServiceConfig,
    ) -> Self {
        let worker_count = config.workers.max(1);
        let queue_count = if config.affinity { worker_count } else { 1 };
        let queues: Vec<Arc<BoundedQueue<QueuedQuery>>> = (0..queue_count)
            .map(|_| Arc::new(BoundedQueue::new(config.queue_capacity, config.admission)))
            .collect();
        let stats = Arc::new(ServiceStats::new());
        // Seeded from the configured constants; when calibration is off
        // nothing ever observes, so `model()` is exactly the seed and
        // behaviour matches the fixed-constant service.
        let calibrator = Arc::new(Calibrator::new(config.cost));
        let workers = (0..worker_count)
            .map(|w| {
                let queue = Arc::clone(&queues[w % queue_count]);
                let stats = Arc::clone(&stats);
                let engine = Arc::clone(&engine);
                let accountant = accountant.clone();
                let scheduling = config.scheduling;
                let batch_max = config.batch_max.max(1);
                let contexts = config.contexts_per_worker;
                let calibrator = Arc::clone(&calibrator);
                let calibration = config.calibration;
                let cutover = config.cutover;
                std::thread::Builder::new()
                    .name(format!("holix-dispatch-{w}"))
                    .spawn(move || {
                        dispatch_loop(
                            &queue,
                            &stats,
                            engine.as_ref(),
                            accountant.as_ref(),
                            scheduling,
                            batch_max,
                            contexts,
                            cutover,
                            &calibrator,
                            calibration,
                        )
                    })
                    .expect("failed to spawn dispatcher")
            })
            .collect();
        QueryService {
            queues,
            engine,
            stats,
            registry: Arc::new(SessionRegistry::new()),
            workers,
            started: Instant::now(),
            admission: config.admission,
            decompose: config.decompose,
            calibrator,
        }
    }

    /// Opens a client session.
    pub fn session(&self) -> Session {
        Session {
            queues: self.queues.clone(),
            engine: Arc::clone(&self.engine),
            stats: Arc::clone(&self.stats),
            handle: self.registry.open(),
            admission: self.admission,
            decompose: self.decompose,
            calibrator: Arc::clone(&self.calibrator),
        }
    }

    /// The session registry (connection accounting).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The shared cost-model calibrator (its `model()` is the seed until
    /// [`ServiceConfig::calibration`] feeds it observations).
    pub fn calibrator(&self) -> &Arc<Calibrator> {
        &self.calibrator
    }

    /// Queries currently waiting for a dispatcher (summed over queues).
    pub fn queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Metrics snapshot over the service's lifetime so far.
    pub fn stats(&self) -> StatsSummary {
        self.stats.summary(self.started.elapsed())
    }

    /// Starts a fresh measurement window: every counter rebases and the
    /// latency reservoir clears (see [`ServiceStats::reset_window`]) —
    /// harnesses call this per interleaved rep so per-bed comparisons are
    /// never cumulative.
    pub fn reset_window(&self) {
        self.stats.reset_window();
    }

    /// Stops admission, drains every queued query, joins the dispatchers
    /// and returns the final metrics. Every ticket issued before shutdown
    /// is completed.
    pub fn shutdown(mut self) -> StatsSummary {
        for q in &self.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            w.join().expect("dispatcher panicked");
        }
        self.stats.summary(self.started.elapsed())
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        for q in &self.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A client's connection to the service. Cheap to create, `Send`, and safe
/// to use from its own thread.
pub struct Session {
    queues: Vec<Arc<BoundedQueue<QueuedQuery>>>,
    engine: Arc<dyn QueryEngine>,
    stats: Arc<ServiceStats>,
    handle: SessionHandle,
    admission: AdmissionPolicy,
    decompose: DecomposePolicy,
    calibrator: Arc<Calibrator>,
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.handle.id()
    }

    /// Submits a query; returns a ticket to wait on. Fails when admission
    /// control sheds the query or the service is shutting down. In
    /// affinity mode the query routes to the worker pinned to its
    /// attribute shard; with decomposition, a shard-spanning range is cut
    /// into per-shard sub-queries, each on its pinned worker's queue,
    /// completed under one merge ticket.
    pub fn submit(&self, spec: QuerySpec) -> Result<Ticket, SubmitError> {
        // Spanning check first (two partition-point lookups on the
        // immutable shard plan), cost estimate only for ranges that
        // actually span — narrow traffic must not pay plan pricing twice.
        if self.queues.len() > 1 && self.decompose != DecomposePolicy::Off {
            if let Some(parts) = self.engine.decompose(&spec) {
                if self.should_decompose(&spec) {
                    return self.submit_decomposed(parts);
                }
            }
        }
        let ticket = Ticket::new();
        match self.submit_part(spec, Sink::Direct(ticket.clone()), true) {
            Ok(()) => {
                self.stats.record_submitted();
                Ok(ticket)
            }
            Err(e) => {
                if e == SubmitError::Rejected {
                    self.stats.record_rejected();
                    self.trace_shed(&spec);
                    // Classify what FIFO shedding turned away so beds can
                    // be compared: price-aware admission records its own
                    // (finer) decisions at the shed site instead.
                    if self.admission != AdmissionPolicy::CostAware {
                        let decision = match self
                            .engine
                            .estimate_cost(&spec)
                            .map(|c| c.price(&self.calibrator.model()))
                        {
                            Some(QueryPrice::Cheap) | Some(QueryPrice::Screened) => {
                                PlanDecision::ShedCheap
                            }
                            _ => PlanDecision::ShedExpensive,
                        };
                        self.stats.record_decision(decision);
                    }
                }
                Err(e)
            }
        }
    }

    /// Submit and block for the answer (closed-loop convenience).
    pub fn execute(&self, spec: QuerySpec) -> Result<QueryResult, SubmitError> {
        Ok(self.submit(spec)?.wait())
    }

    /// Does the decomposition policy want `spec` split? (`CostBased`
    /// consults the plan: only spans the model prices Expensive carry
    /// enough per-shard work to pay for the merge ticket.)
    fn should_decompose(&self, spec: &QuerySpec) -> bool {
        match self.decompose {
            DecomposePolicy::Off => false,
            DecomposePolicy::Always => true,
            DecomposePolicy::CostBased => self
                .engine
                .estimate_cost(spec)
                .is_some_and(|c| c.price(&self.calibrator.model()) == QueryPrice::Expensive),
        }
    }

    /// The queue `spec` routes to (its home shard's pinned worker).
    fn queue_for(&self, spec: &QuerySpec) -> &BoundedQueue<QueuedQuery> {
        if self.queues.len() > 1 {
            &self.queues[(self.engine.routing_key(spec) % self.queues.len() as u64) as usize]
        } else {
            &self.queues[0]
        }
    }

    /// Enqueues one (sub-)query under the configured admission policy.
    /// `record_shed` controls whether a cost-aware shed is traced as a
    /// `ShedExpensive` decision — decomposed parts pass `false`, because
    /// their caller converts the rejection into inline execution (the
    /// query is never actually shed).
    fn submit_part(
        &self,
        spec: QuerySpec,
        sink: Sink,
        record_shed: bool,
    ) -> Result<(), SubmitError> {
        let queued = QueuedQuery {
            spec,
            sink,
            enqueued: Instant::now(),
        };
        match self.admission {
            AdmissionPolicy::Block | AdmissionPolicy::Reject => {
                let res = self.queue_for(&spec).push(queued);
                if res.is_ok() {
                    self.stats.queue_enqueued(1);
                }
                res
            }
            AdmissionPolicy::CostAware => self.cost_aware_submit(queued, record_shed),
        }
    }

    /// Price-aware shedding: a full queue sheds by plan cost, not by
    /// arrival position. Cheap (exact-hit / near-optimal) queries are
    /// NEVER shed — they go to a bounded overflow reserve, or execute
    /// inline on the submitting thread when even that is full. Expensive
    /// queries whose snapshot estimate is fresh enough are *downgraded*:
    /// served inline through the engine's lock-free snapshot path, off
    /// the workers entirely. Only expensive queries with no viable
    /// snapshot are shed.
    fn cost_aware_submit(&self, queued: QueuedQuery, record_shed: bool) -> Result<(), SubmitError> {
        let queue = self.queue_for(&queued.spec);
        let queued = match queue.try_push(queued) {
            Ok(()) => {
                self.stats.queue_enqueued(1);
                return Ok(());
            }
            Err((_, SubmitError::Closed)) => return Err(SubmitError::Closed),
            Err((q, _)) => q,
        };
        let model = self.calibrator.model();
        let cost = self.engine.estimate_cost(&queued.spec);
        let price = cost
            .as_ref()
            .map(|c| c.price(&model))
            .unwrap_or(QueryPrice::Expensive);
        match price {
            QueryPrice::Screened => {
                // The membership filter already proved the probe's shard
                // non-containing: execution is a lock-free filter probe
                // plus bookkeeping, cheaper than any queue handoff — so a
                // screened probe never spends a queue slot, even when the
                // queue has room for it on retry. Near-free by
                // construction, never shed.
                self.stats.record_decision(PlanDecision::ScreenedInline);
                self.execute_inline(
                    queued,
                    TraceRoute::Screened,
                    AdmitOutcome::Inline,
                    cost.as_ref(),
                );
                Ok(())
            }
            QueryPrice::Cheap => {
                let slack = (queue.capacity() / 4).max(1);
                match queue.push_with_slack(queued, slack) {
                    Ok(()) => {
                        self.stats.queue_enqueued(1);
                        self.stats.record_decision(PlanDecision::CheapAdmitted);
                        Ok(())
                    }
                    Err((_, SubmitError::Closed)) => Err(SubmitError::Closed),
                    Err((queued, _)) => {
                        // Even the reserve is full: an exact hit is cheap
                        // enough to answer right here.
                        self.stats.record_decision(PlanDecision::CheapAdmitted);
                        self.execute_inline(
                            queued,
                            TraceRoute::Locked,
                            AdmitOutcome::Inline,
                            cost.as_ref(),
                        );
                        Ok(())
                    }
                }
            }
            QueryPrice::Expensive => {
                if cost.as_ref().is_some_and(|c| c.downgradable(&model)) {
                    self.stats.record_decision(PlanDecision::DowngradedSnapshot);
                    self.execute_inline(
                        queued,
                        TraceRoute::Snapshot,
                        AdmitOutcome::Downgraded,
                        cost.as_ref(),
                    );
                    Ok(())
                } else {
                    if record_shed {
                        self.stats.record_decision(PlanDecision::ShedExpensive);
                    }
                    Err(SubmitError::Rejected)
                }
            }
        }
    }

    /// Spanning-query decomposition: one merge ticket over per-shard
    /// parts, each routed to its pinned worker. A part the queue rejects
    /// — or that arrives as the service closes — executes inline on this
    /// client thread: shedding or stranding an individual part would
    /// leave the merge dangling (its queued siblings drain at shutdown
    /// and complete into it), and inline execution IS the backpressure.
    /// The parent ticket therefore always completes.
    fn submit_decomposed(&self, parts: Vec<QuerySpec>) -> Result<Ticket, SubmitError> {
        let (state, ticket) = MergeState::new(parts.len());
        self.stats.record_decomposed(parts.len());
        self.stats.record_submitted();
        for spec in parts {
            if self
                .submit_part(spec, Sink::Part(Arc::clone(&state)), false)
                .is_err()
            {
                self.stats.record_decomp_inline();
                self.execute_inline(
                    QueuedQuery {
                        spec,
                        sink: Sink::Part(Arc::clone(&state)),
                        enqueued: Instant::now(),
                    },
                    TraceRoute::Locked,
                    AdmitOutcome::Inline,
                    None,
                );
            }
        }
        Ok(ticket)
    }

    /// Answers one queued query on the calling thread, preferring the
    /// requested route (`Snapshot` falls back to the locked path on
    /// engines without a snapshot surface; `Screened` is a locked-path
    /// execution the membership filter already priced near-free).
    fn execute_inline(
        &self,
        queued: QueuedQuery,
        route: TraceRoute,
        admit: AdmitOutcome,
        cost: Option<&PlanCost>,
    ) {
        let t0 = Instant::now();
        let count = match route {
            TraceRoute::Snapshot => match self.engine.execute_snapshot(&queued.spec) {
                Some((count, _)) => count,
                None => self.engine.execute(&queued.spec),
            },
            TraceRoute::Locked | TraceRoute::Screened => self.engine.execute(&queued.spec),
        };
        let service = t0.elapsed();
        self.stats.record_executed();
        if holix_telemetry::trace_enabled() {
            let planner_route = match route {
                TraceRoute::Snapshot => Route::Snapshot,
                _ => Route::Locked,
            };
            holix_telemetry::registry().trace().record(QueryTrace {
                seq: 0,
                attr: queued.spec.attr as u32,
                admit,
                queue_wait_ns: 0, // inline: never queued
                batch_len: 1,
                coalesce: CoalesceKind::Solo,
                route,
                plan_version: self.engine.plan_version(&queued.spec),
                predicted_ns: cost
                    .map(|c| self.calibrator.predicted_ns(c, planner_route))
                    .unwrap_or(0),
                actual_ns: service.as_nanos() as u64,
                crack_values: cost.map_or(0, |c| c.crack_values),
                decode_rows: cost.map_or(0, |c| c.decode_rows),
            });
        }
        queued
            .sink
            .complete(&self.stats, queued.enqueued, count, service);
    }

    /// Records a load-shed lifecycle in the trace ring (rejections never
    /// reach a dispatcher, so the shed site is the only place that sees
    /// them).
    fn trace_shed(&self, spec: &QuerySpec) {
        if holix_telemetry::trace_enabled() {
            holix_telemetry::registry().trace().record(QueryTrace {
                seq: 0,
                attr: spec.attr as u32,
                admit: AdmitOutcome::Shed,
                queue_wait_ns: 0,
                batch_len: 0,
                coalesce: CoalesceKind::Solo,
                route: TraceRoute::Locked,
                plan_version: self.engine.plan_version(spec),
                predicted_ns: 0,
                actual_ns: 0,
                crack_values: 0,
                decode_rows: 0,
            });
        }
    }
}

/// Completes `run` sinks with per-query counts and shared timing.
fn complete_run(
    stats: &ServiceStats,
    run: &[QueuedQuery],
    count_of: impl Fn(&QuerySpec) -> u64,
    service_time: std::time::Duration,
) {
    for q in run {
        q.sink
            .complete(stats, q.enqueued, count_of(&q.spec), service_time);
    }
}

/// Records one lifecycle trace per member of a completed dispatch run.
/// The head (the spec that actually executed) is `Solo`; every coalesced
/// member behind it carries `kind`. Only called with tracing enabled.
#[allow(clippy::too_many_arguments)]
fn trace_run(
    engine: &dyn QueryEngine,
    calibrator: &Calibrator,
    run: &[QueuedQuery],
    batch_len: u32,
    drained: Instant,
    route: TraceRoute,
    est: Option<&PlanCost>,
    taken: Route,
    service_time: Duration,
    kind: CoalesceKind,
) {
    let ring = holix_telemetry::registry().trace();
    let head = run[0].spec;
    let plan_version = engine.plan_version(&head);
    let predicted_ns = est.map_or(0, |c| calibrator.predicted_ns(c, taken));
    let actual_ns = service_time.as_nanos() as u64;
    let (crack_values, decode_rows) = est.map_or((0, 0), |c| (c.crack_values, c.decode_rows));
    for q in run {
        ring.record(QueryTrace {
            seq: 0,
            attr: q.spec.attr as u32,
            admit: AdmitOutcome::Queued,
            queue_wait_ns: drained.saturating_duration_since(q.enqueued).as_nanos() as u64,
            batch_len,
            coalesce: if q.spec == head {
                CoalesceKind::Solo
            } else {
                kind
            },
            route,
            plan_version,
            predicted_ns,
            actual_ns,
            crack_values,
            decode_rows,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_loop(
    queue: &BoundedQueue<QueuedQuery>,
    stats: &ServiceStats,
    engine: &dyn QueryEngine,
    accountant: Option<&Arc<LoadAccountant>>,
    scheduling: Scheduling,
    batch_max: usize,
    contexts: usize,
    cutover: bool,
    calibrator: &Calibrator,
    calibration: bool,
) {
    while let Some(mut batch) = queue.drain_up_to(batch_max) {
        let drained = Instant::now();
        stats.queue_drained(batch.len());
        let batch_len = batch.len() as u32;
        // Busy from drain to last completion; dropped while blocked on an
        // empty queue so an idle service leaves its contexts to the daemon.
        let _busy = accountant.map(|a| a.begin_task(contexts));
        // One model copy per batch: every member is priced against the
        // same constants even while the calibrator republishes.
        let model = calibrator.model();
        // Cheapest-first crack-aware ordering: the plan prices each
        // member, exact-hits and screened probes (class 0) drain ahead of
        // expensive cold cracks (class 1). Duplicates share a spec, hence
        // a price — coalescing runs survive the class split intact.
        order_batch_priced(
            &mut batch,
            scheduling,
            |q| q.spec,
            |spec| match engine.estimate_cost(spec).map(|c| c.price(&model)) {
                Some(QueryPrice::Screened) | Some(QueryPrice::Cheap) => 0,
                _ => 1,
            },
        );
        let mut rest = batch.as_slice();
        while !rest.is_empty() {
            let head = rest[0].spec;
            // Under crack-aware ordering the widest predicate of a group
            // leads; FIFO keeps run length 1 unless clients aligned.
            let (dup, contained) = match scheduling {
                Scheduling::Fifo => (1, 1),
                Scheduling::CrackAware => (
                    duplicate_run_len(rest, |q| q.spec),
                    containment_run_len(rest, |q| q.spec),
                ),
            };
            // Strict subsets behind the head: worth one collect call that
            // answers the whole containment run by post-filter. The
            // dispatcher issues a *snapshot ticket* first — the engine's
            // lock-free snapshot collect pins one epoch per touched shard,
            // so materialising the superset no longer holds any shard's
            // structure lock against concurrent cracks and Ripple merges.
            // Only `Unsupported` retries through the locked collect; a
            // `CapExceeded` superset would blow the identical cap there
            // too, so the run goes straight to per-query execution.
            if contained > dup {
                let t0 = Instant::now();
                let (values, via_snapshot) = match engine.execute_collect_snapshot(&head) {
                    SnapshotCollect::Values(v) => (Some(v), true),
                    SnapshotCollect::Unsupported => (engine.execute_collect(&head), false),
                    SnapshotCollect::CapExceeded => (None, false),
                };
                if let Some(values) = values {
                    let service_time = t0.elapsed();
                    stats.record_executed();
                    if via_snapshot {
                        stats.record_snapshot_run();
                    }
                    let superset_count = values.len() as u64;
                    for q in &rest[..contained] {
                        if q.spec != head {
                            stats.record_containment();
                        }
                    }
                    complete_run(
                        stats,
                        &rest[..contained],
                        |spec| {
                            if *spec == head {
                                superset_count
                            } else {
                                values
                                    .iter()
                                    .filter(|&&v| spec.lo <= v && v < spec.hi)
                                    .count() as u64
                            }
                        },
                        service_time,
                    );
                    if holix_telemetry::trace_enabled() {
                        let (route, taken) = if via_snapshot {
                            (TraceRoute::Snapshot, Route::Snapshot)
                        } else {
                            (TraceRoute::Locked, Route::Locked)
                        };
                        trace_run(
                            engine,
                            calibrator,
                            &rest[..contained],
                            batch_len,
                            drained,
                            route,
                            engine.estimate_cost(&head).as_ref(),
                            taken,
                            service_time,
                            CoalesceKind::Containment,
                        );
                    }
                    rest = &rest[contained..];
                    continue;
                }
            }
            // Plain path: execute the head once, fan the count out to the
            // exact-duplicate run. The snapshot/locked cutover consults
            // the plan first — a read-only query routes through the
            // lock-free snapshot path exactly when the model prices its
            // refreshed edge pieces below the locked crack.
            let t0 = Instant::now();
            let est = if cutover || calibration {
                engine.estimate_cost(&head)
            } else {
                None
            };
            let route = if cutover {
                est.as_ref()
                    .map(|c| c.preferred_route(&model))
                    .unwrap_or(Route::Locked)
            } else {
                Route::Locked
            };
            // `taken` is the path actually executed: a snapshot route can
            // fall back to the locked crack, and the calibrator must
            // attribute the measured time to the path that produced it.
            let (count, taken) = match route {
                Route::Snapshot => match engine.execute_snapshot(&head) {
                    Some((count, _)) => {
                        stats.record_decision(PlanDecision::SnapshotCutover);
                        (count, Route::Snapshot)
                    }
                    None => (engine.execute(&head), Route::Locked),
                },
                Route::Locked => (engine.execute(&head), Route::Locked),
            };
            let service_time = t0.elapsed();
            if calibration {
                if let Some(est) = est.as_ref() {
                    calibrator.observe(est, taken, service_time.as_nanos() as u64);
                }
            }
            stats.record_executed();
            complete_run(stats, &rest[..dup], |_| count, service_time);
            if holix_telemetry::trace_enabled() {
                // Cost-blind beds compute no estimate on the hot path;
                // tracing pays for its own (plan pricing is lock-free).
                let owned = if est.is_none() {
                    engine.estimate_cost(&head)
                } else {
                    None
                };
                let tcost = est.as_ref().or(owned.as_ref());
                let route = match taken {
                    Route::Snapshot => TraceRoute::Snapshot,
                    Route::Locked if tcost.is_some_and(|c| c.screened) => TraceRoute::Screened,
                    Route::Locked => TraceRoute::Locked,
                };
                trace_run(
                    engine,
                    calibrator,
                    &rest[..dup],
                    batch_len,
                    drained,
                    route,
                    tcost,
                    taken,
                    service_time,
                    CoalesceKind::Duplicate,
                );
            }
            rest = &rest[dup..];
        }
        stats.record_busy(drained.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_engine::api::Dataset;
    use holix_engine::{
        AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig, QueryEngine,
    };
    use holix_workloads::data::uniform_table;
    use holix_workloads::WorkloadSpec;
    use std::time::Duration;

    fn engine(rows: usize, domain: i64) -> (Dataset, Arc<dyn QueryEngine>) {
        let data = Dataset::new(uniform_table(2, rows, domain, 5));
        let engine = AdaptiveEngine::new(data.clone(), CrackMode::Sequential);
        (data, Arc::new(engine))
    }

    fn oracle(data: &Dataset, q: &QuerySpec) -> u64 {
        data.column(q.attr)
            .iter()
            .filter(|&&v| q.lo <= v && v < q.hi)
            .count() as u64
    }

    #[test]
    fn service_answers_match_oracle_under_both_schedulings() {
        for scheduling in [Scheduling::Fifo, Scheduling::CrackAware] {
            let (data, eng) = engine(30_000, 10_000);
            let service = QueryService::start(
                eng,
                None,
                ServiceConfig {
                    workers: 2,
                    scheduling,
                    ..ServiceConfig::default()
                },
            );
            let queries = WorkloadSpec::random(2, 64, 10_000, 6).generate();
            let session = service.session();
            let tickets: Vec<(QuerySpec, Ticket)> = queries
                .iter()
                .map(|&q| (q, session.submit(q).unwrap()))
                .collect();
            for (q, t) in &tickets {
                assert_eq!(t.wait().count, oracle(&data, q), "{scheduling:?} {q:?}");
            }
            let summary = service.shutdown();
            assert_eq!(summary.completed, 64);
            assert_eq!(summary.rejected, 0);
            assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
        }
    }

    #[test]
    fn crack_aware_coalesces_duplicate_predicates() {
        let (data, eng) = engine(20_000, 1_000);
        let service = QueryService::start(
            eng,
            None,
            ServiceConfig {
                workers: 1,
                scheduling: Scheduling::CrackAware,
                batch_max: 128,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let q = QuerySpec {
            attr: 0,
            lo: 100,
            hi: 300,
        };
        // Submit 32 identical queries before any dispatcher can finish the
        // first: they land in one batch and execute once or a few times.
        let tickets: Vec<Ticket> = (0..32).map(|_| session.submit(q).unwrap()).collect();
        let expect = oracle(&data, &q);
        for t in &tickets {
            assert_eq!(t.wait().count, expect);
        }
        let summary = service.shutdown();
        assert_eq!(summary.completed, 32);
        assert!(
            summary.executed < 32,
            "no coalescing happened (executed={})",
            summary.executed
        );
    }

    #[test]
    fn containment_coalescing_answers_subsets_from_the_superset() {
        // Holistic engine: supports execute_collect. One worker, one batch:
        // a superset plus strict subsets must produce containment hits and
        // exact answers.
        let data = Dataset::new(uniform_table(1, 30_000, 10_000, 9));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                scheduling: Scheduling::CrackAware,
                batch_max: 128,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let superset = QuerySpec {
            attr: 0,
            lo: 1_000,
            hi: 9_000,
        };
        let subsets: Vec<QuerySpec> = (0..8)
            .map(|i| QuerySpec {
                attr: 0,
                lo: 1_000 + i * 500,
                hi: 9_000 - i * 500,
            })
            .collect();
        // Burst-submit so everything lands in one drained batch.
        let mut tickets = vec![(superset, session.submit(superset).unwrap())];
        for &s in &subsets {
            tickets.push((s, session.submit(s).unwrap()));
        }
        for (q, t) in &tickets {
            assert_eq!(t.wait().count, oracle(&data, q), "{q:?}");
        }
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(summary.completed, 9);
        assert!(
            summary.containment > 0,
            "no containment hits (executed={} containment={})",
            summary.executed,
            summary.containment
        );
        assert!(
            summary.executed < 9,
            "containment did not save executions (executed={})",
            summary.executed
        );
        assert!(
            summary.snapshot_runs > 0,
            "holistic containment run did not use the snapshot ticket \
             (snapshot_runs={})",
            summary.snapshot_runs
        );
    }

    #[test]
    fn affinity_mode_routes_and_answers_correctly() {
        let data = Dataset::new(uniform_table(2, 40_000, 1 << 20, 11));
        let mut cfg = HolisticEngineConfig::split_half_sharded(4, 4);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 3,
                scheduling: Scheduling::CrackAware,
                affinity: true,
                ..ServiceConfig::default()
            },
        );
        let queries = WorkloadSpec::random(2, 96, 1 << 20, 12).generate();
        std::thread::scope(|s| {
            for chunk in queries.chunks(24) {
                let session = service.session();
                let data = &data;
                s.spawn(move || {
                    for q in chunk {
                        assert_eq!(session.execute(*q).unwrap().count, oracle(data, q));
                    }
                });
            }
        });
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(summary.completed, 96);
    }

    #[test]
    fn decomposed_spanning_queries_answer_exactly_and_keep_affinity() {
        let data = Dataset::new(uniform_table(2, 40_000, 1 << 20, 21));
        let mut cfg = HolisticEngineConfig::split_half_sharded(4, 4);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 4,
                scheduling: Scheduling::CrackAware,
                affinity: true,
                decompose: DecomposePolicy::Always,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        // Wide spanning ranges (decomposed) interleaved with narrow ones
        // (must pass through untouched).
        for i in 0..24i64 {
            let wide = QuerySpec {
                attr: (i % 2) as usize,
                lo: i * 1_000,
                hi: i * 1_000 + (1 << 19),
            };
            let narrow = QuerySpec {
                attr: (i % 2) as usize,
                lo: i * 100,
                hi: i * 100 + 50,
            };
            assert_eq!(session.execute(wide).unwrap().count, oracle(&data, &wide));
            assert_eq!(
                session.execute(narrow).unwrap().count,
                oracle(&data, &narrow)
            );
        }
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(summary.completed, 48, "one completion per client query");
        assert!(
            summary.decomposed >= 20,
            "wide ranges were not decomposed (decomposed={})",
            summary.decomposed
        );
        assert!(
            summary.decomposed_parts >= 2 * summary.decomposed,
            "parts={} for {} decomposed",
            summary.decomposed_parts,
            summary.decomposed
        );
        assert_eq!(summary.submitted, 48);
    }

    #[test]
    fn cost_aware_admission_never_sheds_cheap_queries() {
        // One slow worker, a tiny queue, and a burst of expensive cold
        // cracks interleaved with cheap exact-hits: price-aware shedding
        // must turn away only the expensive ones.
        let data = Dataset::new(uniform_table(1, 300_000, 1 << 20, 23));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let hot = QuerySpec {
            attr: 0,
            lo: 100_000,
            hi: 105_000,
        };
        // Warm the hot window so its bounds are exact hits in the stats.
        eng.execute(&hot);
        let (col, _) = eng.sharded(0);
        for k in 0..col.shard_count() {
            col.shard(k).publish_stats();
        }
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                admission: AdmissionPolicy::CostAware,
                scheduling: Scheduling::Fifo,
                batch_max: 1,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let mut rng_lo = 7_i64;
        let mut cheap_tickets = Vec::new();
        let mut expensive_outcomes = 0u64;
        for i in 0..128 {
            if i % 2 == 0 {
                // Cold expensive: fresh random bounds every time.
                rng_lo = (rng_lo.wrapping_mul(48_271)) % (1 << 19);
                let q = QuerySpec {
                    attr: 0,
                    lo: rng_lo.abs(),
                    hi: rng_lo.abs() + (1 << 18),
                };
                match session.submit(q) {
                    Ok(t) => {
                        let _ = t; // answered eventually; count not asserted
                    }
                    Err(SubmitError::Rejected) => expensive_outcomes += 1,
                    Err(e) => panic!("unexpected {e:?}"),
                }
            } else {
                // Cheap exact-hit: MUST always be admitted.
                let t = session
                    .submit(hot)
                    .expect("cost-aware admission shed a cheap exact-hit");
                cheap_tickets.push(t);
            }
        }
        let expect = oracle(&data, &hot);
        for t in &cheap_tickets {
            assert_eq!(t.wait().count, expect);
        }
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(summary.shed_cheap, 0, "cheap queries were shed");
        assert_eq!(cheap_tickets.len(), 64);
        // Under this overload something expensive must have been priced
        // out (shed or downgraded) — and every rejection we observed was
        // recorded as expensive.
        assert!(summary.shed_expensive + summary.downgraded_snapshot + summary.rejected > 0);
        assert_eq!(summary.rejected, expensive_outcomes);
    }

    #[test]
    fn duplicate_point_probes_coalesce_in_the_batcher() {
        // Point-heavy clients repeat the same equality probes; the
        // crack-aware batcher must coalesce identical unit ranges into one
        // engine execution exactly like duplicate range predicates.
        let base: Vec<i64> = (0..30_000).map(|i| (i % 10_000) * 2).collect();
        let data = Dataset::new(vec![base]);
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data, cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                scheduling: Scheduling::CrackAware,
                batch_max: 128,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let absent = QuerySpec {
            attr: 0,
            lo: 4_001, // odd → provably absent
            hi: 4_002,
        };
        let present = QuerySpec {
            attr: 0,
            lo: 4_000,
            hi: 4_001,
        };
        let mut tickets = Vec::new();
        for _ in 0..16 {
            tickets.push((0u64, session.submit(absent).unwrap()));
            tickets.push((3u64, session.submit(present).unwrap()));
        }
        for (want, t) in &tickets {
            assert_eq!(t.wait().count, *want);
        }
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(summary.completed, 32);
        assert!(
            summary.executed < 32,
            "duplicate point probes were not coalesced (executed={})",
            summary.executed
        );
    }

    #[test]
    fn screened_point_probes_execute_inline_under_overload() {
        // Cost-aware admission with a full queue: a point probe the
        // membership filter prices Screened must execute inline — never
        // queued, never shed — while expensive cold ranges are priced out.
        let base: Vec<i64> = (0..200_000).map(|i| (i % 50_000) * 2).collect();
        let data = Dataset::new(vec![base]);
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data, cfg));
        // Build the filter (one probe pays it) and publish fresh stats so
        // plan-time screening sees the published filter.
        assert_eq!(
            eng.execute(&QuerySpec {
                attr: 0,
                lo: 1,
                hi: 2
            }),
            0
        );
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                admission: AdmissionPolicy::CostAware,
                scheduling: Scheduling::Fifo,
                batch_max: 1,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let mut probe_tickets = Vec::new();
        let mut lo = 11_i64;
        for i in 0..128 {
            if i % 2 == 0 {
                // Expensive cold range keeping the queue and worker busy.
                lo = (lo.wrapping_mul(48_271)) % (1 << 16);
                let q = QuerySpec {
                    attr: 0,
                    lo: lo.abs(),
                    hi: lo.abs() + 60_000,
                };
                let _ = session.submit(q); // shed / downgraded / queued — all fine
            } else {
                // Odd value → filter-negative: must always be admitted.
                let v = ((i * 97) % 100_000) | 1;
                let t = session
                    .submit(QuerySpec {
                        attr: 0,
                        lo: v,
                        hi: v + 1,
                    })
                    .expect("screened point probe was shed");
                probe_tickets.push(t);
            }
        }
        for t in &probe_tickets {
            assert_eq!(t.wait().count, 0);
        }
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(probe_tickets.len(), 64);
        assert!(
            summary.screened_inline > 0,
            "no probe was screened inline (screened_inline=0, rejected={})",
            summary.rejected
        );
    }

    #[test]
    fn cost_cutover_routes_backlogged_reads_through_the_snapshot() {
        // A warmed exact-hit window plus a large pending Ripple backlog:
        // the locked path would pay the merge, the snapshot path overlays
        // it — the model must route the read through `execute_snapshot`
        // and the answer must still include every queued update.
        let data = Dataset::new(uniform_table(1, 60_000, 1 << 20, 29));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let q = QuerySpec {
            attr: 0,
            lo: 200_000,
            hi: 400_000,
        };
        eng.execute(&q); // crack the bounds
        let _ = eng.execute_snapshot(&q); // publish + refresh the snapshot
                                          // Large backlog of pending inserts inside the window.
        for i in 0..600u32 {
            eng.queue_insert(0, 300_000 + i as i64 % 50, 1_000_000 + i);
        }
        let (col, _) = eng.sharded(0);
        for k in 0..col.shard_count() {
            col.shard(k).publish_stats();
        }
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                scheduling: Scheduling::Fifo,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let result = session.execute(q).unwrap();
        assert_eq!(
            result.count,
            oracle(&data, &q) + 600,
            "overlay missed updates"
        );
        let summary = service.shutdown();
        eng.stop();
        assert!(
            summary.snapshot_cutover >= 1,
            "backlogged read did not take the snapshot route"
        );
    }

    #[test]
    fn calibration_feeds_observations_and_keeps_knobs_inside_the_rails() {
        let data = Dataset::new(uniform_table(1, 60_000, 1 << 20, 37));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                scheduling: Scheduling::Fifo,
                calibration: true,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let queries = WorkloadSpec::random(1, 96, 1 << 20, 38).generate();
        for q in &queries {
            assert_eq!(session.execute(*q).unwrap().count, oracle(&data, q));
        }
        let cal = Arc::clone(service.calibrator());
        assert!(
            cal.observations() >= Calibrator::REPUBLISH_EVERY,
            "dispatchers observed only {} executions",
            cal.observations()
        );
        let (seed, m) = (cal.seed(), cal.model());
        for (got, seeded) in [
            (m.merge_weight, seed.merge_weight),
            (m.cheap_budget, seed.cheap_budget),
            (m.downgrade_budget, seed.downgrade_budget),
        ] {
            assert!(
                got >= (seeded / 4).max(1) && got <= seeded * 4,
                "calibrated knob {got} escaped the rails of seed {seeded}"
            );
        }
        let summary = service.shutdown();
        eng.stop();
        assert_eq!(summary.completed, 96);
    }

    #[test]
    fn calibration_off_never_observes_and_the_seed_stands() {
        let data = Dataset::new(uniform_table(1, 30_000, 10_000, 41));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data, cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        for q in WorkloadSpec::random(1, 32, 10_000, 42).generate() {
            session.execute(q).unwrap();
        }
        assert_eq!(service.calibrator().observations(), 0);
        assert_eq!(
            service.calibrator().model(),
            service.calibrator().seed(),
            "with calibration off the configured constants must stand"
        );
        service.shutdown();
        eng.stop();
    }

    #[test]
    fn reject_admission_sheds_load_but_answers_accepted_queries() {
        let (data, eng) = engine(50_000, 1_000);
        let service = QueryService::start(
            eng,
            None,
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                admission: AdmissionPolicy::Reject,
                scheduling: Scheduling::Fifo,
                batch_max: 2,
                contexts_per_worker: 1,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let q = QuerySpec {
            attr: 1,
            lo: 0,
            hi: 500,
        };
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..256 {
            match session.submit(q) {
                Ok(t) => accepted.push(t),
                Err(SubmitError::Rejected) => rejected += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        let expect = oracle(&data, &q);
        for t in &accepted {
            assert_eq!(t.wait().count, expect);
        }
        let summary = service.shutdown();
        assert_eq!(summary.completed as usize, accepted.len());
        assert_eq!(summary.rejected, rejected);
    }

    #[test]
    fn busy_dispatchers_register_with_the_accountant() {
        let (_, eng) = engine(200_000, 1 << 20);
        let accountant = LoadAccountant::new(4);
        let service = QueryService::start(
            eng,
            Some(Arc::clone(&accountant)),
            ServiceConfig {
                workers: 2,
                scheduling: Scheduling::Fifo,
                batch_max: 4,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        // Keep the service busy and watch the accountant go non-idle.
        let tickets: Vec<Ticket> = WorkloadSpec::random(2, 128, 1 << 20, 7)
            .generate()
            .into_iter()
            .map(|q| session.submit(q).unwrap())
            .collect();
        let mut saw_busy = false;
        for t in &tickets {
            saw_busy |= accountant.busy() > 0;
            t.wait();
        }
        assert!(saw_busy, "dispatchers never registered load");
        service.shutdown();
        assert_eq!(accountant.busy(), 0, "task guards leaked");
    }

    #[test]
    fn trace_ring_records_query_lifecycles() {
        let data = Dataset::new(uniform_table(1, 20_000, 10_000, 51));
        let mut cfg = HolisticEngineConfig::split_half(2);
        cfg.holistic.monitor_interval = Duration::from_millis(50);
        let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let service = QueryService::start(
            Arc::clone(&eng) as Arc<dyn QueryEngine>,
            None,
            ServiceConfig {
                workers: 1,
                scheduling: Scheduling::CrackAware,
                ..ServiceConfig::default()
            },
        );
        holix_telemetry::set_trace_enabled(true);
        let session = service.session();
        let marker = QuerySpec {
            attr: 0,
            lo: 777,
            hi: 4_777,
        };
        assert_eq!(
            session.execute(marker).unwrap().count,
            oracle(&data, &marker)
        );
        // Shutdown joins the dispatcher before tracing is disabled — the
        // trace record lands *after* the ticket completes, so flipping the
        // flag earlier races the recording.
        service.shutdown();
        holix_telemetry::set_trace_enabled(false);
        eng.stop();
        // The ring is global; other concurrently-running tests leave
        // tracing off, so our marker predicate's record must be present
        // with a full lifecycle attached.
        let traces = holix_telemetry::registry().trace().recent(256);
        let t = traces
            .iter()
            .find(|t| t.admit == AdmitOutcome::Queued && t.actual_ns > 0 && t.batch_len >= 1)
            .expect("no queued lifecycle trace was recorded");
        assert_eq!(t.coalesce, CoalesceKind::Solo);
    }

    #[test]
    fn queue_depth_gauge_drains_to_zero_at_shutdown() {
        let (data, eng) = engine(20_000, 1_000);
        let service = QueryService::start(
            eng,
            None,
            ServiceConfig {
                workers: 1,
                batch_max: 4,
                ..ServiceConfig::default()
            },
        );
        let session = service.session();
        let q = QuerySpec {
            attr: 0,
            lo: 10,
            hi: 600,
        };
        let tickets: Vec<Ticket> = (0..32).map(|_| session.submit(q).unwrap()).collect();
        let expect = oracle(&data, &q);
        for t in &tickets {
            assert_eq!(t.wait().count, expect);
        }
        let stats = Arc::clone(&service.stats);
        let summary = service.shutdown();
        assert_eq!(
            stats.queue_depth(),
            0,
            "every enqueued query must be drained"
        );
        assert!(
            summary.queue_depth_peak >= 1,
            "burst never registered on the peak gauge"
        );
        assert!(
            summary.busy_ns > 0,
            "dispatcher batches recorded no busy time"
        );
    }

    #[test]
    fn sessions_are_registered_and_counted() {
        let (_, eng) = engine(1_000, 100);
        let service = QueryService::start(eng, None, ServiceConfig::default());
        {
            let a = service.session();
            let b = service.session();
            assert_eq!(service.registry().active(), 2);
            let _ = (a, b);
        }
        assert_eq!(service.registry().active(), 0);
        assert_eq!(service.registry().total_opened(), 2);
        service.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_closed() {
        let (_, eng) = engine(1_000, 100);
        let service = QueryService::start(eng, None, ServiceConfig::default());
        let session = service.session();
        service.shutdown();
        assert_eq!(
            session
                .submit(QuerySpec {
                    attr: 0,
                    lo: 0,
                    hi: 10
                })
                .err(),
            Some(SubmitError::Closed)
        );
    }
}
