//! Fig 17 — varying the number of concurrent clients (§5.8): holistic
//! indexing helps most with few clients; as clients saturate the contexts,
//! the load monitor scales workers down and holistic converges to PVDC.
//!
//! Clients are driven through the `holix-server` service layer (closed-loop
//! sessions over a dispatcher pool); the engines stay the execution
//! interface.

use holix_bench::{secs, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_server::run_clients;
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;
use std::sync::Arc;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 17: varying number of concurrent clients",
        "csv: clients,pvdc,holistic,hi_label (total wall seconds)",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 17));
    let queries = WorkloadSpec::random(env.attrs, env.queries * 2, env.domain, 170).generate();
    let t = env.threads;

    let mut clients_list = vec![1usize, 2, 4];
    if t >= 8 {
        clients_list.push(8);
    }
    if t >= 16 {
        clients_list.push(16);
        clients_list.push(32);
    }

    println!("clients,pvdc,holistic,hi_label");
    for &clients in &clients_list {
        // PVDC: each client's query cracks with its share of the contexts.
        let per_client = (t / clients).max(1);
        let pvdc_engine: Arc<dyn QueryEngine> = Arc::new(AdaptiveEngine::new(
            data.clone(),
            CrackMode::Pvdc {
                threads: per_client,
            },
        ));
        let (pvdc_wall, _) = run_clients(pvdc_engine, &queries, clients);

        // Holistic: user queries take half the per-client share; the daemon
        // sees the remaining contexts through the accountant and scales
        // workers automatically.
        let user = (t / (2 * clients)).max(1);
        let mut cfg = HolisticEngineConfig::split_half(t);
        cfg.user_threads = user;
        let engine = Arc::new(HolisticEngine::new(data.clone(), cfg));
        let (hi_wall, _) = run_clients(
            Arc::clone(&engine) as Arc<dyn QueryEngine>,
            &queries,
            clients,
        );
        let cycles = engine.stop();
        let max_workers = cycles.iter().map(|c| c.workers).max().unwrap_or(0);
        println!(
            "{clients},{:.6},{:.6},u{user}w{max_workers}",
            secs(pvdc_wall),
            secs(hi_wall)
        );
    }
}
