//! CPU-utilisation monitoring (§4.1 "CPU Utilization").
//!
//! The tuning cycle consumes a single signal: *how many hardware contexts
//! were idle over the last sampling window*. Two sources are provided:
//!
//! - [`LoadAccountant`] — deterministic logical accounting: the engine
//!   registers every running user-query task; idle = total − busy. This is
//!   the default for reproducible experiments (substitution documented in
//!   DESIGN.md §2.6).
//! - [`ProcStatMonitor`] — kernel statistics from `/proc/stat`, like the
//!   paper's MonetDB load-checker (Linux only; parsing is unit-tested on
//!   fixtures).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Source of the "n idle hardware contexts" signal. Implementations block
/// for approximately `window` so the daemon's cycle cadence matches the
/// paper's "monitors the CPU load at intervals of 1 second".
pub trait CpuMonitor: Send + Sync {
    /// Hardware contexts the machine (or the experiment) exposes.
    fn total_contexts(&self) -> usize;

    /// Blocks ~`window`, then reports idle contexts observed.
    fn idle_contexts(&self, window: Duration) -> usize;
}

/// Deterministic logical load tracker.
///
/// User-query execution paths hold a [`TaskGuard`] while running; the
/// monitor reports `total − busy`, where busy is the *time-averaged* busy
/// context count over the sampling window (like the paper's utilisation
/// monitor), not an instantaneous snapshot — a microsecond lull between
/// batches must not read as an idle machine.
pub struct LoadAccountant {
    total: usize,
    integral: Mutex<BusyIntegral>,
}

/// Busy-context-seconds accumulator: `acc` integrates the busy level over
/// time so any two snapshots yield the exact average level in between.
struct BusyIntegral {
    acc: f64,
    level: usize,
    last: Instant,
}

impl BusyIntegral {
    /// Advances the integral to `now` and returns the accumulated value.
    fn advance(&mut self, now: Instant) -> f64 {
        self.acc += self.level as f64 * now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.acc
    }
}

impl LoadAccountant {
    /// Tracker for `total` hardware contexts.
    pub fn new(total: usize) -> Arc<Self> {
        Arc::new(LoadAccountant {
            total: total.max(1),
            integral: Mutex::new(BusyIntegral {
                acc: 0.0,
                level: 0,
                last: Instant::now(),
            }),
        })
    }

    /// Tracker sized to the machine.
    pub fn for_machine() -> Arc<Self> {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Marks `contexts` hardware contexts busy until the guard drops.
    pub fn begin_task(self: &Arc<Self>, contexts: usize) -> TaskGuard {
        self.shift_level(contexts as i64);
        TaskGuard {
            acc: Arc::clone(self),
            contexts,
        }
    }

    /// Currently busy contexts (instantaneous). Reads the integral's level
    /// — the single source of truth the averaged monitor also uses.
    pub fn busy(&self) -> usize {
        self.integral
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .level
    }

    fn shift_level(&self, delta: i64) {
        let mut i = self.integral.lock().unwrap_or_else(|e| e.into_inner());
        i.advance(Instant::now());
        i.level = (i.level as i64 + delta).max(0) as usize;
    }

    fn integral_at(&self, now: Instant) -> f64 {
        self.integral
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .advance(now)
    }
}

impl CpuMonitor for LoadAccountant {
    fn total_contexts(&self) -> usize {
        self.total
    }

    fn idle_contexts(&self, window: Duration) -> usize {
        if window.is_zero() {
            // Degenerate window: fall back to the instantaneous level.
            return self.total.saturating_sub(self.busy());
        }
        let t0 = Instant::now();
        let acc0 = self.integral_at(t0);
        std::thread::sleep(window);
        let t1 = Instant::now();
        let acc1 = self.integral_at(t1);
        let elapsed = t1.duration_since(t0).as_secs_f64();
        if elapsed <= 0.0 {
            return self.total.saturating_sub(self.busy());
        }
        let avg_busy = (acc1 - acc0) / elapsed;
        self.total.saturating_sub(avg_busy.round() as usize)
    }
}

/// RAII registration of a running user task.
pub struct TaskGuard {
    acc: Arc<LoadAccountant>,
    contexts: usize,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        self.acc.shift_level(-(self.contexts as i64));
    }
}

/// Kernel-statistics monitor reading `/proc/stat` deltas.
pub struct ProcStatMonitor {
    total: usize,
}

impl ProcStatMonitor {
    /// Monitor sized to the machine.
    pub fn new() -> Self {
        ProcStatMonitor {
            total: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Monitor for an explicit context count.
    pub fn with_total(total: usize) -> Self {
        ProcStatMonitor {
            total: total.max(1),
        }
    }

    fn sample() -> Option<CpuTimes> {
        let text = std::fs::read_to_string("/proc/stat").ok()?;
        parse_proc_stat(&text)
    }
}

impl Default for ProcStatMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuMonitor for ProcStatMonitor {
    fn total_contexts(&self) -> usize {
        self.total
    }

    fn idle_contexts(&self, window: Duration) -> usize {
        let Some(a) = Self::sample() else { return 0 };
        std::thread::sleep(window);
        let Some(b) = Self::sample() else { return 0 };
        let d_busy = b.busy.saturating_sub(a.busy);
        let d_idle = b.idle.saturating_sub(a.idle);
        let denom = d_busy + d_idle;
        if denom == 0 {
            return 0;
        }
        ((d_idle as f64 / denom as f64) * self.total as f64).round() as usize
    }
}

/// Aggregate jiffies from the `cpu ` summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuTimes {
    /// Non-idle jiffies (user+nice+system+irq+softirq+steal).
    pub busy: u64,
    /// Idle jiffies (idle+iowait).
    pub idle: u64,
}

/// Parses the aggregate `cpu ` line of `/proc/stat`.
pub fn parse_proc_stat(text: &str) -> Option<CpuTimes> {
    let line = text.lines().find(|l| {
        l.starts_with("cpu ") || (l.starts_with("cpu") && l.as_bytes().get(3) == Some(&b'\t'))
    })?;
    let fields: Vec<u64> = line
        .split_whitespace()
        .skip(1)
        .filter_map(|f| f.parse().ok())
        .collect();
    if fields.len() < 4 {
        return None;
    }
    let get = |i: usize| fields.get(i).copied().unwrap_or(0);
    let idle = get(3) + get(4); // idle + iowait
    let busy = get(0) + get(1) + get(2) + get(5) + get(6) + get(7);
    Some(CpuTimes { busy, idle })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_tracks_guards() {
        let acc = LoadAccountant::new(8);
        assert_eq!(acc.idle_contexts(Duration::ZERO), 8);
        let g1 = acc.begin_task(2);
        let g2 = acc.begin_task(3);
        assert_eq!(acc.busy(), 5);
        assert_eq!(acc.idle_contexts(Duration::ZERO), 3);
        drop(g1);
        assert_eq!(acc.idle_contexts(Duration::ZERO), 5);
        drop(g2);
        assert_eq!(acc.idle_contexts(Duration::ZERO), 8);
    }

    #[test]
    fn accountant_averages_load_over_the_window() {
        // 4 contexts busy for ~the first half of the window, idle after:
        // the monitor must report the average (~2 idle), not the
        // instantaneous level at the end of the window (4 idle). Generous
        // durations keep the ratio stable under test-runner contention.
        let acc = LoadAccountant::new(4);
        let guard = acc.begin_task(4);
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            drop(guard);
        });
        let idle = acc.idle_contexts(Duration::from_millis(400));
        dropper.join().unwrap();
        assert!(
            (1..=3).contains(&idle),
            "expected ~2 idle from a half-busy window, got {idle}"
        );
    }

    #[test]
    fn accountant_saturates_on_oversubscription() {
        let acc = LoadAccountant::new(2);
        let _g = acc.begin_task(5);
        assert_eq!(acc.idle_contexts(Duration::ZERO), 0);
    }

    #[test]
    fn accountant_is_thread_safe() {
        let acc = LoadAccountant::new(64);
        let mut handles = Vec::new();
        for _ in 0..16 {
            let acc = Arc::clone(&acc);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _g = acc.begin_task(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acc.busy(), 0);
    }

    #[test]
    fn parse_proc_stat_fixture() {
        let fixture = "cpu  4705 150 1120 16250856 30 0 25 12 0 0\n\
                       cpu0 1200 38 280 4062714 7 0 6 3 0 0\n\
                       intr 12345\n";
        let t = parse_proc_stat(fixture).unwrap();
        assert_eq!(t.idle, 16_250_856 + 30);
        assert_eq!(t.busy, (4705 + 150 + 1120) + 25 + 12);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_proc_stat(""), None);
        assert_eq!(parse_proc_stat("cpu x y z"), None);
        assert_eq!(parse_proc_stat("intr 5\nctxt 7\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn proc_stat_monitor_reads_live_kernel() {
        let m = ProcStatMonitor::with_total(4);
        let idle = m.idle_contexts(Duration::from_millis(30));
        assert!(idle <= 4);
    }
}
