//! Crack-aware batch ordering.
//!
//! A drained batch of randomly arrived queries is reordered so the engine
//! sees *piece-friendly bursts*: queries are grouped per column (no cache
//! thrash between cracker columns) and sorted by predicate bounds inside
//! each group, so consecutive predicates land in already-cracked or
//! adjacent pieces of the same column. Among queries sharing a lower bound
//! the *widest* range sorts first, which lines every contained predicate up
//! directly behind its superset: the dispatcher executes the superset once
//! and answers exact duplicates by fan-out and strict subsets by
//! post-filtering the superset's values (containment coalescing).

use holix_workloads::QuerySpec;

/// How the dispatcher orders a drained batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Arrival (FIFO) order — the naive round-robin baseline.
    #[default]
    Fifo,
    /// Group per column, sort by bounds (widest-first on ties), coalesce
    /// duplicate and contained predicates.
    CrackAware,
}

impl Scheduling {
    /// CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            Scheduling::Fifo => "fifo",
            Scheduling::CrackAware => "crack_aware",
        }
    }
}

/// Reorders `batch` in place according to the scheduling policy. `spec`
/// projects each item onto its query. FIFO leaves arrival order untouched;
/// crack-aware performs a stable sort by `(attr, lo, descending hi)` so
/// ties keep their arrival order and a superset precedes the predicates it
/// contains.
pub fn order_batch<T>(batch: &mut [T], scheduling: Scheduling, spec: impl Fn(&T) -> QuerySpec) {
    match scheduling {
        Scheduling::Fifo => {}
        Scheduling::CrackAware => {
            batch.sort_by_key(|item| {
                let q = spec(item);
                (q.attr, q.lo, std::cmp::Reverse(q.hi))
            });
        }
    }
}

/// Crack-aware ordering with price classes: cheapest work drains first.
/// Items are ranked by `price` (0 = screened probes and cheap
/// exact-hits, 1 = expensive cracks — any `u8` ladder works), then by the
/// crack-aware `(attr, lo, descending hi)` key *within* each class. The
/// sort is stable, so duplicate and containment runs inside a class are
/// exactly what [`order_batch`] would produce; across classes a contained
/// subset can separate from an expensive superset — deliberately: an
/// exact-hit must not wait behind a cold crack that happens to contain
/// it, and whatever shares its class still coalesces. FIFO ignores
/// pricing entirely (the closure is never called).
pub fn order_batch_priced<T>(
    batch: &mut [T],
    scheduling: Scheduling,
    spec: impl Fn(&T) -> QuerySpec,
    price: impl Fn(&QuerySpec) -> u8,
) {
    match scheduling {
        Scheduling::Fifo => {}
        Scheduling::CrackAware => {
            // Cached: pricing reads the engine's published piece stats —
            // pay it once per item, not once per comparison.
            batch.sort_by_cached_key(|item| {
                let q = spec(item);
                (price(&q), q.attr, q.lo, std::cmp::Reverse(q.hi))
            });
        }
    }
}

/// Length of the run of items at the front of `batch` sharing the first
/// item's exact predicate (1 when `batch` is non-empty but unsorted order
/// puts no duplicate first). The dispatcher executes each run once.
pub fn duplicate_run_len<T>(batch: &[T], spec: impl Fn(&T) -> QuerySpec) -> usize {
    let Some(first) = batch.first().map(&spec) else {
        return 0;
    };
    batch
        .iter()
        .take_while(|item| {
            let q = spec(item);
            q.attr == first.attr && q.lo == first.lo && q.hi == first.hi
        })
        .count()
}

/// Length of the run of items at the front of `batch` whose predicates are
/// *contained* in the first item's range (same attribute, `lo >= first.lo`,
/// `hi <= first.hi`); exact duplicates count as contained. After the
/// crack-aware sort the superset of a group comes first, so every member of
/// the run can be answered from the superset's result.
pub fn containment_run_len<T>(batch: &[T], spec: impl Fn(&T) -> QuerySpec) -> usize {
    let Some(first) = batch.first().map(&spec) else {
        return 0;
    };
    batch
        .iter()
        .take_while(|item| {
            let q = spec(item);
            q.attr == first.attr && q.lo >= first.lo && q.hi <= first.hi
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(attr: usize, lo: i64, hi: i64) -> QuerySpec {
        QuerySpec { attr, lo, hi }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut batch = vec![q(1, 5, 9), q(0, 3, 4), q(1, 1, 2)];
        let orig = batch.clone();
        order_batch(&mut batch, Scheduling::Fifo, |x| *x);
        assert_eq!(batch, orig);
    }

    #[test]
    fn crack_aware_groups_by_attr_then_bounds_widest_first() {
        let mut batch = vec![
            q(1, 500, 600),
            q(0, 300, 400),
            q(1, 100, 200),
            q(0, 100, 150),
            q(1, 100, 120),
        ];
        order_batch(&mut batch, Scheduling::CrackAware, |x| *x);
        assert_eq!(
            batch,
            vec![
                q(0, 100, 150),
                q(0, 300, 400),
                // Same lower bound: the wider range leads so the narrower
                // one can be answered from its result.
                q(1, 100, 200),
                q(1, 100, 120),
                q(1, 500, 600),
            ]
        );
    }

    #[test]
    fn crack_aware_sort_is_stable_for_duplicates() {
        // Items carry a payload so we can observe tie order.
        let mut batch = vec![(q(0, 1, 2), 'a'), (q(0, 1, 2), 'b'), (q(0, 1, 2), 'c')];
        order_batch(&mut batch, Scheduling::CrackAware, |x| x.0);
        assert_eq!(
            batch.iter().map(|x| x.1).collect::<Vec<_>>(),
            vec!['a', 'b', 'c']
        );
    }

    #[test]
    fn duplicate_runs_detected_after_sort() {
        let mut batch = vec![q(0, 1, 2), q(1, 1, 2), q(0, 1, 2), q(0, 5, 6)];
        order_batch(&mut batch, Scheduling::CrackAware, |x| *x);
        assert_eq!(duplicate_run_len(&batch, |x| *x), 2); // two copies of (0,1,2)
        assert_eq!(duplicate_run_len(&batch[2..], |x| *x), 1);
        assert_eq!(duplicate_run_len(&batch[3..], |x| *x), 1);
        assert_eq!(duplicate_run_len::<QuerySpec>(&[], |x| *x), 0);
    }

    #[test]
    fn containment_runs_cover_subsets_and_duplicates() {
        let mut batch = vec![
            q(0, 10, 20),
            q(0, 10, 50), // superset of the group
            q(0, 12, 40),
            q(0, 10, 50), // exact duplicate of the superset
            q(0, 60, 70), // disjoint — ends the run
            q(1, 10, 50), // other attribute — never in the run
        ];
        order_batch(&mut batch, Scheduling::CrackAware, |x| *x);
        assert_eq!(batch[0], q(0, 10, 50));
        let run = containment_run_len(&batch, |x| *x);
        assert_eq!(run, 4, "{batch:?}");
        // Everything in the run is answerable from the superset.
        for item in &batch[1..run] {
            assert!(item.lo >= 10 && item.hi <= 50);
        }
        // The next run starts at the disjoint predicate.
        assert_eq!(containment_run_len(&batch[run..], |x| *x), 1);
        assert_eq!(containment_run_len::<QuerySpec>(&[], |x| *x), 0);
    }

    #[test]
    fn priced_order_drains_cheap_work_before_expensive_cracks() {
        // Price by width: anything wider than 100 is an expensive crack.
        let price = |q: &QuerySpec| u8::from(q.hi - q.lo > 100);
        let mut batch = vec![
            q(0, 0, 100_000), // expensive
            q(1, 5, 5),       // exact-hit point probe
            q(0, 50, 60),     // cheap narrow range
            q(1, 0, 100_000), // expensive
            q(0, 50, 50),     // cheap, contained in (0,50,60)
        ];
        order_batch_priced(&mut batch, Scheduling::CrackAware, |x| *x, price);
        assert_eq!(
            batch,
            vec![
                // Cheap class first, crack-aware within it.
                q(0, 50, 60),
                q(0, 50, 50),
                q(1, 5, 5),
                // Expensive cracks drain last.
                q(0, 0, 100_000),
                q(1, 0, 100_000),
            ]
        );
    }

    #[test]
    fn priced_order_keeps_duplicate_runs_adjacent_and_stable() {
        // Duplicates share a spec, hence a price: they stay one run.
        let price = |q: &QuerySpec| u8::from(q.hi - q.lo > 100);
        let mut batch = vec![
            (q(0, 0, 1_000), 'x'),
            (q(0, 7, 7), 'a'),
            (q(0, 7, 7), 'b'),
            (q(0, 7, 7), 'c'),
        ];
        order_batch_priced(&mut batch, Scheduling::CrackAware, |x| x.0, price);
        assert_eq!(duplicate_run_len(&batch, |x| x.0), 3);
        assert_eq!(
            batch.iter().map(|x| x.1).collect::<Vec<_>>(),
            vec!['a', 'b', 'c', 'x'],
            "stable within the class, expensive superset pushed behind"
        );
    }

    #[test]
    fn priced_order_ignores_pricing_under_fifo() {
        let mut batch = vec![q(1, 0, 100_000), q(0, 3, 3)];
        let orig = batch.clone();
        order_batch_priced(
            &mut batch,
            Scheduling::Fifo,
            |x| *x,
            |_| panic!("FIFO must not price"),
        );
        assert_eq!(batch, orig);
    }

    #[test]
    fn containment_run_is_at_least_the_duplicate_run() {
        let mut batch = vec![q(0, 1, 9), q(0, 1, 9), q(0, 2, 5), q(0, 1, 9)];
        order_batch(&mut batch, Scheduling::CrackAware, |x| *x);
        let dup = duplicate_run_len(&batch, |x| *x);
        let cont = containment_run_len(&batch, |x| *x);
        assert_eq!(dup, 3);
        assert_eq!(cont, 4);
        assert!(cont >= dup);
    }
}
