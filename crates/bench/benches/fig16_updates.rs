//! Fig 16 — updates (§5.7): 500 range selects interleaved with 500 inserts
//! under the HFLV and LFHV scenarios, single-threaded adaptive indexing vs
//! holistic indexing with one worker that refines (and merges pending
//! inserts) only during the idle gap after the 10th query.
//!
//! Expected shape: holistic keeps its ~2× advantage; pending inserts are
//! merged by background refinements instead of burdening future queries.

use holix_bench::{secs, time, BenchEnv};
use holix_cracking::{CrackScratch, CrackerColumn};
use holix_storage::select::Predicate;
use holix_storage::types::RowId;
use holix_workloads::data::uniform_column;
use holix_workloads::updates::{update_stream, Op, UpdateScenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

/// Runs the stream; when `idle_refine` is set, a single worker spends the
/// idle gap after the 10th query refining the index (merging pending
/// updates along the way).
fn run_stream(base: &[i64], ops: &[Op], idle_refine: Option<Duration>) -> f64 {
    let col = CrackerColumn::from_base("a", base);
    let mut scratch = CrackScratch::new();
    let mut rng = SmallRng::seed_from_u64(16);
    let mut next_row = base.len() as RowId;
    let mut queries_done = 0usize;
    let mut busy = Duration::ZERO;

    for op in ops {
        match op {
            Op::Query(q) => {
                if queries_done == 10 {
                    // The paper's 20-second idle gap (scaled): only the
                    // holistic variant exploits it. Refinement stops at the
                    // optimal status (average piece ≤ |L1|), like a worker
                    // whose index moved to C_optimal.
                    if let Some(gap) = idle_refine {
                        let l1_values = 32 * 1024 / std::mem::size_of::<i64>();
                        let t0 = std::time::Instant::now();
                        while t0.elapsed() < gap && col.avg_piece_len() > l1_values {
                            col.refine_random(&mut rng, &mut scratch, 8);
                        }
                    }
                }
                let (_, d) = time(|| {
                    std::hint::black_box(col.select(Predicate::range(q.lo, q.hi), &mut scratch));
                });
                busy += d;
                queries_done += 1;
            }
            Op::InsertBatch(vals) => {
                let (_, d) = time(|| {
                    for &v in vals {
                        col.queue_insert(v, next_row);
                        next_row += 1;
                    }
                });
                busy += d;
            }
        }
    }
    secs(busy)
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 16: updates (HFLV / LFHV), adaptive vs holistic",
        "csv: scenario,adaptive,holistic (seconds of query+insert work)",
    );
    let base = uniform_column(env.n, env.domain, 160);
    let gap = Duration::from_millis(env.idle_ms);

    println!("scenario,adaptive,holistic");
    for scenario in [
        UpdateScenario::HighFrequencyLowVolume,
        UpdateScenario::LowFrequencyHighVolume,
    ] {
        let ops = update_stream(scenario, 500, 500, env.domain, 161);
        let adaptive = run_stream(&base, &ops, None);
        let holistic = run_stream(&base, &ops, Some(gap));
        println!("{},{adaptive:.6},{holistic:.6}", scenario.label());
    }
}
