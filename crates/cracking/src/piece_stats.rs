//! Plan-time piece statistics — the cracker index *as a statistic*.
//!
//! Hippo and ByteStore (PAPERS.md) show that cheap, maintained summaries —
//! partial-index page summaries, per-column layout costs — are enough to
//! pick the fast access path online. The cracker index already *is* that
//! statistic: piece boundaries and sizes describe exactly how much work a
//! predicate will cause. This module packages a column's piece table into
//! an immutable [`PieceStats`] snapshot that `holix-planner` prices
//! queries against **without any lock**: the column publishes a fresh
//! summary through an [`crate::epoch::EpochCell`] whenever its structure
//! version has drifted (amortised on the query path, forced once per
//! daemon cycle), and plan-time `estimate()` merely clones the `Arc` out.
//!
//! The boundary table is capped at [`MAX_STATS_BOUNDS`] entries by stride
//! sampling: positions are kept, so a "piece" seen through a sampled
//! summary is the union of up to `stride` live pieces — every size the
//! planner reads is a conservative **over**-estimate of the work, never an
//! under-estimate.

use holix_storage::types::CrackValue;

/// Boundary entries kept per published summary. Beyond this, the boundary
/// list is stride-sampled (sizes become conservative over-estimates).
pub const MAX_STATS_BOUNDS: usize = 1 << 12;

/// One published snapshot piece as the planner sees it: its upper boundary
/// key (`None` = the column-max edge), its tuple count, and whether its
/// segment is still plain (encoded pieces pay a bit-unpack per value when a
/// bound forces element-wise edge filtering — the decode-cost term).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapPieceStat<V> {
    /// Upper boundary key (`None` = column-max edge piece).
    pub hi_key: Option<V>,
    /// Tuples in the piece.
    pub len: usize,
    /// `true` when the backing segment is an uncompressed `Vec<V>`.
    pub plain: bool,
}

/// One shard's published plan-time summary. All fields describe the column
/// at publish time; staleness is bounded by the publish triggers (see
/// [`crate::CrackerColumn::maybe_publish_stats`]).
#[derive(Debug, Clone)]
pub struct PieceStats<V> {
    /// Merged tuples in the shard (excludes pending inserts).
    pub len: usize,
    /// Live piece count at publish time (pre-sampling — the real `p`).
    pub piece_count: usize,
    /// Sorted `(boundary key, position)` pairs, possibly stride-sampled.
    pub bounds: Vec<(V, usize)>,
    /// Pending-merge backlog (queued Ripple inserts + deletes).
    pub pending: usize,
    /// Published snapshot's piece table (`None` when no snapshot is
    /// published): the snapshot-staleness and decode-cost statistic.
    pub snap_pieces: Option<Vec<SnapPieceStat<V>>>,
}

impl<V: CrackValue> PieceStats<V> {
    /// The edge work a bound `v` causes on the locked path: `(piece_len,
    /// exact)` where `piece_len` is the size of the (possibly sampled)
    /// piece containing `v` — the values a crack would partition — and
    /// `exact` is `true` when `v` already is a boundary (zero crack work,
    /// the paper's `f_Ih` hit). Sentinels are always exact.
    pub fn edge(&self, v: V) -> (usize, bool) {
        if v == V::MIN_VALUE || v == V::MAX_VALUE {
            return (0, true);
        }
        let i = self.bounds.partition_point(|&(k, _)| k <= v);
        if i > 0 && self.bounds[i - 1].0 == v {
            return (0, true);
        }
        let start = if i == 0 { 0 } else { self.bounds[i - 1].1 };
        let end = if i < self.bounds.len() {
            self.bounds[i].1
        } else {
            self.len
        };
        (end.saturating_sub(start), false)
    }

    /// Conservative estimate of rows in `[lo, hi)`: the positional span
    /// between the pieces bracketing the bounds (includes the full edge
    /// pieces, so it over-estimates by at most the two edge sizes).
    pub fn range_rows(&self, lo: V, hi: V) -> u64 {
        // Degenerate predicates (`lo >= hi`, sentinel-valued or not) are
        // empty on every execution path, so the estimate must be exactly
        // zero — `[MIN, MIN)` used to fall through and report the first
        // piece's size.
        if lo >= hi {
            return 0;
        }
        let start = if lo == V::MIN_VALUE {
            0
        } else {
            let i = self.bounds.partition_point(|&(k, _)| k <= lo);
            if i == 0 {
                0
            } else {
                self.bounds[i - 1].1
            }
        };
        let end = if hi == V::MAX_VALUE {
            self.len
        } else {
            let j = self.bounds.partition_point(|&(k, _)| k < hi);
            if j < self.bounds.len() {
                self.bounds[j].1
            } else {
                self.len
            }
        };
        end.saturating_sub(start) as u64
    }

    /// Equi-depth cardinality estimate of rows in `[lo, hi)`: like
    /// [`PieceStats::range_rows`] but interpolating *within* the two edge
    /// pieces under a uniform-within-piece assumption — the boundary
    /// table is a free equi-depth sketch, piece sizes are its depths.
    /// Unlike `range_rows` this is a best-effort selectivity estimate,
    /// not a conservative bound; the planner uses it for driver-term
    /// election and admission pricing, never for safety decisions. Edge
    /// pieces whose outer key is unknown (the column-edge pieces) fall
    /// back to the conservative full-piece span.
    pub fn estimated_rows(&self, lo: V, hi: V) -> u64 {
        if lo >= hi {
            return 0;
        }
        let est = self.interpolated_pos(hi, false) - self.interpolated_pos(lo, true);
        est.max(0.0).round() as u64
    }

    /// The interpolated position of `v` in cracked-position space:
    /// boundary keys map to their exact position, interior values to a
    /// linear interpolation across their piece's key range. `low_side`
    /// picks the conservative fallback edge (piece start for a lower
    /// bound, piece end for an upper bound) when the piece has no known
    /// outer key to interpolate against.
    fn interpolated_pos(&self, v: V, low_side: bool) -> f64 {
        if v == V::MIN_VALUE {
            return 0.0;
        }
        if v == V::MAX_VALUE {
            return self.len as f64;
        }
        let i = self.bounds.partition_point(|&(k, _)| k <= v);
        if i > 0 && self.bounds[i - 1].0 == v {
            return self.bounds[i - 1].1 as f64;
        }
        let (a_key, start) = if i == 0 {
            (None, 0)
        } else {
            (Some(self.bounds[i - 1].0), self.bounds[i - 1].1)
        };
        let (b_key, end) = if i < self.bounds.len() {
            (Some(self.bounds[i].0), self.bounds[i].1)
        } else {
            (None, self.len)
        };
        match (a_key, b_key) {
            (Some(a), Some(b)) if b > a => {
                let num = (v.as_i64() as i128 - a.as_i64() as i128) as f64;
                let den = (b.as_i64() as i128 - a.as_i64() as i128) as f64;
                start as f64 + (end - start) as f64 * (num / den).clamp(0.0, 1.0)
            }
            // Column-edge piece with an unknown outer key: no basis to
            // interpolate — degrade to the `range_rows` full-piece span.
            _ if low_side => start as f64,
            _ => end as f64,
        }
    }

    /// The edge-filter work a snapshot scan of `[lo, hi)` would pay: the
    /// summed sizes of the snapshot pieces containing the two bounds
    /// (interior pieces answer O(1) from their aggregates). `None` when no
    /// snapshot is published — the first reader would pay the O(N) build.
    pub fn snapshot_edge_filter(&self, lo: V, hi: V) -> Option<usize> {
        let pieces = self.snap_pieces.as_ref()?;
        let mut cost = 0usize;
        for v in [lo, hi] {
            if let Some(p) = Self::edge_piece(pieces, v) {
                cost += p.len;
            }
        }
        Some(cost)
    }

    /// The edge-filter rows of a `[lo, hi)` snapshot scan that additionally
    /// pay a per-value bit-unpack because their piece is *encoded* (FOR /
    /// delta / RLE). A subset of [`PieceStats::snapshot_edge_filter`]:
    /// plain edge pieces filter at memcmp speed and cost nothing here.
    /// `None` when no snapshot is published.
    pub fn snapshot_edge_decode(&self, lo: V, hi: V) -> Option<u64> {
        let pieces = self.snap_pieces.as_ref()?;
        let mut cost = 0u64;
        for v in [lo, hi] {
            if let Some(p) = Self::edge_piece(pieces, v) {
                if !p.plain {
                    cost += p.len as u64;
                }
            }
        }
        Some(cost)
    }

    /// The snapshot piece a non-sentinel bound `v` falls *inside* (element-
    /// wise edge filtering) — `None` when `v` is a sentinel, an exact
    /// snapshot boundary, or past the last piece.
    fn edge_piece(pieces: &[SnapPieceStat<V>], v: V) -> Option<&SnapPieceStat<V>> {
        if v == V::MIN_VALUE || v == V::MAX_VALUE {
            return None; // sentinel: the edge piece is fully covered
        }
        let i = pieces.partition_point(|p| p.hi_key.is_some_and(|k| k <= v));
        // Exact snapshot boundary: no filtering on this edge.
        if i > 0 && pieces[i - 1].hi_key == Some(v) {
            return None;
        }
        pieces.get(i)
    }

    /// Snapshot staleness: live pieces per snapshot piece (1.0 = fresh,
    /// large = the snapshot piece table lags the live index). `None` when
    /// no snapshot is published.
    pub fn snapshot_staleness(&self) -> Option<f64> {
        let pieces = self.snap_pieces.as_ref()?;
        Some(self.piece_count as f64 / pieces.len().max(1) as f64)
    }
}

/// Builds the published summary from a raw boundary table, stride-sampling
/// past the cap (crate-internal: `CrackerColumn::publish_stats` calls it
/// under the index read lock).
pub(crate) fn build_stats<V: CrackValue>(
    len: usize,
    bounds: Vec<(V, usize)>,
    pending: usize,
    snap_pieces: Option<Vec<SnapPieceStat<V>>>,
) -> PieceStats<V> {
    let piece_count = bounds.len() + 1;
    let bounds = if bounds.len() > MAX_STATS_BOUNDS {
        let stride = bounds.len().div_ceil(MAX_STATS_BOUNDS);
        bounds.into_iter().step_by(stride).collect()
    } else {
        bounds
    };
    PieceStats {
        len,
        piece_count,
        bounds,
        pending,
        snap_pieces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(hi_key: Option<i64>, len: usize, plain: bool) -> SnapPieceStat<i64> {
        SnapPieceStat { hi_key, len, plain }
    }

    fn stats(
        len: usize,
        bounds: Vec<(i64, usize)>,
        snap: Option<Vec<SnapPieceStat<i64>>>,
    ) -> PieceStats<i64> {
        build_stats(len, bounds, 0, snap)
    }

    #[test]
    fn edge_sizes_and_exact_hits() {
        // Pieces: [min,10)@[0,25), [10,20)@[25,60), [20,max)@[60,100).
        let s = stats(100, vec![(10, 25), (20, 60)], None);
        assert_eq!(s.piece_count, 3);
        assert_eq!(s.edge(5), (25, false));
        assert_eq!(s.edge(10), (0, true));
        assert_eq!(s.edge(15), (35, false));
        assert_eq!(s.edge(20), (0, true));
        assert_eq!(s.edge(25), (40, false));
        assert_eq!(s.edge(i64::MIN), (0, true));
        assert_eq!(s.edge(i64::MAX), (0, true));
    }

    #[test]
    fn range_rows_spans_bracketing_pieces() {
        let s = stats(100, vec![(10, 25), (20, 60)], None);
        assert_eq!(s.range_rows(10, 20), 35); // exact piece
        assert_eq!(s.range_rows(5, 15), 60); // both edges included
        assert_eq!(s.range_rows(i64::MIN, i64::MAX), 100);
        assert_eq!(s.range_rows(12, 12), 0);
        assert_eq!(s.range_rows(25, i64::MAX), 40);
    }

    #[test]
    fn estimated_rows_interpolates_within_edge_pieces() {
        // Pieces: [min,10)@[0,25), [10,20)@[25,60), [20,max)@[60,100).
        let s = stats(100, vec![(10, 25), (20, 60)], None);
        // Exact boundaries reproduce the positional span.
        assert_eq!(s.estimated_rows(10, 20), 35);
        assert_eq!(s.estimated_rows(i64::MIN, i64::MAX), 100);
        // Interior bound: half the keys of [10,20) → half its depth.
        let half = s.estimated_rows(10, 15);
        assert!((17..=18).contains(&half), "est {half}");
        assert!(half < s.range_rows(10, 15), "estimate must beat the span");
        // Unknown-key column-edge piece: conservative full-span fallback.
        let edged = s.estimated_rows(5, 15);
        assert!((42..=43).contains(&edged), "est {edged}");
        // Degenerate predicates estimate zero.
        assert_eq!(s.estimated_rows(15, 5), 0);
        assert_eq!(s.estimated_rows(i64::MIN, i64::MIN), 0);
    }

    #[test]
    fn degenerate_ranges_estimate_zero_rows() {
        // Regression: the old guard excepted sentinel-valued bounds, so
        // `[MIN, MIN)` — an empty predicate on every execution path —
        // reported the first piece's size.
        let s = stats(100, vec![(10, 25), (20, 60)], None);
        assert_eq!(s.range_rows(i64::MIN, i64::MIN), 0);
        assert_eq!(s.range_rows(i64::MAX, i64::MAX), 0);
        assert_eq!(s.range_rows(15, 5), 0);
        assert_eq!(s.range_rows(i64::MAX, i64::MIN), 0);
    }

    #[test]
    fn snapshot_edge_filter_counts_only_edge_pieces() {
        let snap = vec![
            sp(Some(10), 30, true),
            sp(Some(20), 40, true),
            sp(None, 30, true),
        ];
        let s = stats(100, vec![(10, 30), (20, 70)], Some(snap));
        // Exact snapshot boundaries: no filtering.
        assert_eq!(s.snapshot_edge_filter(10, 20), Some(0));
        // Interior bounds: both edge pieces filtered.
        assert_eq!(s.snapshot_edge_filter(5, 15), Some(70));
        // Sentinels cover their edge.
        assert_eq!(s.snapshot_edge_filter(i64::MIN, 15), Some(40));
        assert_eq!(stats(100, vec![], None).snapshot_edge_filter(0, 1), None);
    }

    #[test]
    fn snapshot_edge_decode_counts_only_encoded_edge_pieces() {
        // Middle piece encoded, neighbours plain.
        let snap = vec![
            sp(Some(10), 30, true),
            sp(Some(20), 40, false),
            sp(None, 30, true),
        ];
        let s = stats(100, vec![(10, 30), (20, 70)], Some(snap));
        // Both bounds filter, but only the encoded middle piece decodes.
        assert_eq!(s.snapshot_edge_filter(5, 15), Some(70));
        assert_eq!(s.snapshot_edge_decode(5, 15), Some(40));
        // Exact snapshot boundaries never decode.
        assert_eq!(s.snapshot_edge_decode(10, 20), Some(0));
        // Sentinel bound covers its edge: only the hi edge decodes.
        assert_eq!(s.snapshot_edge_decode(i64::MIN, 15), Some(40));
        assert_eq!(s.snapshot_edge_decode(5, 25), Some(0));
        assert_eq!(stats(100, vec![], None).snapshot_edge_decode(0, 1), None);
    }

    #[test]
    fn sampling_keeps_sizes_conservative() {
        let n = 3 * MAX_STATS_BOUNDS;
        let bounds: Vec<(i64, usize)> = (1..=n).map(|i| (i as i64, i)).collect();
        let s = stats(n + 1, bounds, None);
        assert_eq!(s.piece_count, n + 1);
        assert!(s.bounds.len() <= MAX_STATS_BOUNDS);
        // Key 3 (live piece size 1) is dropped by the stride-3 sample: the
        // sampled "piece" containing it spans the whole stride — a
        // conservative over-estimate, never an under-estimate.
        assert!(!s.bounds.iter().any(|&(k, _)| k == 3), "stride kept key 3");
        let (size, exact) = s.edge(3);
        assert!(!exact);
        assert!(size >= 1, "sampled sizes must never under-estimate");
        assert!(s.snapshot_staleness().is_none());
    }
}
