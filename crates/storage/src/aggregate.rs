//! Scalar and grouped aggregation operators.

use crate::hash::IntMap;
use crate::types::{CrackValue, RowId};

/// Running accumulator for one aggregate group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accumulator {
    /// Number of contributing rows.
    pub count: u64,
    /// Sum of the aggregated expression (widened).
    pub sum: i128,
}

impl Accumulator {
    /// Folds one value in.
    #[inline]
    pub fn add(&mut self, v: i64) {
        self.count += 1;
        self.sum += v as i128;
    }

    /// Average as a rational pair `(sum, count)`; callers format as needed.
    pub fn avg_num_den(&self) -> (i128, u64) {
        (self.sum, self.count)
    }
}

/// Sums `values` over the rows in `positions`.
pub fn sum_at<V: CrackValue>(values: &[V], positions: &[RowId]) -> i128 {
    positions
        .iter()
        .map(|&p| values[p as usize].as_i64() as i128)
        .sum()
}

/// Grouped aggregation with a *small dense* grouping key (e.g. the 6 distinct
/// `(returnflag, linestatus)` pairs of TPC-H Q1): key must be `< groups`.
///
/// Dense arrays beat hash tables when the group domain is tiny and known.
pub fn group_aggregate_dense(
    keys: &[u32],
    aggregate_input: &[i64],
    groups: usize,
) -> Vec<Accumulator> {
    debug_assert_eq!(keys.len(), aggregate_input.len());
    let mut accs = vec![Accumulator::default(); groups];
    for (&k, &v) in keys.iter().zip(aggregate_input) {
        accs[k as usize].add(v);
    }
    accs
}

/// Grouped aggregation over an arbitrary integer key domain via hash table.
pub fn group_aggregate_hash(keys: &[i64], aggregate_input: &[i64]) -> IntMap<i64, Accumulator> {
    debug_assert_eq!(keys.len(), aggregate_input.len());
    let mut accs: IntMap<i64, Accumulator> = IntMap::default();
    for (&k, &v) in keys.iter().zip(aggregate_input) {
        accs.entry(k).or_default().add(v);
    }
    accs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_tracks_count_and_sum() {
        let mut a = Accumulator::default();
        a.add(5);
        a.add(-2);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 3);
        assert_eq!(a.avg_num_den(), (3, 2));
    }

    #[test]
    fn sum_at_gathers() {
        let vals = [10i64, 20, 30];
        assert_eq!(sum_at(&vals, &[0, 2]), 40);
        assert_eq!(sum_at(&vals, &[]), 0);
    }

    #[test]
    fn dense_grouping() {
        let keys = [0u32, 1, 0, 2, 1];
        let input = [1i64, 10, 2, 100, 20];
        let accs = group_aggregate_dense(&keys, &input, 3);
        assert_eq!(accs[0], Accumulator { count: 2, sum: 3 });
        assert_eq!(accs[1], Accumulator { count: 2, sum: 30 });
        assert_eq!(accs[2], Accumulator { count: 1, sum: 100 });
    }

    #[test]
    fn hash_grouping_matches_dense_on_shared_domain() {
        let keys_small = [0u32, 1, 0, 2, 1, 2, 2];
        let keys_big: Vec<i64> = keys_small.iter().map(|&k| k as i64 * 1_000_003).collect();
        let input = [1i64, 2, 3, 4, 5, 6, 7];
        let dense = group_aggregate_dense(&keys_small, &input, 3);
        let hashed = group_aggregate_hash(&keys_big, &input);
        for (k, acc) in [(0, dense[0]), (1, dense[1]), (2, dense[2])] {
            assert_eq!(hashed[&(k * 1_000_003)], acc);
        }
    }
}
