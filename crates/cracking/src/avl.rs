//! Arena-based AVL tree — the cracker index structure named by the paper.
//!
//! "The partitioning information for each cracker column is maintained in an
//! AVL-tree, called cracker index" (§3.2). We implement the tree from
//! scratch: nodes live in a `Vec` arena addressed by `u32` handles (half the
//! pointer width, cache-friendlier, no per-node allocation), with a free list
//! for reuse after removals.
//!
//! Besides exact lookup the cracker index needs *floor*/*ceiling*-style
//! searches to find the piece a pivot falls into; these are provided as
//! [`Avl::floor`], [`Avl::ceil`], [`Avl::pred_strict`] and
//! [`Avl::succ_strict`].

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    /// `None` only for slots parked on the free list; live nodes always hold
    /// a value. The `Option` exists so `remove` can move the value out
    /// without `unsafe` and without risking a double drop when the arena
    /// slot is reused or the tree is dropped.
    val: Option<V>,
    left: u32,
    right: u32,
    height: u8,
}

/// An ordered map implemented as an arena AVL tree.
#[derive(Debug, Clone)]
pub struct Avl<K, V> {
    nodes: Vec<Node<K, V>>,
    root: u32,
    free: Vec<u32>,
    len: usize,
}

impl<K: Ord + Copy, V> Default for Avl<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy, V> Avl<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Avl {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, h: u32) -> &Node<K, V> {
        &self.nodes[h as usize]
    }

    fn node_mut(&mut self, h: u32) -> &mut Node<K, V> {
        &mut self.nodes[h as usize]
    }

    fn height(&self, h: u32) -> u8 {
        if h == NIL {
            0
        } else {
            self.node(h).height
        }
    }

    fn alloc(&mut self, key: K, val: V) -> u32 {
        let node = Node {
            key,
            val: Some(val),
            left: NIL,
            right: NIL,
            height: 1,
        };
        if let Some(h) = self.free.pop() {
            self.nodes[h as usize] = node;
            h
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn update_height(&mut self, h: u32) {
        let hl = self.height(self.node(h).left);
        let hr = self.height(self.node(h).right);
        self.node_mut(h).height = 1 + hl.max(hr);
    }

    fn balance_factor(&self, h: u32) -> i8 {
        let n = self.node(h);
        self.height(n.left) as i8 - self.height(n.right) as i8
    }

    fn rotate_right(&mut self, h: u32) -> u32 {
        let l = self.node(h).left;
        let lr = self.node(l).right;
        self.node_mut(h).left = lr;
        self.node_mut(l).right = h;
        self.update_height(h);
        self.update_height(l);
        l
    }

    fn rotate_left(&mut self, h: u32) -> u32 {
        let r = self.node(h).right;
        let rl = self.node(r).left;
        self.node_mut(h).right = rl;
        self.node_mut(r).left = h;
        self.update_height(h);
        self.update_height(r);
        r
    }

    fn rebalance(&mut self, h: u32) -> u32 {
        self.update_height(h);
        let bf = self.balance_factor(h);
        if bf > 1 {
            if self.balance_factor(self.node(h).left) < 0 {
                let new_left = self.rotate_left(self.node(h).left);
                self.node_mut(h).left = new_left;
            }
            self.rotate_right(h)
        } else if bf < -1 {
            if self.balance_factor(self.node(h).right) > 0 {
                let new_right = self.rotate_right(self.node(h).right);
                self.node_mut(h).right = new_right;
            }
            self.rotate_left(h)
        } else {
            h
        }
    }

    /// Inserts `key → val`; returns the previous value when the key existed.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let root = self.root;
        let (new_root, old) = self.insert_at(root, key, val);
        self.root = new_root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(&mut self, h: u32, key: K, val: V) -> (u32, Option<V>) {
        if h == NIL {
            return (self.alloc(key, val), None);
        }
        let old;
        match key.cmp(&self.node(h).key) {
            std::cmp::Ordering::Less => {
                let (nl, o) = self.insert_at(self.node(h).left, key, val);
                self.node_mut(h).left = nl;
                old = o;
            }
            std::cmp::Ordering::Greater => {
                let (nr, o) = self.insert_at(self.node(h).right, key, val);
                self.node_mut(h).right = nr;
                old = o;
            }
            std::cmp::Ordering::Equal => {
                let prev = self.node_mut(h).val.replace(val);
                return (h, prev);
            }
        }
        (self.rebalance(h), old)
    }

    /// Exact lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut h = self.root;
        while h != NIL {
            let n = self.node(h);
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => h = n.left,
                std::cmp::Ordering::Greater => h = n.right,
                std::cmp::Ordering::Equal => return n.val.as_ref(),
            }
        }
        None
    }

    /// Exact lookup, mutable.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut h = self.root;
        while h != NIL {
            let n = self.node(h);
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => h = n.left,
                std::cmp::Ordering::Greater => h = n.right,
                std::cmp::Ordering::Equal => return self.node_mut(h).val.as_mut(),
            }
        }
        None
    }

    /// Largest entry with key `<= bound`.
    pub fn floor(&self, bound: &K) -> Option<(K, &V)> {
        let mut h = self.root;
        let mut best = NIL;
        while h != NIL {
            let n = self.node(h);
            if n.key <= *bound {
                best = h;
                h = n.right;
            } else {
                h = n.left;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (n.key, n.val.as_ref().expect("live node"))
        })
    }

    /// Largest entry with key `< bound`.
    pub fn pred_strict(&self, bound: &K) -> Option<(K, &V)> {
        let mut h = self.root;
        let mut best = NIL;
        while h != NIL {
            let n = self.node(h);
            if n.key < *bound {
                best = h;
                h = n.right;
            } else {
                h = n.left;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (n.key, n.val.as_ref().expect("live node"))
        })
    }

    /// Smallest entry with key `>= bound`.
    pub fn ceil(&self, bound: &K) -> Option<(K, &V)> {
        let mut h = self.root;
        let mut best = NIL;
        while h != NIL {
            let n = self.node(h);
            if n.key >= *bound {
                best = h;
                h = n.left;
            } else {
                h = n.right;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (n.key, n.val.as_ref().expect("live node"))
        })
    }

    /// Smallest entry with key `> bound`.
    pub fn succ_strict(&self, bound: &K) -> Option<(K, &V)> {
        let mut h = self.root;
        let mut best = NIL;
        while h != NIL {
            let n = self.node(h);
            if n.key > *bound {
                best = h;
                h = n.left;
            } else {
                h = n.right;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (n.key, n.val.as_ref().expect("live node"))
        })
    }

    /// Removes a key; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let root = self.root;
        let (new_root, removed) = self.remove_at(root, key);
        self.root = new_root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_at(&mut self, h: u32, key: &K) -> (u32, Option<V>) {
        if h == NIL {
            return (NIL, None);
        }
        let removed;
        match key.cmp(&self.node(h).key) {
            std::cmp::Ordering::Less => {
                let (nl, r) = self.remove_at(self.node(h).left, key);
                self.node_mut(h).left = nl;
                removed = r;
            }
            std::cmp::Ordering::Greater => {
                let (nr, r) = self.remove_at(self.node(h).right, key);
                self.node_mut(h).right = nr;
                removed = r;
            }
            std::cmp::Ordering::Equal => {
                let (left, right) = {
                    let n = self.node(h);
                    (n.left, n.right)
                };
                if left == NIL || right == NIL {
                    // Replace by the single child (or NIL), move the value
                    // out, and park the slot on the free list.
                    let child = if left == NIL { right } else { left };
                    let val = self.node_mut(h).val.take();
                    self.free.push(h);
                    return (child, val);
                }
                // Two children: replace key/val with in-order successor, then
                // remove the successor from the right subtree.
                let mut s = right;
                while self.node(s).left != NIL {
                    s = self.node(s).left;
                }
                let succ_key = self.node(s).key;
                // Swap values so the successor slot carries the removed value.
                let h_idx = h as usize;
                let s_idx = s as usize;
                if h_idx != s_idx {
                    let (a, b) = if h_idx < s_idx {
                        let (lo, hi) = self.nodes.split_at_mut(s_idx);
                        (&mut lo[h_idx], &mut hi[0])
                    } else {
                        let (lo, hi) = self.nodes.split_at_mut(h_idx);
                        (&mut hi[0], &mut lo[s_idx])
                    };
                    std::mem::swap(&mut a.val, &mut b.val);
                    a.key = succ_key;
                }
                let (nr, r) = self.remove_at(right, &succ_key);
                self.node_mut(h).right = nr;
                removed = r;
            }
        }
        (self.rebalance(h), removed)
    }

    /// In-order visit of `(key, &mut value)` pairs.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(K, &mut V)) {
        // Iterative in-order traversal with an explicit stack.
        let mut stack = Vec::with_capacity(self.height(self.root) as usize + 1);
        let mut h = self.root;
        loop {
            while h != NIL {
                stack.push(h);
                h = self.node(h).left;
            }
            let Some(top) = stack.pop() else { break };
            let key = self.node(top).key;
            f(key, self.node_mut(top).val.as_mut().expect("live node"));
            h = self.node(top).right;
        }
    }

    /// In-order iterator over `(key, &value)`.
    pub fn iter(&self) -> AvlIter<'_, K, V> {
        let mut stack = Vec::with_capacity(self.height(self.root) as usize + 1);
        let mut h = self.root;
        while h != NIL {
            stack.push(h);
            h = self.node(h).left;
        }
        AvlIter { tree: self, stack }
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<K> {
        let mut h = self.root;
        if h == NIL {
            return None;
        }
        while self.node(h).left != NIL {
            h = self.node(h).left;
        }
        Some(self.node(h).key)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<K> {
        let mut h = self.root;
        if h == NIL {
            return None;
        }
        while self.node(h).right != NIL {
            h = self.node(h).right;
        }
        Some(self.node(h).key)
    }

    /// Tree height (test/debug aid for balance checks).
    pub fn tree_height(&self) -> usize {
        self.height(self.root) as usize
    }

    #[cfg(test)]
    fn assert_avl_invariants(&self) {
        fn walk<K: Ord + Copy, V>(t: &Avl<K, V>, h: u32, lo: Option<K>, hi: Option<K>) -> u8 {
            if h == NIL {
                return 0;
            }
            let n = t.node(h);
            if let Some(lo) = lo {
                assert!(n.key > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(n.key < hi, "BST order violated");
            }
            let hl = walk(t, n.left, lo, Some(n.key));
            let hr = walk(t, n.right, Some(n.key), hi);
            assert!(
                (hl as i8 - hr as i8).abs() <= 1,
                "AVL balance violated at key"
            );
            assert_eq!(n.height, 1 + hl.max(hr), "cached height stale");
            1 + hl.max(hr)
        }
        walk(self, self.root, None, None);
    }
}

/// In-order iterator.
pub struct AvlIter<'a, K, V> {
    tree: &'a Avl<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord + Copy, V> Iterator for AvlIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let top = self.stack.pop()?;
        let n = &self.tree.nodes[top as usize];
        let mut h = n.right;
        while h != NIL {
            self.stack.push(h);
            h = self.tree.nodes[h as usize].left;
        }
        Some((n.key, n.val.as_ref().expect("live node")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// The AVL as an actual cracker index: apply a random crack sequence to
    /// a column and verify the cracker-index invariants after every crack —
    /// bound positions are monotone in key order, every bound partitions the
    /// column (`< key` strictly left of the bound, `>= key` at/right of it),
    /// and cracking never loses or invents values.
    #[test]
    fn cracker_index_invariants_after_random_cracks() {
        use crate::crack::crack_in_two;
        use rand::prelude::*;

        let mut rng = StdRng::seed_from_u64(0xC4AC);
        let base: Vec<i64> = (0..4096).map(|_| rng.random_range(0..10_000)).collect();
        let mut vals = base.clone();
        let mut rows: Vec<u32> = (0..base.len() as u32).collect();
        let mut index: Avl<i64, usize> = Avl::new();

        for _ in 0..200 {
            let pivot = rng.random_range(0..10_000);
            if index.get(&pivot).is_some() {
                continue;
            }
            // The piece holding `pivot` is delimited by the neighbouring
            // bounds (floor gives its start, strict successor its end).
            let start = index.floor(&pivot).map_or(0, |(_, &p)| p);
            let end = index.succ_strict(&pivot).map_or(vals.len(), |(_, &p)| p);
            let split = crack_in_two(&mut vals[start..end], &mut rows[start..end], pivot);
            index.insert(pivot, start + split);

            // Invariant 1: positions are non-decreasing in key order.
            let bounds: Vec<(i64, usize)> = index.iter().map(|(k, &p)| (k, p)).collect();
            for w in bounds.windows(2) {
                assert!(w[0].0 < w[1].0, "iter must be key-ordered");
                assert!(
                    w[0].1 <= w[1].1,
                    "positions regressed: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
            // Invariant 2: every bound partitions the whole column.
            for &(k, p) in &bounds {
                assert!(
                    vals[..p].iter().all(|&v| v < k),
                    "values >= {k} left of {p}"
                );
                assert!(
                    vals[p..].iter().all(|&v| v >= k),
                    "values < {k} right of {p}"
                );
            }
            // Invariant 3: rows stay aligned with their original values.
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(vals[i], base[r as usize], "row id misaligned at {i}");
            }
        }
        assert!(
            index.len() >= 100,
            "crack sequence barely exercised the index"
        );

        // Multiset preserved end-to-end.
        let mut sorted_in = base;
        let mut sorted_out = vals;
        sorted_in.sort_unstable();
        sorted_out.sort_unstable();
        assert_eq!(sorted_in, sorted_out);
    }

    #[test]
    fn insert_get_basics() {
        let mut t = Avl::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(3, "b"), None);
        assert_eq!(t.insert(8, "c"), None);
        assert_eq!(t.insert(5, "a2"), Some("a"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&5), Some(&"a2"));
        assert_eq!(t.get(&4), None);
        t.assert_avl_invariants();
    }

    #[test]
    fn floor_ceil_pred_succ() {
        let mut t = Avl::new();
        for k in [10, 20, 30] {
            t.insert(k, k * 10);
        }
        assert_eq!(t.floor(&20).map(|(k, _)| k), Some(20));
        assert_eq!(t.floor(&19).map(|(k, _)| k), Some(10));
        assert_eq!(t.floor(&9), None);
        assert_eq!(t.pred_strict(&20).map(|(k, _)| k), Some(10));
        assert_eq!(t.pred_strict(&10), None);
        assert_eq!(t.ceil(&20).map(|(k, _)| k), Some(20));
        assert_eq!(t.ceil(&21).map(|(k, _)| k), Some(30));
        assert_eq!(t.ceil(&31), None);
        assert_eq!(t.succ_strict(&20).map(|(k, _)| k), Some(30));
        assert_eq!(t.succ_strict(&30), None);
        assert_eq!(t.min_key(), Some(10));
        assert_eq!(t.max_key(), Some(30));
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut t = Avl::new();
        for k in 0..1024 {
            t.insert(k, k);
        }
        t.assert_avl_invariants();
        // height of AVL with n nodes <= 1.44 log2(n) + ~1
        assert!(t.tree_height() <= 15, "height {}", t.tree_height());
        for k in 0..1024 {
            assert_eq!(t.get(&k), Some(&k));
        }
    }

    #[test]
    fn removal_all_shapes() {
        let mut t = Avl::new();
        for k in [50, 30, 70, 20, 40, 60, 80, 45] {
            t.insert(k, k);
        }
        assert_eq!(t.remove(&20), Some(20)); // leaf
        assert_eq!(t.remove(&40), Some(40)); // one child (45)
        assert_eq!(t.remove(&50), Some(50)); // two children (root)
        assert_eq!(t.remove(&99), None); // missing
        t.assert_avl_invariants();
        let keys: Vec<i32> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![30, 45, 60, 70, 80]);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut t = Avl::new();
        for k in 0..100 {
            t.insert(k, k);
        }
        let arena_size = t.nodes.len();
        for k in 0..50 {
            t.remove(&k);
        }
        for k in 100..150 {
            t.insert(k, k);
        }
        assert_eq!(t.nodes.len(), arena_size, "free list not reused");
        t.assert_avl_invariants();
    }

    #[test]
    fn iteration_is_sorted() {
        let mut t = Avl::new();
        for k in [9, 1, 8, 2, 7, 3] {
            t.insert(k, ());
        }
        let keys: Vec<i32> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn for_each_mut_updates_all() {
        let mut t = Avl::new();
        for k in 0..20 {
            t.insert(k, k);
        }
        t.for_each_mut(|_, v| *v += 100);
        for k in 0..20 {
            assert_eq!(t.get(&k), Some(&(k + 100)));
        }
    }

    proptest! {
        #[test]
        fn prop_behaves_like_btreemap(ops in proptest::collection::vec(
            (0u8..4, -100i64..100, 0i64..1000), 0..400))
        {
            let mut avl: Avl<i64, i64> = Avl::new();
            let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
            for (op, k, v) in ops {
                match op {
                    0 => prop_assert_eq!(avl.insert(k, v), oracle.insert(k, v)),
                    1 => prop_assert_eq!(avl.remove(&k), oracle.remove(&k)),
                    2 => prop_assert_eq!(avl.get(&k), oracle.get(&k)),
                    _ => {
                        let f = avl.floor(&k).map(|(fk, fv)| (fk, *fv));
                        let of = oracle.range(..=k).next_back().map(|(a, b)| (*a, *b));
                        prop_assert_eq!(f, of);
                        let c = avl.ceil(&k).map(|(ck, cv)| (ck, *cv));
                        let oc = oracle.range(k..).next().map(|(a, b)| (*a, *b));
                        prop_assert_eq!(c, oc);
                        let p = avl.pred_strict(&k).map(|(pk, pv)| (pk, *pv));
                        let op_ = oracle.range(..k).next_back().map(|(a, b)| (*a, *b));
                        prop_assert_eq!(p, op_);
                        let s = avl.succ_strict(&k).map(|(sk, sv)| (sk, *sv));
                        let os = oracle.range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded)).next().map(|(a, b)| (*a, *b));
                        prop_assert_eq!(s, os);
                    }
                }
                prop_assert_eq!(avl.len(), oracle.len());
            }
            let items: Vec<(i64, i64)> = avl.iter().map(|(k, v)| (k, *v)).collect();
            let oracle_items: Vec<(i64, i64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(items, oracle_items);
        }
    }
}
