//! # holix-telemetry — lock-free metrics + per-query tracing
//!
//! The paper's holistic daemon is driven entirely by continuous
//! self-observation (`f_I` access frequencies, idle-time integrals,
//! per-cycle refinement budgets). This crate makes that observation a
//! first-class, process-wide facility instead of four disconnected harness
//! printouts:
//!
//! - [`Counter`] — striped atomic counter (one cache-line-padded stripe per
//!   slot, threads hash to stripes) so concurrent completions never bounce
//!   one line.
//! - [`Gauge`] / [`FloatGauge`] — last-value instruments for queue depth,
//!   EWMA channels, busy fractions.
//! - [`Histogram`] — log-bucketed (HDR-style) latency histogram: exact below
//!   128, then 64 sub-buckets per power of two (≤ ~0.8% relative error,
//!   within the ≤2% spec), with windowed snapshots that mirror the
//!   `reset_window`/`summary` discipline of `ServiceStats`.
//! - [`TraceRing`] — bounded lock-free (seqlock-slotted) ring of
//!   [`QueryTrace`] records: one per query lifecycle, carrying admit
//!   decision, queue wait, batch/coalesce context, route taken, plan
//!   version and the predicted-vs-actual `PlanCost` residual.
//! - [`Registry`] — the process-wide name → instrument map behind
//!   [`registry()`], with a Prometheus-style text [`Registry::expose`]
//!   (`name{label="v"} value`).
//!
//! Runtime gating: `HOLIX_METRICS` (default **on**) gates layer
//! instrumentation, `HOLIX_TRACE` (default **off**) gates the trace ring.
//! Both are a single relaxed atomic load on the hot path and can be flipped
//! programmatically ([`set_metrics_enabled`], [`set_trace_enabled`]) so one
//! process can benchmark enabled-vs-disabled beds (`fig_observe`).
//!
//! Registration is the cold path (a mutex-guarded map); hot paths cache
//! `Arc` handles — the [`counter!`]/[`gauge!`]/[`float_gauge!`]/
//! [`histogram!`] macros do this per call site with a `OnceLock`.

pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, FloatGauge, Gauge};
pub use registry::{registry, Registry};
pub use trace::{AdmitOutcome, CoalesceKind, QueryTrace, TraceRing, TraceRoute};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

fn env_flag(key: &str, default: bool) -> bool {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no" | ""),
    }
}

fn metrics_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| AtomicBool::new(env_flag("HOLIX_METRICS", true)))
}

fn trace_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| AtomicBool::new(env_flag("HOLIX_TRACE", false)))
}

/// Whether layer instrumentation should record into the registry
/// (`HOLIX_METRICS`, default on). One relaxed load.
#[inline]
pub fn metrics_enabled() -> bool {
    metrics_flag().load(Ordering::Relaxed)
}

/// Whether per-query traces should be recorded (`HOLIX_TRACE`, default
/// off). One relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    trace_flag().load(Ordering::Relaxed)
}

/// Programmatic override of `HOLIX_METRICS` — `fig_observe` runs the
/// enabled and disabled beds in one process, so the env knob alone is not
/// enough.
pub fn set_metrics_enabled(on: bool) {
    metrics_flag().store(on, Ordering::Relaxed);
}

/// Programmatic override of `HOLIX_TRACE`.
pub fn set_trace_enabled(on: bool) {
    trace_flag().store(on, Ordering::Relaxed);
}

/// Per-call-site cached counter handle: registration once, then a single
/// pointer load per use.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::registry().counter($name)))
    }};
}

/// Per-call-site cached gauge handle.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::registry().gauge($name)))
    }};
}

/// Per-call-site cached float-gauge handle.
#[macro_export]
macro_rules! float_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::FloatGauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::registry().float_gauge($name)))
    }};
}

/// Per-call-site cached histogram handle.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::registry().histogram($name)))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_flag_parsing() {
        assert!(env_flag("HOLIX_TEST_UNSET_FLAG_XYZ", true));
        assert!(!env_flag("HOLIX_TEST_UNSET_FLAG_XYZ", false));
    }

    #[test]
    fn programmatic_toggles_override() {
        // Whatever the env said, the setters win and are observable.
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_trace_enabled(true);
        assert!(trace_enabled());
        set_trace_enabled(false);
        assert!(!trace_enabled());
    }

    #[test]
    fn macros_cache_one_handle_per_site() {
        let a = counter!("lib_macro_cache_total") as *const Counter;
        let b = counter!("lib_macro_cache_total") as *const Counter;
        assert_eq!(a, b);
        counter!("lib_macro_cache_total").inc();
        assert_eq!(registry().counter("lib_macro_cache_total").get(), 1);
    }
}
