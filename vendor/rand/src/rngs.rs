//! Concrete generators: xoshiro256++ behind both [`SmallRng`] and [`StdRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded through splitmix64 as its authors recommend.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! wrapper_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                $name(Xoshiro256::new(state))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

wrapper_rng!(
    /// The "small, fast" generator (`rand::rngs::SmallRng` stand-in).
    SmallRng
);
wrapper_rng!(
    /// The default generator (`rand::rngs::StdRng` stand-in). Same algorithm
    /// as [`SmallRng`] here; the distinction only matters upstream.
    StdRng
);
