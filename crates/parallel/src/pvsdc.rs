//! PVSDC — Parallel Vectorized Stochastic Database Cracking ([21] + [44]).
//!
//! PVDC with one auxiliary random crack per query bound, confined to the
//! piece that bound is about to crack. The robustness baseline of §5.3: it
//! fixes plain cracking's skewed/sequential blow-ups but — unlike holistic
//! indexing — only acts while a query is running and only inside the piece
//! the query already touches.

use holix_cracking::column::{CrackerColumn, Selection};
use holix_cracking::stochastic::select_stochastic;
use holix_cracking::CrackScratch;
use holix_storage::select::Predicate;
use holix_storage::types::CrackValue;
use rand::Rng;

/// Builds a PVSDC column (same construction as PVDC; the stochastic part is
/// in the select path, [`select_pvsdc`]).
pub fn pvsdc_column<V: CrackValue>(
    name: impl Into<String>,
    base: &[V],
    threads: usize,
) -> CrackerColumn<V> {
    crate::pvdc::pvdc_column(name, base, threads)
}

/// Stochastic select over a PVDC column.
pub fn select_pvsdc<V: CrackValue>(
    col: &CrackerColumn<V>,
    pred: Predicate<V>,
    rng: &mut impl Rng,
    scratch: &mut CrackScratch<V>,
) -> Selection {
    select_stochastic(col, pred, rng, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_storage::select::scan_stats;
    use rand::prelude::*;

    #[test]
    fn pvsdc_correct_and_more_refined_on_sequential_workload() {
        let mut rng = StdRng::seed_from_u64(7);
        let base: Vec<i64> = (0..200_000).map(|_| rng.random_range(0..100_000)).collect();

        let plain = pvsdc_column("plain", &base, 4);
        let stoch = pvsdc_column("stoch", &base, 4);
        let mut scratch = CrackScratch::new();

        // Sequential pattern: each query a small step to the right.
        for i in 0..40 {
            let lo = i * 2_000;
            let pred = Predicate::range(lo, lo + 1_000);
            let s1 = plain.select(pred, &mut scratch);
            let s2 = select_pvsdc(&stoch, pred, &mut rng, &mut scratch);
            assert_eq!(s1.count(), s2.count());
            assert_eq!(s1.count(), scan_stats(&base, pred).count);
        }
        assert!(stoch.piece_count() > plain.piece_count());
        stoch.check_invariants(Some(&base));
    }
}
