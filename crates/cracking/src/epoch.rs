//! Per-shard snapshot epochs: an immutable piece-table snapshot published
//! through an atomic pointer, reclaimed with epoch-based garbage collection.
//!
//! ## Why snapshots can be cheap here
//!
//! A crack only *permutes values inside one piece* — the multiset of values
//! per value range never changes. Snapshot scans (count / sum / collect of
//! qualifying **values**) therefore stay correct across arbitrary concurrent
//! cracks and piece splits; only a **Ripple merge** (insert/delete) changes
//! a piece's multiset, and merges already run under the column's exclusive
//! structure lock. So the write side replaces a snapshot copy-on-write at
//! piece granularity exactly when a merge lands, sharing the `Arc`'d
//! [`Segment`]s of every untouched piece, and readers run with **no
//! structure lock at all**.
//!
//! ## Reclamation
//!
//! Readers cannot safely clone an `Arc` out of a bare `AtomicPtr` (the
//! pointee may die between load and refcount bump), so each column owns an
//! [`EpochDomain`]: readers *pin* the current epoch into a slot, dereference
//! the published pointer while pinned, and unpin. Writers swap the pointer
//! and *retire* the old snapshot stamped with the current epoch; retired
//! snapshots (and through their `Arc`s, the segments only they reference)
//! free once every pinned slot has moved past the stamp — i.e. only after
//! the last pinned reader drops. Publication and pointer loads are both
//! performed under the column's short pending-updates mutex, which doubles
//! as the linearisation point between a snapshot and its not-yet-merged
//! pending updates; the epoch machinery only has to protect the
//! *dereference* after that mutex is released.

use holix_storage::select::Predicate;
use holix_storage::types::CrackValue;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// Pin slots per domain. Readers pin one slot for the duration of a scan;
/// with per-shard domains the concurrent-reader count per domain is small,
/// so a fixed array with CAS claiming suffices (an overfull domain spins —
/// see [`EpochDomain::pin`]).
const SLOTS: usize = 64;

/// Slot value meaning "not pinned".
const EMPTY: u64 = u64::MAX;

#[repr(align(64))]
struct Slot(AtomicU64);

/// One column's (shard's) epoch-reclamation domain.
pub struct EpochDomain {
    /// Monotone global epoch; bumped on every retire.
    global: AtomicU64,
    slots: Box<[Slot; SLOTS]>,
    /// Retired garbage stamped with the epoch at retirement.
    garbage: Mutex<Vec<(u64, Box<dyn std::any::Any + Send>)>>,
}

impl Default for EpochDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochDomain {
    /// Fresh domain: epoch 0, no pins, no garbage.
    pub fn new() -> Self {
        EpochDomain {
            global: AtomicU64::new(0),
            slots: Box::new(std::array::from_fn(|_| Slot(AtomicU64::new(EMPTY)))),
            garbage: Mutex::new(Vec::new()),
        }
    }

    /// Pins the current epoch; the returned guard keeps every object
    /// retired at-or-after the pinned epoch alive until it drops.
    ///
    /// Lock-free in the common case (one CAS on a free slot). When all
    /// slots are simultaneously pinned the caller spins until one frees —
    /// with per-shard domains and short scans this is effectively
    /// unreachable, and spinning (rather than blocking reclamation
    /// forever) keeps the safety argument trivial.
    pub fn pin(&self) -> EpochGuard<'_> {
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_epoch_pins_total").inc();
        }
        loop {
            let epoch = self.global.load(SeqCst);
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.0.load(SeqCst) == EMPTY
                    && slot
                        .0
                        .compare_exchange(EMPTY, epoch, SeqCst, SeqCst)
                        .is_ok()
                {
                    return EpochGuard {
                        domain: self,
                        slot: i,
                    };
                }
            }
            std::thread::yield_now();
        }
    }

    /// Retires an object: it is dropped by a later [`EpochDomain::collect`]
    /// once every epoch pinned at retirement time has been released.
    /// Advances the global epoch and opportunistically collects.
    pub fn retire(&self, object: Box<dyn std::any::Any + Send>) {
        let stamp = self.global.fetch_add(1, SeqCst);
        self.garbage.lock().push((stamp, object));
        self.collect();
    }

    /// Drops every retired object whose stamp precedes all currently
    /// pinned epochs; returns how many were freed.
    pub fn collect(&self) -> usize {
        let min_pinned = self
            .slots
            .iter()
            .map(|s| s.0.load(SeqCst))
            .filter(|&e| e != EMPTY)
            .min()
            .unwrap_or(u64::MAX);
        let mut garbage = self.garbage.lock();
        let before = garbage.len();
        // Safe to free at stamp `s` only when every pinned reader pinned
        // *after* the retirement: min_pinned > s.
        garbage.retain(|&(stamp, _)| stamp >= min_pinned);
        let freed = before - garbage.len();
        if freed > 0 && holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("cracking_epoch_gc_freed_total").add(freed as u64);
        }
        freed
    }

    /// Retired-but-not-yet-freed objects (tests / introspection).
    pub fn garbage_len(&self) -> usize {
        self.garbage.lock().len()
    }

    /// Number of currently pinned slots (tests / introspection).
    pub fn pinned(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.0.load(SeqCst) != EMPTY)
            .count()
    }
}

impl std::fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDomain")
            .field("epoch", &self.global.load(SeqCst))
            .field("pinned", &self.pinned())
            .field("garbage", &self.garbage_len())
            .finish()
    }
}

/// A pinned epoch; dropping it releases the slot.
pub struct EpochGuard<'a> {
    domain: &'a EpochDomain,
    slot: usize,
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        self.domain.slots[self.slot].0.store(EMPTY, SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Generic epoch-published cell
// ---------------------------------------------------------------------------

/// A lock-free publish/load cell for an arbitrary immutable value: an atomic
/// pointer to the current `Arc<T>` plus a private [`EpochDomain`] reclaiming
/// replaced versions. Unlike [`SnapshotCell`] (whose loads are linearised
/// under the column's pending mutex), this cell is self-contained: `load`
/// pins an epoch, clones the `Arc` out while pinned, and unpins — so readers
/// and the single/multiple publishers need no external lock at all. The
/// plan-time [`crate::piece_stats::PieceStats`] summaries are published
/// through it: `estimate()` must complete while a shard's structure write
/// lock and the daemon's maintenance mutex are both held.
pub struct EpochCell<T> {
    ptr: AtomicPtr<T>,
    epochs: EpochDomain,
}

impl<T: Send + Sync + 'static> Default for EpochCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync + 'static> EpochCell<T> {
    /// Empty cell: nothing published yet.
    pub fn new() -> Self {
        EpochCell {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            epochs: EpochDomain::new(),
        }
    }

    /// Has a value ever been published?
    pub fn is_published(&self) -> bool {
        !self.ptr.load(SeqCst).is_null()
    }

    /// Clones the current value's `Arc` out of the cell (no locks; one epoch
    /// pin for the duration of the refcount bump).
    pub fn load(&self) -> Option<Arc<T>> {
        let _guard = self.epochs.pin();
        let p = self.ptr.load(SeqCst);
        if p.is_null() {
            return None;
        }
        // SAFETY: non-null pointers originate from `Arc::into_raw` in
        // `publish`; a replaced pointer is retired into `epochs` and freed
        // only after every epoch pinned at retirement drops — the pin above
        // precedes this load, so the pointee (and its refcount word) is
        // alive for the `increment_strong_count` below.
        unsafe {
            Arc::increment_strong_count(p);
            Some(Arc::from_raw(p))
        }
    }

    /// Publishes a new value, retiring the replaced one into the epoch
    /// domain. Concurrent publishers are safe (atomic swap); last wins.
    pub fn publish(&self, new: Arc<T>) {
        let raw = Arc::into_raw(new) as *mut T;
        let old = self.ptr.swap(raw, SeqCst);
        if !old.is_null() {
            // SAFETY: `old` came from `Arc::into_raw` in a previous publish.
            let old = unsafe { Arc::from_raw(old) };
            self.epochs.retire(Box::new(old));
        }
    }

    /// Runs a reclamation cycle (tests / quiesce).
    pub fn collect(&self) -> usize {
        self.epochs.collect()
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        let p = self.ptr.load(SeqCst);
        if !p.is_null() {
            // SAFETY: pointer originates from `Arc::into_raw`; the cell is
            // being dropped, so no reader can be pinned on it.
            drop(unsafe { Arc::from_raw(p) });
        }
    }
}

// ---------------------------------------------------------------------------
// Segments and piece snapshots
// ---------------------------------------------------------------------------

use crate::kernels::{self, bits_for, pack_bits, packed_words};

/// Walks a delta stream (`first` + `n - 1` packed gaps) in position order,
/// decoding gaps block-at-a-time through the [`kernels`] layer; `f`
/// receives `(index, value)` and returns `false` to stop (the sorted
/// early-exit).
fn delta_walk(
    first: i64,
    bits: u32,
    packed: &[u64],
    n: usize,
    mut f: impl FnMut(usize, i64) -> bool,
) {
    if n == 0 || !f(0, first) {
        return;
    }
    let mut v = first;
    let mut idx = 1usize;
    let mut more = true;
    kernels::decode_blocks(packed, bits, n - 1, |gaps| {
        for &g in gaps {
            v = v.wrapping_add(g as i64);
            if !f(idx, v) {
                more = false;
                break;
            }
            idx += 1;
        }
        more
    });
}

/// Translates sentinel-aware value bounds into FOR offset space
/// (`value = base + offset`): `None` when the window is empty below
/// `base`, otherwise `(lo_off, hi_off)` with `None` meaning unbounded.
fn for_offsets(base: i64, lo: Option<i64>, hi: Option<i64>) -> Option<(Option<u64>, Option<u64>)> {
    if hi.is_some_and(|h| h <= base) {
        return None;
    }
    let lo_off = lo.and_then(|l| (l > base).then(|| l.wrapping_sub(base) as u64));
    let hi_off = hi.map(|h| h.wrapping_sub(base) as u64);
    Some((lo_off, hi_off))
}

/// Physical representation of one segment. Non-plain forms hold the
/// multiset **sorted ascending** (snapshot pieces are unordered multisets,
/// so sorting is free correctness-wise and buys narrow deltas plus
/// early-exit scans); values round-trip through the order-preserving
/// `CrackValue::as_i64` map.
enum Repr<V> {
    /// Verbatim values in column order — the only form edge refreshes and
    /// merge splices produce; morphing re-encodes it in the background.
    Plain(Vec<V>),
    /// Frame-of-reference: sorted values bit-packed as offsets from the
    /// minimum.
    For {
        base: i64,
        bits: u32,
        packed: Box<[u64]>,
        len: usize,
    },
    /// Delta: first value plus bit-packed gaps between sorted neighbours
    /// (narrower than FOR when values are dense over a wide span).
    Delta {
        first: i64,
        bits: u32,
        packed: Box<[u64]>,
        len: usize,
    },
    /// Run-length: parallel run arrays of the sorted multiset — `vals[k]`
    /// is run `k`'s value, `ends[k]` its exclusive cumulative end
    /// position. Split (rather than `(value, count)` tuples) so both
    /// arrays binary-search — by value for predicate bounds, by position
    /// for piece windows — and so a run costs 12 bytes instead of the
    /// tuple's padded 16.
    Rle {
        vals: Box<[i64]>,
        ends: Box<[u32]>,
        len: usize,
    },
}

/// An immutable block of values backing one or more snapshot pieces, in
/// one of four encodings (see [`Repr`]). The byte counter (shared with the
/// owning column) tracks live snapshot memory: it rises by the **encoded
/// backing size** when a segment is created and falls in `Drop` — i.e.
/// only once epoch reclamation actually frees the last snapshot
/// referencing the segment. Scans and collects run directly on the
/// compressed form; nothing ever materialises a decoded copy.
pub struct Segment<V> {
    repr: Repr<V>,
    bytes: Arc<AtomicUsize>,
    /// Exactly what the constructor charged (the encoded backing size), so
    /// `Drop` debits symmetrically even for value types whose accounting
    /// `width()` differs from their in-memory size.
    charged: usize,
}

impl<V: CrackValue> Segment<V> {
    /// Wraps copied-out values verbatim (plain encoding), charging them to
    /// `bytes`. Edge pieces and splice copies take this form; the daemon
    /// re-encodes stable pieces later via [`Segment::encoded`].
    pub fn new(data: Vec<V>, bytes: Arc<AtomicUsize>) -> Self {
        let charged = data.len() * V::width();
        bytes.fetch_add(charged, SeqCst);
        Segment {
            repr: Repr::Plain(data),
            bytes,
            charged,
        }
    }

    /// Encodes a multiset into the scheme its statistics favour — RLE for
    /// heavy run structure, delta for dense wide-span values, FOR for a
    /// narrow span — falling back to plain when no scheme beats the plain
    /// backing size strictly. Charges the encoded backing size to `bytes`.
    pub fn encoded(mut data: Vec<V>, bytes: Arc<AtomicUsize>) -> Self {
        data.sort_unstable();
        let n = data.len();
        let plain_bytes = n * V::width();
        if n < 2 {
            return Self::new(data, bytes);
        }
        let lo = data[0].as_i64();
        let hi = data[n - 1].as_i64();
        // Scheme statistics in one pass: value span, max adjacent gap, runs.
        let span = hi.wrapping_sub(lo) as u64;
        let mut max_gap = 0u64;
        let mut runs = 1usize;
        for w in data.windows(2) {
            let gap = w[1].as_i64().wrapping_sub(w[0].as_i64()) as u64;
            max_gap = max_gap.max(gap);
            runs += usize::from(gap != 0);
        }
        let for_bits = bits_for(span);
        let delta_bits = bits_for(max_gap);
        let for_bytes = packed_words(n, for_bits) * 8;
        let delta_bytes = packed_words(n - 1, delta_bits) * 8 + 8;
        let rle_bytes = runs * (std::mem::size_of::<i64>() + std::mem::size_of::<u32>());
        let best = for_bytes.min(delta_bytes).min(rle_bytes);
        if best >= plain_bytes {
            return Self::new(data, bytes);
        }
        let repr = if rle_bytes == best {
            let mut vals: Vec<i64> = Vec::with_capacity(runs);
            let mut ends: Vec<u32> = Vec::with_capacity(runs);
            for (i, v) in data.iter().enumerate() {
                let v = v.as_i64();
                if vals.last() == Some(&v) {
                    *ends.last_mut().expect("run exists") = (i + 1) as u32;
                } else {
                    vals.push(v);
                    ends.push((i + 1) as u32);
                }
            }
            Repr::Rle {
                vals: vals.into_boxed_slice(),
                ends: ends.into_boxed_slice(),
                len: n,
            }
        } else if for_bytes <= delta_bytes {
            let packed = pack_bits(
                data.iter().map(|v| v.as_i64().wrapping_sub(lo) as u64),
                n,
                for_bits,
            );
            Repr::For {
                base: lo,
                bits: for_bits,
                packed,
                len: n,
            }
        } else {
            let packed = pack_bits(
                data.windows(2)
                    .map(|w| w[1].as_i64().wrapping_sub(w[0].as_i64()) as u64),
                n - 1,
                delta_bits,
            );
            Repr::Delta {
                first: lo,
                bits: delta_bits,
                packed,
                len: n,
            }
        };
        let charged = best;
        bytes.fetch_add(charged, SeqCst);
        Segment {
            repr,
            bytes,
            charged,
        }
    }

    /// Number of values in the segment.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Plain(d) => d.len(),
            Repr::For { len, .. } | Repr::Delta { len, .. } | Repr::Rle { len, .. } => *len,
        }
    }

    /// `true` when the segment holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for the plain (uncompressed) form — the morph daemon's
    /// candidate filter.
    pub fn is_plain(&self) -> bool {
        matches!(self.repr, Repr::Plain(_))
    }

    /// Encoding label (CSV / introspection).
    pub fn encoding(&self) -> &'static str {
        match &self.repr {
            Repr::Plain(_) => "plain",
            Repr::For { .. } => "for",
            Repr::Delta { .. } => "delta",
            Repr::Rle { .. } => "rle",
        }
    }

    /// The encoded backing size this segment charged to the byte counter.
    pub fn charged_bytes(&self) -> usize {
        self.charged
    }

    /// The values verbatim — `Some` only for the plain form. Encoded
    /// segments are visited through [`Segment::for_each_range`] /
    /// [`Segment::scan_range`] instead.
    pub fn plain_values(&self) -> Option<&[V]> {
        match &self.repr {
            Repr::Plain(d) => Some(d),
            _ => None,
        }
    }

    /// First RLE run that can overlap positions `>= start`.
    fn rle_first_run(ends: &[u32], start: usize) -> usize {
        ends.partition_point(|&e| (e as usize) <= start)
    }

    /// Visits `seg[start..start+len)` in storage order, decoding
    /// block-at-a-time through the [`kernels`] layer.
    pub fn for_each_range(&self, start: usize, len: usize, mut f: impl FnMut(V)) {
        let end = start + len;
        match &self.repr {
            Repr::Plain(d) => d[start..end].iter().for_each(|&v| f(v)),
            Repr::For {
                base,
                bits,
                packed,
                len: n,
            } => {
                kernels::decode_range(packed, *bits, *n, start, end, |off| {
                    f(V::from_i64_exact(base.wrapping_add(off as i64)))
                });
            }
            Repr::Delta {
                first,
                bits,
                packed,
                len: n,
            } => {
                delta_walk(*first, *bits, packed, *n, |idx, v| {
                    if idx >= end {
                        return false;
                    }
                    if idx >= start {
                        f(V::from_i64_exact(v));
                    }
                    true
                });
            }
            Repr::Rle { vals, ends, .. } => {
                for k in Self::rle_first_run(ends, start)..vals.len() {
                    let run_start = if k == 0 { 0 } else { ends[k - 1] as usize };
                    if run_start >= end {
                        break;
                    }
                    let from = run_start.max(start);
                    let to = (ends[k] as usize).min(end);
                    if from < to {
                        let dv = V::from_i64_exact(vals[k]);
                        for _ in from..to {
                            f(dv);
                        }
                    }
                }
            }
        }
    }

    /// Sum of `seg[start..start+len)` (widened) — the piece-aggregate
    /// precompute and morph-verification path, on the compressed form.
    pub fn sum_range(&self, start: usize, len: usize) -> i128 {
        let end = start + len;
        match &self.repr {
            Repr::Plain(d) => d[start..end].iter().map(|&v| v.as_i64() as i128).sum(),
            Repr::For {
                base,
                bits,
                packed,
                len: n,
            } => {
                let offsets = kernels::sum_range(packed, *bits, *n, start, end);
                offsets as i128 + *base as i128 * len as i128
            }
            Repr::Delta {
                first,
                bits,
                packed,
                len: n,
            } => {
                let mut sum = 0i128;
                delta_walk(*first, *bits, packed, *n, |idx, v| {
                    if idx >= end {
                        return false;
                    }
                    if idx >= start {
                        sum += v as i128;
                    }
                    true
                });
                sum
            }
            Repr::Rle { vals, ends, .. } => {
                let mut sum = 0i128;
                for k in Self::rle_first_run(ends, start)..vals.len() {
                    let run_start = if k == 0 { 0 } else { ends[k - 1] as usize };
                    if run_start >= end {
                        break;
                    }
                    let overlap = (ends[k] as usize).min(end) - run_start.max(start);
                    sum += vals[k] as i128 * overlap as i128;
                }
                sum
            }
        }
    }

    /// Sentinel-aware bounds in i64 space: `None` = unbounded, matching
    /// [`Predicate::matches_unbounded`] (the `as_i64` map is
    /// order-preserving, so comparisons agree with `V`'s order).
    fn bounds(lo: V, hi: V) -> (Option<i64>, Option<i64>) {
        (
            (lo != V::MIN_VALUE).then(|| lo.as_i64()),
            (hi != V::MAX_VALUE).then(|| hi.as_i64()),
        )
    }

    /// Count + sum of qualifying values in `seg[start..start+len)` under
    /// the sentinel-aware predicate semantics
    /// ([`Predicate::matches_unbounded`]) — the fused filter_count kernel.
    /// FOR binary-searches the qualifying index range directly on the
    /// packed words and block-sums it; delta walks block-decoded gaps with
    /// a sorted early exit; RLE binary-searches run boundaries; plain
    /// rides the branchless lane filter.
    pub fn scan_range(&self, start: usize, len: usize, lo: V, hi: V) -> (u64, i128) {
        let pred = Predicate { lo, hi };
        if pred.is_empty() {
            return (0, 0);
        }
        let (lo_b, hi_b) = Self::bounds(lo, hi);
        let end = start + len;
        match &self.repr {
            Repr::Plain(d) => {
                let mut count = 0u64;
                let mut sum = 0i128;
                let mut lanes = [0i64; 256];
                for chunk in d[start..end].chunks(lanes.len()) {
                    for (o, v) in lanes.iter_mut().zip(chunk) {
                        *o = v.as_i64();
                    }
                    let (c, s) = kernels::filter_count(&lanes[..chunk.len()], lo_b, hi_b);
                    count += c;
                    sum += s;
                }
                (count, sum)
            }
            Repr::For {
                base,
                bits,
                packed,
                len: n,
            } => {
                let Some((lo_off, hi_off)) = for_offsets(*base, lo_b, hi_b) else {
                    return (0, 0);
                };
                let (c, offsets) =
                    kernels::filter_count_sorted(packed, *bits, *n, start, end, lo_off, hi_off);
                (c, offsets as i128 + *base as i128 * c as i128)
            }
            Repr::Delta {
                first,
                bits,
                packed,
                len: n,
            } => {
                let mut count = 0u64;
                let mut sum = 0i128;
                delta_walk(*first, *bits, packed, *n, |idx, v| {
                    if idx >= end || hi_b.is_some_and(|h| v >= h) {
                        return false;
                    }
                    if idx >= start && lo_b.is_none_or(|l| v >= l) {
                        count += 1;
                        sum += v as i128;
                    }
                    true
                });
                (count, sum)
            }
            Repr::Rle { vals, ends, .. } => {
                let mut count = 0u64;
                let mut sum = 0i128;
                // Run-skipping: binary search the first run inside the
                // position window AND the first run meeting the lower
                // bound — both monotone over the sorted runs.
                let r0 = Self::rle_first_run(ends, start);
                let k0 = match lo_b {
                    Some(l) => r0.max(vals.partition_point(|&v| v < l)),
                    None => r0,
                };
                for k in k0..vals.len() {
                    let run_start = if k == 0 { 0 } else { ends[k - 1] as usize };
                    if run_start >= end || hi_b.is_some_and(|h| vals[k] >= h) {
                        break;
                    }
                    let overlap = (ends[k] as usize)
                        .min(end)
                        .saturating_sub(run_start.max(start));
                    count += overlap as u64;
                    sum += vals[k] as i128 * overlap as i128;
                }
                (count, sum)
            }
        }
    }

    /// Appends the qualifying values of `seg[start..start+len)` under
    /// `[lo, hi)` (sentinel-aware) to `out` — the fused filter_collect
    /// kernel, sharing the scan kernels' qualifying-range machinery.
    /// Returns (count, sum) of the appended values.
    pub fn collect_range(
        &self,
        start: usize,
        len: usize,
        lo: V,
        hi: V,
        out: &mut Vec<V>,
    ) -> (u64, i128) {
        let pred = Predicate { lo, hi };
        if pred.is_empty() {
            return (0, 0);
        }
        let (lo_b, hi_b) = Self::bounds(lo, hi);
        let end = start + len;
        match &self.repr {
            Repr::Plain(d) => {
                let mut count = 0u64;
                let mut sum = 0i128;
                for &v in &d[start..end] {
                    if pred.matches_unbounded(v) {
                        out.push(v);
                        count += 1;
                        sum += v.as_i64() as i128;
                    }
                }
                (count, sum)
            }
            Repr::For {
                base,
                bits,
                packed,
                len: n,
            } => {
                let Some((lo_off, hi_off)) = for_offsets(*base, lo_b, hi_b) else {
                    return (0, 0);
                };
                let (ql, qh) = kernels::qualifying_range(packed, *bits, *n, lo_off, hi_off);
                let a = ql.max(start);
                let b = qh.min(end);
                if a >= b {
                    return (0, 0);
                }
                out.reserve(b - a);
                let mut sum = 0i128;
                kernels::decode_range(packed, *bits, *n, a, b, |off| {
                    let v = base.wrapping_add(off as i64);
                    sum += v as i128;
                    out.push(V::from_i64_exact(v));
                });
                ((b - a) as u64, sum)
            }
            Repr::Delta {
                first,
                bits,
                packed,
                len: n,
            } => {
                let mut count = 0u64;
                let mut sum = 0i128;
                delta_walk(*first, *bits, packed, *n, |idx, v| {
                    if idx >= end || hi_b.is_some_and(|h| v >= h) {
                        return false;
                    }
                    if idx >= start && lo_b.is_none_or(|l| v >= l) {
                        out.push(V::from_i64_exact(v));
                        count += 1;
                        sum += v as i128;
                    }
                    true
                });
                (count, sum)
            }
            Repr::Rle { vals, ends, .. } => {
                let mut count = 0u64;
                let mut sum = 0i128;
                let r0 = Self::rle_first_run(ends, start);
                let k0 = match lo_b {
                    Some(l) => r0.max(vals.partition_point(|&v| v < l)),
                    None => r0,
                };
                for k in k0..vals.len() {
                    let run_start = if k == 0 { 0 } else { ends[k - 1] as usize };
                    if run_start >= end || hi_b.is_some_and(|h| vals[k] >= h) {
                        break;
                    }
                    let overlap = (ends[k] as usize)
                        .min(end)
                        .saturating_sub(run_start.max(start));
                    if overlap > 0 {
                        out.extend(std::iter::repeat_n(V::from_i64_exact(vals[k]), overlap));
                        count += overlap as u64;
                        sum += vals[k] as i128 * overlap as i128;
                    }
                }
                (count, sum)
            }
        }
    }
}

impl<V> Drop for Segment<V> {
    fn drop(&mut self) {
        self.bytes.fetch_sub(self.charged, SeqCst);
    }
}

/// One piece of a snapshot: an unordered multiset of the values in
/// `[lo_key, hi_key)` (the lower key is implicit: the previous piece's
/// `hi_key`, or the column minimum for the first piece), with precomputed
/// aggregates so fully-covered pieces answer in O(1). `Clone` shares the
/// backing segment (pointer copy, no data copy) — splices clone the
/// untouched pieces of the snapshot they replace.
#[derive(Clone)]
pub struct SnapPiece<V> {
    /// Exclusive upper boundary key; `None` = unbounded (last piece).
    pub hi_key: Option<V>,
    seg: Arc<Segment<V>>,
    start: usize,
    len: usize,
    /// Sum of the piece's values (widened).
    sum: i128,
}

impl<V: CrackValue> SnapPiece<V> {
    /// Builds a piece over `seg[start..start+len)` with its aggregate.
    pub fn new(hi_key: Option<V>, seg: Arc<Segment<V>>, start: usize, len: usize) -> Self {
        let sum = seg.sum_range(start, len);
        SnapPiece {
            hi_key,
            seg,
            start,
            len,
            sum,
        }
    }

    /// The piece's values verbatim — `Some` only when the backing segment
    /// is plain (encoded pieces are visited through
    /// [`SnapPiece::for_each`] / [`SnapPiece::scan_range`]).
    pub fn plain_values(&self) -> Option<&[V]> {
        self.seg
            .plain_values()
            .map(|d| &d[self.start..self.start + self.len])
    }

    /// Visits every value of the piece (unordered multiset), decoding
    /// encoded segments on the fly.
    pub fn for_each(&self, f: impl FnMut(V)) {
        self.seg.for_each_range(self.start, self.len, f);
    }

    /// Count + sum of the piece's values qualifying under
    /// `[lo, hi)` (sentinel-aware) — executed on the compressed form.
    pub fn scan_range(&self, lo: V, hi: V) -> (u64, i128) {
        self.seg.scan_range(self.start, self.len, lo, hi)
    }

    /// Appends the piece's values qualifying under `[lo, hi)`
    /// (sentinel-aware) to `out` — the fused filter_collect path on the
    /// compressed form. Returns (count, sum) of the appended values.
    pub fn collect_range(&self, lo: V, hi: V, out: &mut Vec<V>) -> (u64, i128) {
        self.seg.collect_range(self.start, self.len, lo, hi, out)
    }

    /// `true` when the backing segment is plain (uncompressed).
    pub fn is_plain(&self) -> bool {
        self.seg.is_plain()
    }

    /// Backing segment's encoding label.
    pub fn encoding(&self) -> &'static str {
        self.seg.encoding()
    }

    /// Number of values in the piece.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the piece holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Result of one snapshot scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotScan {
    /// Qualifying-value count.
    pub count: u64,
    /// Qualifying-value sum (widened).
    pub sum: i128,
    /// Values inspected element-wise in the (at most two) edge pieces —
    /// the read path's refresh heuristic: a large filter cost means the
    /// snapshot's piece table lags the live cracker index.
    pub filtered: usize,
}

/// An immutable snapshot of one column: pieces in ascending value order,
/// jointly covering the whole domain. Piece `i` covers
/// `[pieces[i-1].hi_key, pieces[i].hi_key)`.
pub struct PieceSnapshot<V> {
    pieces: Vec<SnapPiece<V>>,
    len: usize,
}

impl<V: CrackValue> PieceSnapshot<V> {
    /// Wraps an ordered piece list.
    pub fn new(pieces: Vec<SnapPiece<V>>) -> Self {
        debug_assert!(
            pieces
                .windows(2)
                .all(|w| w[0].hi_key.is_some()
                    && (w[1].hi_key.is_none() || w[1].hi_key > w[0].hi_key))
        );
        let len = pieces.iter().map(SnapPiece::len).sum();
        PieceSnapshot { pieces, len }
    }

    /// Total values in the snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the snapshot holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The ordered pieces.
    pub fn pieces(&self) -> &[SnapPiece<V>] {
        &self.pieces
    }

    /// Count + sum of values in `[lo, hi)`. Interior pieces fully covered
    /// by the range contribute their precomputed aggregates; only the edge
    /// pieces are filtered element-wise.
    pub fn stats(&self, lo: V, hi: V) -> SnapshotScan {
        let mut out = SnapshotScan::default();
        self.walk(lo, hi, |piece, covered| {
            if covered {
                out.count += piece.len() as u64;
                out.sum += piece.sum;
            } else {
                out.filtered += piece.len();
                let (c, s) = piece.scan_range(lo, hi);
                out.count += c;
                out.sum += s;
            }
        });
        out
    }

    /// Appends every value in `[lo, hi)` to `out`; returns the scan record.
    pub fn collect_into(&self, lo: V, hi: V, out: &mut Vec<V>) -> SnapshotScan {
        let mut scan = SnapshotScan::default();
        self.walk(lo, hi, |piece, covered| {
            if covered {
                match piece.plain_values() {
                    Some(vals) => out.extend_from_slice(vals),
                    None => piece.for_each(|v| out.push(v)),
                }
                scan.count += piece.len() as u64;
                scan.sum += piece.sum;
            } else {
                scan.filtered += piece.len();
                let (c, s) = piece.collect_range(lo, hi, out);
                scan.count += c;
                scan.sum += s;
            }
        });
        scan
    }

    /// Visits every piece intersecting `[lo, hi)`; `covered` is `true` when
    /// the piece's whole value range qualifies.
    fn walk(&self, lo: V, hi: V, mut visit: impl FnMut(&SnapPiece<V>, bool)) {
        // Degenerate predicates are empty everywhere — including the
        // sentinel-valued forms `[MIN, MIN)` / `[MAX, MAX)`, which the old
        // sentinel-exception guard let through to visit edge pieces.
        if lo >= hi {
            return;
        }
        // First piece that can contain values >= lo: the first whose
        // hi_key exceeds lo.
        let first = self
            .pieces
            .partition_point(|p| p.hi_key.is_some_and(|k| k <= lo));
        let mut piece_lo: Option<V> = if first == 0 {
            None
        } else {
            self.pieces[first - 1].hi_key
        };
        for piece in &self.pieces[first..] {
            // Stop once the piece's lower key is at or past the upper bound.
            if hi != V::MAX_VALUE && piece_lo.is_some_and(|k| k >= hi) {
                break;
            }
            let lo_covered = lo == V::MIN_VALUE || piece_lo.is_some_and(|k| k >= lo);
            let hi_covered = hi == V::MAX_VALUE || piece.hi_key.is_some_and(|k| k <= hi);
            visit(piece, lo_covered && hi_covered);
            piece_lo = piece.hi_key;
        }
    }
}

impl<V: CrackValue> std::fmt::Debug for PieceSnapshot<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PieceSnapshot")
            .field("pieces", &self.pieces.len())
            .field("len", &self.len)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Published snapshot cell
// ---------------------------------------------------------------------------

/// The column's published-snapshot slot: an atomic pointer to the current
/// [`PieceSnapshot`] plus the epoch domain that reclaims replaced ones.
///
/// Protocol (enforced by `CrackerColumn`): all `swap`s and all `load`s run
/// under the column's pending-updates mutex; readers pin an epoch *before*
/// taking that mutex and keep the guard alive for as long as they use the
/// returned reference.
pub struct SnapshotCell<V> {
    ptr: AtomicPtr<PieceSnapshot<V>>,
    epochs: EpochDomain,
}

impl<V: CrackValue> Default for SnapshotCell<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: CrackValue> SnapshotCell<V> {
    /// Empty cell: no snapshot published yet.
    pub fn new() -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            epochs: EpochDomain::new(),
        }
    }

    /// The reclamation domain (pin before loading).
    pub fn epochs(&self) -> &EpochDomain {
        &self.epochs
    }

    /// Has a snapshot ever been published?
    pub fn is_published(&self) -> bool {
        !self.ptr.load(SeqCst).is_null()
    }

    /// Dereferences the current snapshot under a pinned epoch. The
    /// reference lives as long as the guard.
    pub fn load<'g>(&self, _guard: &'g EpochGuard<'_>) -> Option<&'g PieceSnapshot<V>> {
        let p = self.ptr.load(SeqCst);
        // SAFETY: non-null pointers in the cell are live `Arc` allocations;
        // a swap retires the old value into `epochs`, and retired memory is
        // only freed once every epoch pinned at retirement drops — `_guard`
        // was pinned before this load, so the pointee outlives it.
        unsafe { p.as_ref() }
    }

    /// Reads the current snapshot from inside a critical section of the
    /// column's pending mutex — the lock every [`SnapshotCell::swap`] runs
    /// under. The *currently published* pointer can never be in the
    /// garbage list (only replaced pointers are retired), so it stays live
    /// for as long as the mutex is held: publishers therefore need **no
    /// epoch pin**, which keeps writers free of the pin-slot spin and its
    /// reader-induced stall while they hold the structure lock.
    ///
    /// Crate-private on purpose: the returned reference must not outlive
    /// the caller's pending-mutex guard, and only `CrackerColumn` can
    /// uphold that.
    pub(crate) fn load_publisher(&self) -> Option<&PieceSnapshot<V>> {
        let p = self.ptr.load(SeqCst);
        // SAFETY: see doc comment — the caller's pending-mutex guard
        // excludes every swap, and the current pointer is never retired.
        unsafe { p.as_ref() }
    }

    /// Publishes `new` and returns the replaced snapshot, which the caller
    /// must hand to [`SnapshotCell::retire`] — *after* releasing the
    /// pending mutex: retirement runs an eager collection that can free
    /// O(column) bytes of segments, and that must not lengthen the reader
    /// linearisation lock. Deferring only moves the retirement stamp
    /// later, which delays freeing and can never unfree. Caller holds the
    /// pending mutex for the swap itself (and a structure lock for
    /// splice-building — see `CrackerColumn`).
    #[must_use = "hand the replaced snapshot to retire() outside the pending lock"]
    pub fn swap(&self, new: Arc<PieceSnapshot<V>>) -> Option<Arc<PieceSnapshot<V>>> {
        let raw = Arc::into_raw(new) as *mut PieceSnapshot<V>;
        let old = self.ptr.swap(raw, SeqCst);
        if old.is_null() {
            None
        } else {
            // SAFETY: `old` came from `Arc::into_raw` in a previous swap.
            Some(unsafe { Arc::from_raw(old) })
        }
    }

    /// Retires a snapshot returned by [`SnapshotCell::swap`] into the
    /// epoch domain (stamps, then opportunistically collects).
    pub fn retire(&self, old: Arc<PieceSnapshot<V>>) {
        self.epochs.retire(Box::new(old));
    }

    /// Runs a collection cycle on the domain (tests / quiesce).
    pub fn collect(&self) -> usize {
        self.epochs.collect()
    }
}

impl<V> Drop for SnapshotCell<V> {
    fn drop(&mut self) {
        let p = self.ptr.load(SeqCst);
        if !p.is_null() {
            // SAFETY: pointer originates from `Arc::into_raw`; the cell is
            // being dropped, so no reader can be pinned on it.
            drop(unsafe { Arc::from_raw(p) });
        }
    }
}

// SAFETY: the cell shares `PieceSnapshot`s (themselves `Send + Sync` for
// `V: CrackValue`) across threads under the epoch protocol above.
unsafe impl<V: CrackValue> Send for SnapshotCell<V> {}
unsafe impl<V: CrackValue> Sync for SnapshotCell<V> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    fn snapshot_of(
        pieces: Vec<(Option<i64>, Vec<i64>)>,
        bytes: &Arc<AtomicUsize>,
    ) -> PieceSnapshot<i64> {
        let pieces = pieces
            .into_iter()
            .map(|(hi, vals)| {
                let n = vals.len();
                SnapPiece::new(hi, Arc::new(Segment::new(vals, Arc::clone(bytes))), 0, n)
            })
            .collect();
        PieceSnapshot::new(pieces)
    }

    #[test]
    fn pin_blocks_collection_until_dropped() {
        let d = EpochDomain::new();
        let guard = d.pin();
        d.retire(Box::new(vec![1u8; 16]));
        assert_eq!(d.garbage_len(), 1, "pinned epoch must hold garbage");
        d.collect();
        assert_eq!(d.garbage_len(), 1);
        drop(guard);
        assert_eq!(d.collect(), 1);
        assert_eq!(d.garbage_len(), 0);
    }

    #[test]
    fn late_pin_does_not_block_older_garbage() {
        let d = EpochDomain::new();
        let early = d.pin(); // epoch 0
        d.retire(Box::new(0u8)); // stamp 0, blocked by `early`
        assert_eq!(d.garbage_len(), 1);
        // A reader pinning *after* the retire pins a later epoch …
        let late = d.pin();
        drop(early);
        // … so it does not keep the stamp-0 garbage alive.
        assert_eq!(d.collect(), 1);
        assert_eq!(d.garbage_len(), 0);
        drop(late);
    }

    #[test]
    fn retire_with_no_pins_collects_immediately() {
        let d = EpochDomain::new();
        d.retire(Box::new(0u8));
        assert_eq!(d.garbage_len(), 0);
    }

    #[test]
    fn slots_are_reusable_and_concurrent() {
        let d = EpochDomain::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let d = &d;
                s.spawn(move |_| {
                    for _ in 0..200 {
                        let g = d.pin();
                        std::hint::black_box(&g);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(d.pinned(), 0);
        d.retire(Box::new(1u32));
        assert_eq!(d.garbage_len(), 0, "no pins: retire collects immediately");
    }

    #[test]
    fn segment_bytes_rise_and_fall_with_reclamation() {
        let bytes = counter();
        let cell = SnapshotCell::<i64>::new();
        let publish = |cell: &SnapshotCell<i64>, snap: PieceSnapshot<i64>| {
            if let Some(old) = cell.swap(Arc::new(snap)) {
                cell.retire(old);
            }
        };
        publish(&cell, snapshot_of(vec![(None, vec![1, 2, 3])], &bytes));
        assert_eq!(bytes.load(SeqCst), 3 * 8);
        let guard = cell.epochs().pin();
        let old = cell.load(&guard).unwrap();
        assert_eq!(old.len(), 3);
        // Replace while a reader is pinned: both snapshots' bytes live.
        publish(&cell, snapshot_of(vec![(None, vec![4, 5])], &bytes));
        assert_eq!(bytes.load(SeqCst), 3 * 8 + 2 * 8);
        assert_eq!(old.len(), 3, "pinned reader still sees the old snapshot");
        drop(guard);
        cell.collect();
        assert_eq!(
            bytes.load(SeqCst),
            2 * 8,
            "retired segment freed after unpin"
        );
        drop(cell);
        assert_eq!(bytes.load(SeqCst), 0);
    }

    #[test]
    fn stats_cover_edges_and_interiors() {
        let bytes = counter();
        // Pieces: [min,10): {1,5}, [10,20): {12,17,11}, [20,+inf): {25,20}.
        let snap = snapshot_of(
            vec![
                (Some(10), vec![5, 1]),
                (Some(20), vec![12, 17, 11]),
                (None, vec![25, 20]),
            ],
            &bytes,
        );
        assert_eq!(snap.len(), 7);
        let full = snap.stats(i64::MIN, i64::MAX);
        assert_eq!((full.count, full.sum), (7, 91));
        assert_eq!(full.filtered, 0, "sentinel range covers every piece");

        let mid = snap.stats(10, 20);
        assert_eq!((mid.count, mid.sum), (3, 40));
        assert_eq!(mid.filtered, 0, "exact boundary hit needs no filtering");

        let cross = snap.stats(5, 21);
        assert_eq!((cross.count, cross.sum), (5, 65));
        assert_eq!(cross.filtered, 4, "both edge pieces filtered");

        let empty = snap.stats(14, 14);
        assert_eq!(empty.count, 0);

        let mut out = Vec::new();
        let scan = snap.collect_into(5, 21, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![5, 11, 12, 17, 20]);
        assert_eq!(scan.count, 5);
    }

    #[test]
    fn unbounded_upper_end_includes_max_value() {
        let bytes = counter();
        let snap = snapshot_of(vec![(None, vec![i64::MAX, 3])], &bytes);
        let s = snap.stats(0, i64::MAX);
        assert_eq!(
            s.count, 2,
            "MAX sentinel means unbounded, like the cracked path"
        );
    }

    #[test]
    fn empty_snapshot_answers_zero() {
        let snap = PieceSnapshot::<i64>::new(Vec::new());
        assert!(snap.is_empty());
        assert_eq!(snap.stats(0, 100).count, 0);
        let mut out = Vec::new();
        snap.collect_into(i64::MIN, i64::MAX, &mut out);
        assert!(out.is_empty());
    }

    /// Decode-everything helper: the segment's multiset in sorted order.
    fn decoded<V: CrackValue>(seg: &Segment<V>) -> Vec<V> {
        let mut out = Vec::with_capacity(seg.len());
        seg.for_each_range(0, seg.len(), |v| out.push(v));
        out.sort_unstable();
        out
    }

    /// Full roundtrip + kernel check for one input multiset: decode equals
    /// the sorted input, and scan/sum kernels match a plain-scan oracle on
    /// a handful of bounds drawn from the data.
    fn check_roundtrip<V: CrackValue>(data: Vec<V>) {
        let bytes = counter();
        let seg = Segment::encoded(data.clone(), Arc::clone(&bytes));
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(decoded(&seg), sorted, "{} roundtrip", seg.encoding());
        assert_eq!(bytes.load(SeqCst), seg.charged_bytes());
        let oracle_sum: i128 = sorted.iter().map(|&v| v.as_i64() as i128).sum();
        assert_eq!(seg.sum_range(0, seg.len()), oracle_sum);
        let mut probes: Vec<(V, V)> = vec![(V::MIN_VALUE, V::MAX_VALUE)];
        if let (Some(&a), Some(&b)) = (sorted.first(), sorted.last()) {
            probes.push((a, b));
            probes.push((b, a)); // degenerate
            probes.push((a, V::MAX_VALUE));
            probes.push((V::MIN_VALUE, b));
            let mid = sorted[sorted.len() / 2];
            probes.push((a, mid));
            probes.push((mid, mid)); // empty
        }
        for (lo, hi) in probes {
            let pred = Predicate { lo, hi };
            let mut count = 0u64;
            let mut sum = 0i128;
            for &v in &sorted {
                if pred.matches_unbounded(v) {
                    count += 1;
                    sum += v.as_i64() as i128;
                }
            }
            assert_eq!(
                seg.scan_range(0, seg.len(), lo, hi),
                (count, sum),
                "{} scan [{:?},{:?})",
                seg.encoding(),
                lo,
                hi
            );
            let mut got = Vec::new();
            let (c2, s2) = seg.collect_range(0, seg.len(), lo, hi, &mut got);
            got.sort_unstable();
            let want: Vec<V> = sorted
                .iter()
                .copied()
                .filter(|&v| pred.matches_unbounded(v))
                .collect();
            assert_eq!(got, want, "{} collect [{lo:?},{hi:?})", seg.encoding());
            assert_eq!((c2, s2), (count, sum));
            // Interior windows must agree with a positional oracle too.
            if seg.len() >= 4 {
                let (a, b) = (seg.len() / 4, seg.len() / 4 + seg.len() / 2);
                let mut wc = 0u64;
                let mut ws = 0i128;
                for &v in &sorted[a..b] {
                    if pred.matches_unbounded(v) {
                        wc += 1;
                        ws += v.as_i64() as i128;
                    }
                }
                assert_eq!(
                    seg.scan_range(a, b - a, lo, hi),
                    (wc, ws),
                    "{} windowed scan [{lo:?},{hi:?})",
                    seg.encoding()
                );
                let mut wgot = Vec::new();
                seg.collect_range(a, b - a, lo, hi, &mut wgot);
                wgot.sort_unstable();
                let wwant: Vec<V> = sorted[a..b]
                    .iter()
                    .copied()
                    .filter(|&v| pred.matches_unbounded(v))
                    .collect();
                assert_eq!(wgot, wwant, "{} windowed collect", seg.encoding());
            }
        }
        let charged = seg.charged_bytes();
        drop(seg);
        let _ = charged;
        assert_eq!(bytes.load(SeqCst), 0, "Drop must debit exactly charged");
    }

    #[test]
    fn encoded_adversarial_runs() {
        // All-equal → FOR with zero bits (or RLE), near-zero bytes.
        let bytes = counter();
        let seg = Segment::encoded(vec![7i64; 4096], Arc::clone(&bytes));
        assert!(!seg.is_plain());
        assert!(
            seg.charged_bytes() < 4096 * 8 / 10,
            "{}",
            seg.charged_bytes()
        );
        drop(seg);
        // Strictly increasing → delta wins with 1-bit gaps.
        let inc: Vec<i64> = (0..4096).map(|i| 1_000_000 + i).collect();
        let seg = Segment::encoded(inc, Arc::clone(&bytes));
        assert_eq!(seg.encoding(), "delta");
        assert!(seg.charged_bytes() <= 4096 / 8 + 16);
        drop(seg);
        // Wide-span sparse (span ~2^63): no scheme beats plain — fallback.
        let sparse = vec![i64::MIN + 1, -5, 0, 3, i64::MAX - 1];
        let seg = Segment::encoded(sparse, Arc::clone(&bytes));
        assert!(seg.is_plain());
        drop(seg);
        assert_eq!(bytes.load(SeqCst), 0);
        for data in [
            vec![7i64; 1000],
            (0..1000).collect(),
            vec![i64::MIN + 1, -5, 0, 3, i64::MAX - 1],
            (0..1000).map(|i| (i * 37) % 11).collect(),
        ] {
            check_roundtrip(data);
        }
    }

    #[test]
    fn encoded_roundtrip_across_widths() {
        check_roundtrip::<i8>((-100..100).map(|v| v as i8).collect());
        check_roundtrip::<i16>((0..2000).map(|v| (v % 300) as i16).collect());
        check_roundtrip::<i32>((0..5000).map(|v| v * 3).collect());
        check_roundtrip::<u32>((0..5000).map(|v| (v % 17) as u32).collect());
        check_roundtrip::<i64>(Vec::new());
        check_roundtrip::<i64>(vec![42]);
    }

    /// Satellite regression: morphing a plain segment into an encoded one
    /// strictly decreases the charged snapshot bytes on compressible data,
    /// and `Drop` debits exactly what each constructor charged.
    #[test]
    fn morph_strictly_decreases_charged_bytes() {
        let bytes = counter();
        let data: Vec<i64> = (0..8192).map(|i| (i * 31) % 1000).collect();
        let plain = Segment::new(data.clone(), Arc::clone(&bytes));
        let plain_charge = plain.charged_bytes();
        assert_eq!(plain_charge, 8192 * 8);
        assert_eq!(bytes.load(SeqCst), plain_charge);
        let enc = Segment::encoded(data, Arc::clone(&bytes));
        assert!(
            enc.charged_bytes() < plain_charge,
            "morph must strictly shrink: {} vs {plain_charge}",
            enc.charged_bytes()
        );
        assert_eq!(bytes.load(SeqCst), plain_charge + enc.charged_bytes());
        drop(plain);
        assert_eq!(bytes.load(SeqCst), enc.charged_bytes());
        drop(enc);
        assert_eq!(bytes.load(SeqCst), 0);
    }

    #[test]
    fn encoded_snapshot_answers_like_plain() {
        let bytes = counter();
        let mk = |encode: bool| -> PieceSnapshot<i64> {
            let pieces = vec![
                (Some(100i64), (0..100).collect::<Vec<i64>>()),
                (Some(200), (100..200).map(|v| v / 2 * 2).collect()),
                (None, vec![250; 64]),
            ];
            PieceSnapshot::new(
                pieces
                    .into_iter()
                    .map(|(hi, vals)| {
                        let n = vals.len();
                        let seg = if encode {
                            Arc::new(Segment::encoded(vals, Arc::clone(&bytes)))
                        } else {
                            Arc::new(Segment::new(vals, Arc::clone(&bytes)))
                        };
                        SnapPiece::new(hi, seg, 0, n)
                    })
                    .collect(),
            )
        };
        let plain = mk(false);
        let enc = mk(true);
        assert!(enc.pieces().iter().all(|p| !p.is_plain()));
        for (lo, hi) in [
            (i64::MIN, i64::MAX),
            (0, 300),
            (50, 150),
            (100, 200),
            (199, 251),
            (42, 42),
        ] {
            let a = plain.stats(lo, hi);
            let b = enc.stats(lo, hi);
            assert_eq!((a.count, a.sum), (b.count, b.sum), "[{lo},{hi})");
            assert_eq!(a.filtered, b.filtered, "edge-filter semantics differ");
            let (mut va, mut vb) = (Vec::new(), Vec::new());
            plain.collect_into(lo, hi, &mut va);
            enc.collect_into(lo, hi, &mut vb);
            va.sort_unstable();
            vb.sort_unstable();
            assert_eq!(va, vb, "[{lo},{hi})");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn encode_decode_roundtrip_i64(
                data in proptest::collection::vec(any::<i64>(), 0..300),
            ) {
                // Clamp away the MAX sentinel (domains never produce it).
                let data: Vec<i64> =
                    data.into_iter().map(|v| v.min(i64::MAX - 1)).collect();
                check_roundtrip(data);
            }

            #[test]
            fn encode_decode_roundtrip_narrow(
                data in proptest::collection::vec(0i64..5000, 0..300),
            ) {
                check_roundtrip(data);
            }

            #[test]
            fn encode_decode_roundtrip_i16(
                data in proptest::collection::vec(any::<i16>(), 0..300),
            ) {
                let data: Vec<i16> =
                    data.into_iter().map(|v| v.min(i16::MAX - 1)).collect();
                check_roundtrip(data);
            }

            #[test]
            fn encode_decode_roundtrip_u32(
                data in proptest::collection::vec(any::<u32>(), 0..300),
            ) {
                let data: Vec<u32> =
                    data.into_iter().map(|v| v.min(u32::MAX - 1)).collect();
                check_roundtrip(data);
            }
        }
    }
}
