//! Service-level latency and throughput accounting.
//!
//! The dispatcher records one end-to-end latency sample (enqueue →
//! completion) per query plus counters for admission decisions and engine
//! executions; [`StatsSummary`] condenses them into the sustained-QPS and
//! tail-latency numbers the service harnesses print.
//!
//! ## Registry-backed
//!
//! Every counter and the latency distribution live in the process-wide
//! `holix-telemetry` registry (labelled `svc="<instance>"`), so one text
//! exposition of a live service shows the same numbers the harness
//! summaries print. The per-completion hot path is lock-free: striped
//! counters plus a log-bucketed histogram replaced the old
//! `Mutex<Reservoir>` latency store (a measurable contention win under
//! concurrent completions); percentiles are now ≤ ~0.8% approximations
//! while the window maximum stays exact.
//!
//! ## Per-window reporting
//!
//! Harnesses interleave measured repetitions across service beds, so a
//! summary must cover *one rep window*, not the service's lifetime —
//! cumulative containment/snapshot counters would make later reps look
//! better than earlier ones. [`ServiceStats::reset_window`] snapshots every
//! counter as the new baseline and starts a fresh latency window;
//! [`ServiceStats::summary`] reports counters relative to that baseline.
//! Lifetime totals stay available through the individual accessors.

use holix_telemetry::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// One full set of live service counters, registered in the
        /// process-wide telemetry registry under
        /// `server_<name>_total{svc="<instance>"}`.
        #[derive(Debug)]
        struct Counters {
            $($(#[$doc])* $name: Arc<Counter>,)*
        }

        /// Live values at the last window reset.
        #[derive(Debug, Default)]
        struct Baselines {
            $($name: AtomicU64,)*
        }

        impl Counters {
            fn register(svc: u64) -> Self {
                let reg = holix_telemetry::registry();
                Counters {
                    $($name: reg.counter(&format!(
                        concat!("server_", stringify!($name), "_total{{svc=\"{}\"}}"),
                        svc
                    )),)*
                }
            }

            /// Copies every live value into `base` (starts a new window).
            /// Release stores pair with the Acquire loads in
            /// [`ServiceStats::summary`]'s `windowed` closure: a summary
            /// that observes the new baseline also observes every live
            /// increment the baseline covered (each counter stripe is
            /// monotone, so read-read coherence keeps `live >= base`).
            fn store_into(&self, base: &Baselines) {
                $(base.$name.store(self.$name.get(), Ordering::Release);)*
            }
        }
    };
}

counters! {
    submitted,
    completed,
    rejected,
    /// Engine executions performed. Crack-aware batching coalesces
    /// duplicate predicates inside a batch, so this can be below
    /// `completed`.
    executed,
    /// Queries answered by post-filtering a batched superset's values
    /// (containment coalescing) — strict subsets only.
    containment,
    /// Containment runs served through the engine's lock-free snapshot
    /// collect path instead of the shard-locking collect.
    snapshot_runs,
    /// Whole read-only queries the dispatcher routed through
    /// `execute_snapshot` because the cost model's snapshot/locked
    /// cutover said the snapshot's edge pieces beat the locked crack.
    snapshot_cutover,
    /// Spanning queries cut into per-shard sub-queries (each counts once,
    /// however many parts it produced).
    decomposed,
    /// Per-shard sub-queries produced by decomposition.
    decomposed_parts,
    /// Decomposed parts a full queue pushed back onto the submitting
    /// client (inline execution — decomposition's backpressure).
    decomp_inline,
    /// Cheap (exact-hit / near-optimal) queries admitted past a full
    /// queue — the "never shed" guarantee, via overflow slack or inline
    /// execution.
    admitted_cheap,
    /// Filter-screened point probes executed inline at submission: the
    /// membership filter priced them near-free, so they never spend a
    /// queue slot even under overload.
    screened_inline,
    /// Expensive queries served inline from the lock-free snapshot path
    /// instead of being shed (cost-based admission's downgrade).
    downgraded_snapshot,
    /// Rejections whose query priced Expensive at shed time.
    shed_expensive,
    /// Rejections whose query priced Cheap at shed time. Cost-aware
    /// admission keeps this at zero by construction; FIFO shedding does
    /// not.
    shed_cheap,
    /// Worker time spent servicing drained batches, ns (busy-fraction
    /// numerator; denominator is `workers × wall`).
    busy_ns,
}

/// Shared counters + latency distribution for one service instance.
#[derive(Debug)]
pub struct ServiceStats {
    live: Counters,
    /// Live values at the last [`ServiceStats::reset_window`].
    window: Baselines,
    /// End-to-end (enqueue → completion) latency, ns. Lock-free
    /// log-bucketed histogram in the registry (`server_latency{svc=..}`).
    latency: Arc<Histogram>,
    /// Live queue depth across the service's dispatch queues.
    queue_depth: Arc<Gauge>,
    /// Peak queue depth since the last window reset.
    queue_depth_peak: Arc<Gauge>,
}

/// The outcome classes of one plan-priced admission or routing decision
/// (traced per outcome into [`ServiceStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// A cheap query admitted past a full queue (overflow slack or
    /// inline execution) — never shed.
    CheapAdmitted,
    /// A filter-screened point probe executed inline at submission
    /// (near-free: the membership filter proves the typical probe empty).
    ScreenedInline,
    /// An expensive query served inline from the snapshot path instead of
    /// being shed.
    DowngradedSnapshot,
    /// An expensive query shed under overload.
    ShedExpensive,
    /// A cheap query shed (cost-blind policies only).
    ShedCheap,
    /// A whole read-only query routed through `execute_snapshot` by the
    /// cost cutover.
    SnapshotCutover,
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStats {
    /// Fresh, all-zero statistics registered under a fresh `svc` label
    /// (instances are numbered so concurrent service beds in one process
    /// never share a registry series).
    pub fn new() -> Self {
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);
        let svc = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
        let reg = holix_telemetry::registry();
        ServiceStats {
            live: Counters::register(svc),
            window: Baselines::default(),
            latency: reg.histogram(&format!("server_latency{{svc=\"{svc}\"}}")),
            queue_depth: reg.gauge(&format!("server_queue_depth{{svc=\"{svc}\"}}")),
            queue_depth_peak: reg.gauge(&format!("server_queue_depth_peak{{svc=\"{svc}\"}}")),
        }
    }

    /// Records a query accepted into the queue.
    pub fn record_submitted(&self) {
        self.live.submitted.inc();
    }

    /// Records a query turned away by admission control.
    pub fn record_rejected(&self) {
        self.live.rejected.inc();
    }

    /// Records one engine execution (which may answer several queries).
    pub fn record_executed(&self) {
        self.live.executed.inc();
    }

    /// Records a query answered by post-filtering a superset's result.
    pub fn record_containment(&self) {
        self.live.containment.inc();
    }

    /// Containment-coalesced queries over the service lifetime.
    pub fn containment(&self) -> u64 {
        self.live.containment.get()
    }

    /// Records a containment run answered from a snapshot (lock-free) read.
    pub fn record_snapshot_run(&self) {
        self.live.snapshot_runs.inc();
    }

    /// Snapshot-served containment runs over the service lifetime.
    pub fn snapshot_runs(&self) -> u64 {
        self.live.snapshot_runs.get()
    }

    /// Records a spanning query cut into `parts` per-shard sub-queries.
    pub fn record_decomposed(&self, parts: usize) {
        self.live.decomposed.inc();
        self.live.decomposed_parts.add(parts as u64);
    }

    /// Records a decomposed part executed inline on the submitting client.
    pub fn record_decomp_inline(&self) {
        self.live.decomp_inline.inc();
    }

    /// Records one plan-priced decision outcome.
    pub fn record_decision(&self, decision: PlanDecision) {
        let counter = match decision {
            PlanDecision::CheapAdmitted => &self.live.admitted_cheap,
            PlanDecision::ScreenedInline => &self.live.screened_inline,
            PlanDecision::DowngradedSnapshot => &self.live.downgraded_snapshot,
            PlanDecision::ShedExpensive => &self.live.shed_expensive,
            PlanDecision::ShedCheap => &self.live.shed_cheap,
            PlanDecision::SnapshotCutover => &self.live.snapshot_cutover,
        };
        counter.inc();
    }

    /// Records worker time spent servicing a drained batch.
    pub fn record_busy(&self, busy: Duration) {
        self.live.busy_ns.add(busy.as_nanos() as u64);
    }

    /// Records `n` queries entering the dispatch queues (raises the live
    /// queue-depth gauge and the window peak).
    pub fn queue_enqueued(&self, n: usize) {
        self.queue_depth.add(n as i64);
        self.queue_depth_peak.max(self.queue_depth.get());
    }

    /// Records `n` queries leaving the dispatch queues.
    pub fn queue_drained(&self, n: usize) {
        self.queue_depth.add(-(n as i64));
    }

    /// Live queue depth (submissions minus drains).
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.get()
    }

    /// Peak queue depth since the last [`ServiceStats::reset_window`].
    pub fn queue_depth_peak(&self) -> i64 {
        self.queue_depth_peak.get()
    }

    /// Starts a fresh measurement window: every counter's current value
    /// becomes the new baseline and the latency window restarts, so the
    /// next [`ServiceStats::summary`] covers only what happened after this
    /// call. Harnesses call it per interleaved rep (and after warmup) so
    /// per-bed comparisons are never cumulative.
    pub fn reset_window(&self) {
        self.live.store_into(&self.window);
        self.latency.reset_window();
        self.queue_depth_peak.set(self.queue_depth.get());
    }

    /// Records a completed query with its enqueue-to-completion latency.
    /// Lock-free: one striped-counter add plus one histogram record.
    pub fn record_completed(&self, latency: Duration) {
        self.live.completed.inc();
        self.latency.record(latency.as_nanos() as u64);
    }

    /// Queries accepted over the service lifetime.
    pub fn submitted(&self) -> u64 {
        self.live.submitted.get()
    }

    /// Queries rejected over the service lifetime.
    pub fn rejected(&self) -> u64 {
        self.live.rejected.get()
    }

    /// Queries completed over the service lifetime.
    pub fn completed(&self) -> u64 {
        self.live.completed.get()
    }

    /// Summarises the current window (since the last
    /// [`ServiceStats::reset_window`], or service start) over `wall`
    /// elapsed time.
    pub fn summary(&self, wall: Duration) -> StatsSummary {
        let lat = self.latency.snapshot();
        // Baseline FIRST, live second: live counters only grow, and any
        // baseline is a past value of its live counter, so this order
        // guarantees `live >= base` even when a `reset_window` races the
        // two loads — the other order let a racing reset store a *newer,
        // larger* baseline between them, and the subtraction (saturating
        // today, wrapping originally) collapsed the window to zero or to
        // garbage. The `saturating_sub` stays as a belt for the one case
        // order cannot fix: two resets racing each other mid-summary.
        let windowed = |live: &Counter, base: &AtomicU64| {
            let base = base.load(Ordering::Acquire);
            live.get().saturating_sub(base)
        };
        let completed = windowed(&self.live.completed, &self.window.completed);
        StatsSummary {
            submitted: windowed(&self.live.submitted, &self.window.submitted),
            completed,
            rejected: windowed(&self.live.rejected, &self.window.rejected),
            executed: windowed(&self.live.executed, &self.window.executed),
            containment: windowed(&self.live.containment, &self.window.containment),
            snapshot_runs: windowed(&self.live.snapshot_runs, &self.window.snapshot_runs),
            snapshot_cutover: windowed(&self.live.snapshot_cutover, &self.window.snapshot_cutover),
            decomposed: windowed(&self.live.decomposed, &self.window.decomposed),
            decomposed_parts: windowed(&self.live.decomposed_parts, &self.window.decomposed_parts),
            decomp_inline: windowed(&self.live.decomp_inline, &self.window.decomp_inline),
            admitted_cheap: windowed(&self.live.admitted_cheap, &self.window.admitted_cheap),
            screened_inline: windowed(&self.live.screened_inline, &self.window.screened_inline),
            downgraded_snapshot: windowed(
                &self.live.downgraded_snapshot,
                &self.window.downgraded_snapshot,
            ),
            shed_expensive: windowed(&self.live.shed_expensive, &self.window.shed_expensive),
            shed_cheap: windowed(&self.live.shed_cheap, &self.window.shed_cheap),
            busy_ns: windowed(&self.live.busy_ns, &self.window.busy_ns),
            queue_depth_peak: self.queue_depth_peak.get(),
            wall,
            qps: if wall.is_zero() {
                0.0
            } else {
                completed as f64 / wall.as_secs_f64()
            },
            p50: Duration::from_nanos(lat.percentile(0.50)),
            p95: Duration::from_nanos(lat.percentile(0.95)),
            p99: Duration::from_nanos(lat.percentile(0.99)),
            max: Duration::from_nanos(lat.max),
        }
    }
}

/// Condensed service metrics for one measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries answered.
    pub completed: u64,
    /// Queries turned away by admission control.
    pub rejected: u64,
    /// Engine executions (≤ completed when batching coalesces duplicates).
    pub executed: u64,
    /// Queries answered from a batched superset's post-filtered values.
    pub containment: u64,
    /// Containment runs whose superset was materialised through the
    /// engine's lock-free snapshot read path.
    pub snapshot_runs: u64,
    /// Whole read-only queries routed through `execute_snapshot` by the
    /// cost model's snapshot/locked cutover.
    pub snapshot_cutover: u64,
    /// Spanning queries cut into per-shard sub-queries.
    pub decomposed: u64,
    /// Per-shard sub-queries produced by decomposition.
    pub decomposed_parts: u64,
    /// Decomposed parts executed inline on the submitting client.
    pub decomp_inline: u64,
    /// Cheap queries admitted past a full queue (never shed).
    pub admitted_cheap: u64,
    /// Filter-screened point probes executed inline at submission.
    pub screened_inline: u64,
    /// Expensive queries downgraded to an inline snapshot read.
    pub downgraded_snapshot: u64,
    /// Rejections priced Expensive at shed time.
    pub shed_expensive: u64,
    /// Rejections priced Cheap at shed time (zero under cost-aware
    /// admission).
    pub shed_cheap: u64,
    /// Worker time spent servicing drained batches in the window, ns.
    pub busy_ns: u64,
    /// Peak queue depth observed in the window.
    pub queue_depth_peak: i64,
    /// Wall time the summary covers.
    pub wall: Duration,
    /// Sustained completions per second over `wall`.
    pub qps: f64,
    /// Median end-to-end latency (log-bucketed: ≤ ~0.8% relative error).
    pub p50: Duration,
    /// 95th-percentile end-to-end latency (log-bucketed).
    pub p95: Duration,
    /// 99th-percentile end-to-end latency (log-bucketed).
    pub p99: Duration,
    /// Worst observed end-to-end latency (exact, not bucketed).
    pub max: Duration,
}

/// Nearest-rank percentile over an ascending-sorted sample set; zero when
/// empty. `q` is a fraction in `[0, 1]`.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    /// Log-bucketed percentiles are ≤ ~0.8% approximations; windowed
    /// equality asserts use this bound (the spec allows 2%).
    fn assert_close(got: Duration, want: Duration) {
        let (g, w) = (got.as_nanos() as f64, want.as_nanos() as f64);
        assert!(
            (g - w).abs() <= w * 0.02,
            "latency {got:?} outside 2% of {want:?}"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&s, 0.50), ms(50));
        assert_eq!(percentile(&s, 0.95), ms(95));
        assert_eq!(percentile(&s, 0.99), ms(99));
        assert_eq!(percentile(&s, 1.0), ms(100));
        assert_eq!(percentile(&s, 0.0), ms(1)); // clamps to the first rank
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 0.99), ms(7));
    }

    #[test]
    fn summary_counts_and_qps() {
        let stats = ServiceStats::new();
        for i in 1..=10 {
            stats.record_submitted();
            stats.record_executed();
            stats.record_completed(ms(i));
        }
        stats.record_rejected();
        stats.record_containment();
        let s = stats.summary(Duration::from_secs(2));
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.executed, 10);
        assert_eq!(s.containment, 1);
        assert!((s.qps - 5.0).abs() < 1e-9);
        assert_close(s.p50, ms(5));
        assert_eq!(s.max, ms(10), "window max is exact, not bucketed");
    }

    #[test]
    fn summary_on_empty_stats() {
        let s = ServiceStats::new().summary(Duration::ZERO);
        assert_eq!(s.completed, 0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn window_reset_rebases_every_counter() {
        let stats = ServiceStats::new();
        stats.record_submitted();
        stats.record_executed();
        stats.record_completed(ms(3));
        stats.record_containment();
        stats.record_snapshot_run();
        stats.record_decomposed(4);
        stats.record_decomp_inline();
        stats.record_busy(ms(2));
        stats.record_decision(PlanDecision::CheapAdmitted);
        stats.record_decision(PlanDecision::DowngradedSnapshot);
        stats.record_decision(PlanDecision::ShedExpensive);
        stats.record_decision(PlanDecision::ShedCheap);
        stats.record_decision(PlanDecision::SnapshotCutover);
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!(
            (
                s.containment,
                s.snapshot_runs,
                s.decomposed,
                s.decomposed_parts
            ),
            (1, 1, 1, 4)
        );
        assert_eq!((s.admitted_cheap, s.downgraded_snapshot), (1, 1));
        assert_eq!(
            (s.shed_expensive, s.shed_cheap, s.snapshot_cutover),
            (1, 1, 1)
        );
        assert_eq!(s.busy_ns, ms(2).as_nanos() as u64);

        // Rep boundary: the next window starts at zero for EVERY counter
        // (and the latency window), while lifetime accessors keep the
        // totals.
        stats.reset_window();
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!(s.completed, 0);
        assert_eq!(s.containment, 0);
        assert_eq!(s.snapshot_runs, 0);
        assert_eq!(s.decomposed, 0);
        assert_eq!(s.admitted_cheap, 0);
        assert_eq!(s.busy_ns, 0);
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
        assert_eq!(stats.completed(), 1, "lifetime totals survive the reset");
        assert_eq!(stats.containment(), 1);

        // Work in the new window counts from the fresh baseline.
        stats.record_completed(ms(7));
        stats.record_containment();
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!((s.completed, s.containment), (1, 1));
        assert_close(s.p50, ms(7));
        assert_eq!(s.max, ms(7));
    }

    #[test]
    fn summary_racing_reset_never_wraps_or_overshoots() {
        // Regression for the summary/reset window race: `windowed` used to
        // load the live counter BEFORE the baseline, so a reset storing a
        // newer, larger baseline between the two loads made the window
        // subtraction wrap (or, saturated, collapse spuriously). Loading
        // the baseline first keeps `live >= base` under any interleaving;
        // the hammer asserts every windowed count stays within the
        // lifetime total — a wrapped subtraction lands near `u64::MAX`
        // and trips the bound immediately.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let stats = Arc::new(ServiceStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        const TOTAL: u64 = 200_000;

        let writer = {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                for _ in 0..TOTAL {
                    stats.record_submitted();
                    stats.record_executed();
                }
            })
        };
        let resetter = {
            let (stats, stop) = (Arc::clone(&stats), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    stats.reset_window();
                }
            })
        };
        let mut summaries = 0u64;
        while !writer.is_finished() {
            let s = stats.summary(Duration::from_secs(1));
            assert!(
                s.submitted <= TOTAL && s.executed <= TOTAL,
                "windowed count exceeds lifetime total (wrapped subtraction): {s:?}"
            );
            summaries += 1;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        resetter.join().unwrap();
        assert!(summaries > 0, "hammer produced no concurrent summaries");
        assert_eq!(stats.submitted(), TOTAL, "lifetime totals stay exact");
    }

    #[test]
    fn latency_store_is_bounded_and_windowed() {
        // The histogram that replaced the reservoir is fixed-size however
        // long the stream runs, keeps tails within the error bound, and a
        // window reset isolates epochs completely.
        let stats = ServiceStats::new();
        for i in 0..100_000u64 {
            stats.record_completed(Duration::from_micros(1 + i % 1000));
        }
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!(s.completed, 100_000);
        assert_close(s.p50, Duration::from_micros(500));
        assert_eq!(s.max, Duration::from_micros(1000));
        stats.reset_window();
        stats.record_completed(ms(9));
        let s = stats.summary(Duration::from_secs(1));
        assert_close(s.p50, ms(9));
        assert_eq!(s.max, ms(9), "pre-reset maximum must not leak");
    }

    #[test]
    fn queue_depth_and_busy_tracking() {
        let stats = ServiceStats::new();
        stats.queue_enqueued(3);
        stats.queue_enqueued(2);
        assert_eq!(stats.queue_depth(), 5);
        stats.queue_drained(4);
        assert_eq!(stats.queue_depth(), 1);
        assert_eq!(stats.queue_depth_peak(), 5, "peak survives the drain");
        stats.reset_window();
        assert_eq!(
            stats.queue_depth_peak(),
            1,
            "peak rebases to the live depth at the window boundary"
        );
        stats.record_busy(Duration::from_nanos(1234));
        assert_eq!(stats.summary(Duration::from_secs(1)).busy_ns, 1234);
    }

    #[test]
    fn instances_use_distinct_registry_series() {
        let a = ServiceStats::new();
        let b = ServiceStats::new();
        a.record_submitted();
        a.record_submitted();
        b.record_submitted();
        // Instances never share counters — a second bed in the same
        // process must not contaminate the first bed's series.
        assert_eq!(a.submitted(), 2);
        assert_eq!(b.submitted(), 1);
    }
}
