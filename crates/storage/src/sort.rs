//! Full indexing baseline: sorted column copies with binary-search selection.
//!
//! Offline and online indexing in the paper sort whole columns and answer
//! range selects with binary search. A [`SortedColumn`] keeps the sorted
//! values, the permutation back to base-table row ids, and a prefix-sum array
//! so verification checksums are O(1) after the O(log N) bound search.

use crate::select::{Predicate, RangeStats};
use crate::types::{CrackValue, RowId};

/// A fully sorted copy of a column.
#[derive(Debug, Clone)]
pub struct SortedColumn<V> {
    values: Vec<V>,
    rowids: Vec<RowId>,
    /// `prefix[i]` = sum of `values[..i]`; one extra slot so any half-open
    /// range is a single subtraction.
    prefix: Vec<i128>,
}

impl<V: CrackValue> SortedColumn<V> {
    /// Sorts a copy of `values` (single-threaded). The parallel variant lives
    /// in [`crate::psort`].
    pub fn build(values: &[V]) -> Self {
        let mut pairs: Vec<(V, RowId)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as RowId))
            .collect();
        pairs.sort_unstable();
        Self::from_sorted_pairs(pairs)
    }

    /// Assembles from already-sorted `(value, rowid)` pairs.
    pub(crate) fn from_sorted_pairs(pairs: Vec<(V, RowId)>) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut values = Vec::with_capacity(pairs.len());
        let mut rowids = Vec::with_capacity(pairs.len());
        let mut prefix = Vec::with_capacity(pairs.len() + 1);
        let mut running = 0i128;
        prefix.push(0);
        for (v, r) in pairs {
            values.push(v);
            rowids.push(r);
            running += v.as_i64() as i128;
            prefix.push(running);
        }
        SortedColumn {
            values,
            rowids,
            prefix,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Row ids aligned with [`SortedColumn::values`].
    pub fn rowids(&self) -> &[RowId] {
        &self.rowids
    }

    /// Half-open index range `[a, b)` of values satisfying the predicate —
    /// two binary searches, O(log N) data accesses.
    pub fn locate(&self, pred: Predicate<V>) -> (usize, usize) {
        if pred.is_empty() {
            return (0, 0);
        }
        let a = self.values.partition_point(|&v| v < pred.lo);
        let b = self.values.partition_point(|&v| v < pred.hi);
        (a, b)
    }

    /// Count and checksum of qualifying values using the prefix-sum array.
    pub fn select_stats(&self, pred: Predicate<V>) -> RangeStats {
        let (a, b) = self.locate(pred);
        RangeStats {
            count: (b - a) as u64,
            sum: self.prefix[b] - self.prefix[a],
        }
    }

    /// Base-table row ids of qualifying values (candidate list for
    /// projection).
    pub fn select_rowids(&self, pred: Predicate<V>) -> &[RowId] {
        let (a, b) = self.locate(pred);
        &self.rowids[a..b]
    }

    /// Heap bytes held (values + rowids + prefix sums).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * V::width()
            + self.rowids.len() * std::mem::size_of::<RowId>()
            + self.prefix.len() * std::mem::size_of::<i128>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::scan_stats;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[test]
    fn build_sorts_and_tracks_rowids() {
        let base = [30i64, 10, 20];
        let s = SortedColumn::build(&base);
        assert_eq!(s.values(), &[10, 20, 30]);
        assert_eq!(s.rowids(), &[1, 2, 0]);
        for (i, &r) in s.rowids().iter().enumerate() {
            assert_eq!(base[r as usize], s.values()[i]);
        }
    }

    #[test]
    fn locate_handles_bounds() {
        let s = SortedColumn::build(&[1i64, 3, 3, 5, 9]);
        assert_eq!(s.locate(Predicate::range(3, 6)), (1, 4));
        assert_eq!(s.locate(Predicate::range(0, 100)), (0, 5));
        assert_eq!(s.locate(Predicate::range(4, 4)), (0, 0));
        assert_eq!(s.locate(Predicate::range(100, 200)), (5, 5));
    }

    #[test]
    fn select_stats_matches_scan_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        let vals: Vec<i64> = (0..5000).map(|_| rng.random_range(-500..500)).collect();
        let s = SortedColumn::build(&vals);
        for _ in 0..50 {
            let a = rng.random_range(-600..600);
            let b = rng.random_range(-600..600);
            let pred = Predicate::range(a.min(b), a.max(b));
            assert_eq!(s.select_stats(pred), scan_stats(&vals, pred));
        }
    }

    #[test]
    fn select_rowids_point_at_qualifying_base_values() {
        let base = [7i32, 2, 9, 4, 2];
        let s = SortedColumn::build(&base);
        let pred = Predicate::range(2, 7);
        for &r in s.select_rowids(pred) {
            assert!(pred.matches(base[r as usize]));
        }
        assert_eq!(
            s.select_rowids(pred).len() as u64,
            scan_stats(&base, pred).count
        );
    }

    proptest! {
        #[test]
        fn prop_sorted_select_equals_scan(
            vals in proptest::collection::vec(-1000i64..1000, 0..300),
            lo in -1100i64..1100,
            len in 0i64..600,
        ) {
            let pred = Predicate::range(lo, lo.saturating_add(len));
            let s = SortedColumn::build(&vals);
            prop_assert_eq!(s.select_stats(pred), scan_stats(&vals, pred));
        }
    }
}
