//! Vendored minimal stand-in for `criterion` (no-network build).
//!
//! Supports the subset the `micro_kernels` bench target uses: `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery it
//! takes `sample_size` timed samples (default 10) after a couple of warm-up
//! iterations and reports the median per-iteration time as one CSV row:
//! `group/name,median_ns,samples`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration input sizing hint. Accepted for API compatibility; the shim
/// always re-runs the setup closure for every iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.into(), sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = if b.samples.is_empty() {
        Duration::ZERO
    } else {
        b.samples[b.samples.len() / 2]
    };
    println!("{id},{},{}", median.as_nanos(), b.samples.len());
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` directly, `budget` samples after two warm-ups.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("iter", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_feeds_fresh_input() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| seen.push(v.len()),
                BatchSize::SmallInput,
            )
        });
        assert!(seen.iter().all(|&n| n == 3));
        assert!(seen.len() >= 10);
    }
}
