//! Synthetic SkyServer trace (Fig 10(e) and the §5.3 real-life workload).
//!
//! The paper replays 10⁴ logged user queries on the `Photoobjall.ascension`
//! attribute and observes that "the queries follow non-random patterns, i.e.,
//! they focus on a specific part of the sky before moving to a different
//! part". The logged trace is not redistributable, so we synthesise exactly
//! that access shape (substitution documented in DESIGN.md): the query
//! stream *dwells* on one region — drifting slowly with small jitter — then
//! *jumps* to another region, producing the staircase of Fig 10(e).

use crate::patterns::QuerySpec;
use rand::prelude::*;

/// Parameters of the dwell-and-jump trace.
#[derive(Debug, Clone)]
pub struct SkyServerSpec {
    /// Number of queries (paper: 10⁴).
    pub n_queries: usize,
    /// Value domain of the ascension attribute.
    pub domain: i64,
    /// Mean queries spent in one region before jumping.
    pub dwell: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkyServerSpec {
    fn default() -> Self {
        SkyServerSpec {
            n_queries: 10_000,
            domain: 1 << 30,
            dwell: 400,
            seed: 2015,
        }
    }
}

impl SkyServerSpec {
    /// Generates the trace; all queries target attribute 0 (the paper's
    /// single `ascension` attribute).
    pub fn generate(&self) -> Vec<QuerySpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let domain = self.domain.max(1_000);
        // Narrow windows: telescope fields cover a sliver of the sky.
        let window = (domain / 500).max(1);
        let drift = (window / 4).max(1);

        let mut out = Vec::with_capacity(self.n_queries);
        let mut center = rng.random_range(0..domain);
        let mut remaining_dwell = self.sample_dwell(&mut rng);
        for _ in 0..self.n_queries {
            if remaining_dwell == 0 {
                center = rng.random_range(0..domain);
                remaining_dwell = self.sample_dwell(&mut rng);
            }
            remaining_dwell -= 1;
            // Slow drift plus jitter within the current region.
            center = (center + rng.random_range(-drift..=drift)).clamp(0, domain - 1);
            let lo = (center - window / 2).clamp(0, domain - 1);
            let hi = (lo + window).clamp(lo + 1, domain);
            out.push(QuerySpec { attr: 0, lo, hi });
        }
        out
    }

    fn sample_dwell(&self, rng: &mut StdRng) -> usize {
        let d = self.dwell.max(2);
        rng.random_range(d / 2..=d + d / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length_and_valid_ranges() {
        let spec = SkyServerSpec {
            n_queries: 2_000,
            ..Default::default()
        };
        let qs = spec.generate();
        assert_eq!(qs.len(), 2_000);
        for q in &qs {
            assert!(q.lo < q.hi);
            assert!(q.lo >= 0 && q.hi <= spec.domain);
            assert_eq!(q.attr, 0);
        }
    }

    #[test]
    fn trace_dwells_then_jumps() {
        let spec = SkyServerSpec {
            n_queries: 4_000,
            dwell: 200,
            ..Default::default()
        };
        let qs = spec.generate();
        // Consecutive queries are near each other most of the time (dwell),
        // but large jumps exist.
        let window = spec.domain / 500;
        let mut near = 0usize;
        let mut far = 0usize;
        for w in qs.windows(2) {
            if (w[1].lo - w[0].lo).abs() < 4 * window {
                near += 1;
            } else if (w[1].lo - w[0].lo).abs() > spec.domain / 20 {
                far += 1;
            }
        }
        assert!(near > qs.len() * 8 / 10, "near={near}");
        assert!(far >= 5, "far={far}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SkyServerSpec::default().generate();
        let b = SkyServerSpec::default().generate();
        assert_eq!(a, b);
    }
}
