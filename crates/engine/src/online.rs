//! Online indexing baseline (COLT-style, §5.1): monitor for the first `K`
//! queries (answering them with plain scans), then reorganise the physical
//! design — sort every queried column — with the cost charged to query
//! `K + 1`.

use crate::api::{Capabilities, Dataset, QueryEngine};
use holix_cracking::PointFilter;
use holix_storage::pscan::{parallel_scan_count, parallel_scan_stats};
use holix_storage::psort::parallel_sort;
use holix_storage::select::Predicate;
use holix_storage::sort::SortedColumn;
use holix_workloads::QuerySpec;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Scan-then-sort engine.
pub struct OnlineEngine {
    data: Dataset,
    threads: usize,
    /// Queries answered before the physical design is reconsidered
    /// (paper: 100).
    monitor_queries: usize,
    executed: AtomicUsize,
    sorted: RwLock<Option<Vec<SortedColumn<i64>>>>,
    /// Lazily built per-attribute point-membership filters: the base table
    /// is immutable here, so one Bloom pass per attribute screens every
    /// later provably-absent equality/IN probe without a scan — in either
    /// phase (the monitoring scans *and* the sorted binary searches).
    filters: Vec<RwLock<Option<Arc<PointFilter>>>>,
}

impl OnlineEngine {
    /// Online engine that reorganises after `monitor_queries` queries.
    pub fn new(data: Dataset, threads: usize, monitor_queries: usize) -> Self {
        let filters = (0..data.attrs()).map(|_| RwLock::new(None)).collect();
        OnlineEngine {
            data,
            threads: threads.max(1),
            monitor_queries,
            executed: AtomicUsize::new(0),
            sorted: RwLock::new(None),
            filters,
        }
    }

    /// Gets (or builds on first probe) the attribute's point filter.
    fn filter(&self, attr: usize) -> Arc<PointFilter> {
        {
            let guard = self.filters[attr].read();
            if let Some(f) = guard.as_ref() {
                return Arc::clone(f);
            }
        }
        let mut guard = self.filters[attr].write();
        if let Some(f) = guard.as_ref() {
            return Arc::clone(f);
        }
        let col = self.data.column(attr);
        let f = Arc::new(PointFilter::with_capacity(col.len()));
        for &v in col {
            f.insert(v);
        }
        *guard = Some(Arc::clone(&f));
        f
    }

    fn maybe_reorganize(&self) -> bool {
        let n = self.executed.fetch_add(1, Ordering::SeqCst) + 1;
        if n <= self.monitor_queries {
            return false;
        }
        let mut guard = self.sorted.write();
        if guard.is_none() {
            let cols = (0..self.data.attrs())
                .map(|a| parallel_sort(self.data.column(a), self.threads))
                .collect();
            *guard = Some(cols);
        }
        true
    }
}

impl QueryEngine for OnlineEngine {
    fn name(&self) -> &'static str {
        "online"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            workload_analysis: true,
            idle_before_queries: false,
            idle_during_queries: true,
            full_materialization: true,
            high_update_cost: true,
            dynamic: true,
            point_screening: true,
        }
    }

    fn execute(&self, q: &QuerySpec) -> u64 {
        let pred = Predicate::range(q.lo, q.hi);
        if !self.maybe_reorganize() {
            return parallel_scan_count(self.data.column(q.attr), pred, self.threads);
        }
        let guard = self.sorted.read();
        let s = &guard.as_ref().expect("sorted after reorganization")[q.attr];
        let (a, b) = s.locate(pred);
        (b - a) as u64
    }

    fn execute_verified(&self, q: &QuerySpec) -> (u64, i128) {
        let pred = Predicate::range(q.lo, q.hi);
        if !self.maybe_reorganize() {
            let s = parallel_scan_stats(self.data.column(q.attr), pred, self.threads);
            return (s.count, s.sum);
        }
        let guard = self.sorted.read();
        let s = guard.as_ref().expect("sorted after reorganization")[q.attr].select_stats(pred);
        (s.count, s.sum)
    }

    fn execute_points(&self, attr: usize, values: &[i64]) -> Option<u64> {
        // Dedupe: an IN list counts each qualifying tuple once.
        let mut vals: Vec<i64> = values.to_vec();
        vals.sort_unstable();
        vals.dedup();
        let filter = self.filter(attr);
        let mut total = 0u64;
        for v in vals {
            if v == i64::MAX {
                continue; // the sentinel cannot be probed (empty unit range)
            }
            if !filter.contains(v) {
                continue; // proven absent: no scan, no monitor tick
            }
            // Maybe-present: the ordinary unit range — a monitored scan or
            // a sorted binary search, whichever phase we are in. It ticks
            // the monitor counter like any user query.
            total += self.execute(&QuerySpec {
                attr,
                lo: v,
                hi: v + 1,
            });
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_then_sorts_at_threshold() {
        let data = Dataset::new(vec![(0..5_000).rev().collect()]);
        let e = OnlineEngine::new(data, 2, 5);
        let q = QuerySpec {
            attr: 0,
            lo: 100,
            hi: 300,
        };
        for i in 0..5 {
            assert_eq!(e.execute(&q), 200, "query {i}");
            assert!(e.sorted.read().is_none(), "sorted too early at {i}");
        }
        assert_eq!(e.execute(&q), 200); // 6th query triggers the sort
        assert!(e.sorted.read().is_some());
        assert_eq!(e.execute(&q), 200);
    }

    #[test]
    fn execute_points_screens_absent_values_without_scanning() {
        let data = Dataset::new(vec![(0..10_000).map(|i| i * 2).collect()]); // evens
        let e = OnlineEngine::new(data, 1, 3);
        // Absent (odd) probes screen out on the filter: no scan runs, so
        // the monitor counter never ticks and the sort is never triggered.
        let odds: Vec<i64> = (0..100).map(|i| i * 2 + 1).collect();
        assert_eq!(e.execute_points(0, &odds).unwrap(), 0);
        assert_eq!(e.executed.load(Ordering::SeqCst), 0);
        assert!(e.sorted.read().is_none());
        // Present values fall through to ordinary unit ranges (which do
        // tick the monitor) and count exactly once despite duplicates.
        assert_eq!(e.execute_points(0, &[4, 4, 5, 19_998]).unwrap(), 2);
        assert_eq!(e.executed.load(Ordering::SeqCst), 2);
        // The screen keeps working after the reorganisation too.
        for _ in 0..4 {
            e.execute(&QuerySpec {
                attr: 0,
                lo: 0,
                hi: 10,
            });
        }
        assert!(e.sorted.read().is_some());
        let before = e.executed.load(Ordering::SeqCst);
        assert_eq!(e.execute_points(0, &odds).unwrap(), 0);
        assert_eq!(e.executed.load(Ordering::SeqCst), before);
    }

    #[test]
    fn verified_path_consistent_across_phases() {
        let data = Dataset::new(vec![(0..1_000).collect()]);
        let e = OnlineEngine::new(data, 1, 2);
        let q = QuerySpec {
            attr: 0,
            lo: 10,
            hi: 20,
        };
        let expect = (10u64, (10..20).sum::<i64>() as i128);
        for _ in 0..5 {
            assert_eq!(e.execute_verified(&q), expect);
        }
    }
}
