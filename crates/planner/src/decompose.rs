//! Spanning-query decomposition: cut a multi-shard range predicate into
//! per-shard sub-queries at the shard plan's cut values.
//!
//! Shard-affine dispatch routes a query by its *home* (lower-bound) shard;
//! a range spanning shards otherwise executes whole on one pinned worker,
//! reaching across every other shard's latches. Cutting the range at the
//! plan's boundaries gives each sub-query a range wholly inside one shard
//! — its routing key *is* that shard — so even wide scans never break
//! shard/worker affinity: each part runs on its pinned worker, interior
//! parts clamp to sentinels (zero cracks), and a merge ticket folds the
//! per-part counts back into one answer.

use holix_cracking::ShardPlan;
use holix_workloads::QuerySpec;

/// Cuts `q` at the plan's shard boundaries. Returns `None` when the range
/// lies within a single shard (nothing to decompose) or the plan has one
/// shard; otherwise one sub-query per intersected shard, in ascending
/// value order, whose half-open ranges partition `[q.lo, q.hi)` exactly.
pub fn decompose_spanning(plan: &ShardPlan<i64>, q: &QuerySpec) -> Option<Vec<QuerySpec>> {
    let (first, last) = plan.shard_range(q.lo, q.hi)?;
    if first == last {
        return None;
    }
    let cuts = plan.cuts();
    let parts = (first..=last)
        .map(|k| QuerySpec {
            attr: q.attr,
            lo: if k == first { q.lo } else { cuts[k - 1] },
            hi: if k == last { q.hi } else { cuts[k] },
        })
        .filter(|p| p.lo < p.hi)
        .collect::<Vec<_>>();
    debug_assert!(parts.len() >= 2, "spanning range produced {parts:?}");
    Some(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_cracking::ShardPlan;

    fn plan(cuts: &[i64]) -> ShardPlan<i64> {
        ShardPlan::from_cuts(cuts.to_vec())
    }

    fn q(lo: i64, hi: i64) -> QuerySpec {
        QuerySpec { attr: 3, lo, hi }
    }

    #[test]
    fn parts_partition_the_range_exactly() {
        let p = plan(&[100, 200, 300]);
        assert_eq!(p.shards(), 4);
        let parts = decompose_spanning(&p, &q(50, 250)).unwrap();
        assert_eq!(parts.len(), 3);
        // Exact partition: consecutive, covering, same attr.
        assert_eq!(parts[0].lo, 50);
        assert_eq!(parts.last().unwrap().hi, 250);
        for w in parts.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
        assert!(parts.iter().all(|p| p.attr == 3 && p.lo < p.hi));
        // Each part lies within one shard.
        for part in &parts {
            let (a, b) = p.shard_range(part.lo, part.hi).unwrap();
            assert_eq!(a, b, "part {part:?} spans shards");
        }
    }

    #[test]
    fn single_shard_ranges_do_not_decompose() {
        let p = plan(&[100, 200, 300]);
        assert!(decompose_spanning(&p, &q(110, 190)).is_none());
        assert!(
            decompose_spanning(&p, &q(100, 200)).is_none(),
            "exact shard"
        );
        assert!(decompose_spanning(&p, &q(5, 5)).is_none(), "empty");
        assert!(decompose_spanning(&ShardPlan::single(), &q(0, 1_000)).is_none());
    }

    #[test]
    fn exact_cut_bounds_split_cleanly() {
        let p = plan(&[100, 200, 300]);
        let parts = decompose_spanning(&p, &q(100, 300)).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!((parts[0].lo, parts[0].hi), (100, 200));
        assert_eq!((parts[1].lo, parts[1].hi), (200, 300));
    }
}
