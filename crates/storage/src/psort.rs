//! Parallel sort — stand-in for the NUMA-aware m-way sort the paper uses for
//! its offline/online indexing baselines ([9] in the paper).
//!
//! Strategy: split into `threads` chunks, sort each chunk in its own thread,
//! then merge pairs of sorted runs in parallel passes (log₂ passes over a
//! scratch buffer). The substitution is documented in DESIGN.md: baselines
//! only require "a fast parallel sort whose cost lands on one query".

use crate::sort::SortedColumn;
use crate::types::{CrackValue, RowId};

/// Builds a [`SortedColumn`] using up to `threads` worker threads.
pub fn parallel_sort<V: CrackValue>(values: &[V], threads: usize) -> SortedColumn<V> {
    let threads = threads.max(1);
    const MIN_PARALLEL: usize = 1 << 14;
    if threads == 1 || values.len() < MIN_PARALLEL {
        return SortedColumn::build(values);
    }

    let mut pairs: Vec<(V, RowId)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as RowId))
        .collect();

    // Phase 1: sort chunks in parallel.
    let chunk = pairs.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for part in pairs.chunks_mut(chunk) {
            s.spawn(move |_| part.sort_unstable());
        }
    })
    .expect("sort scope panicked");

    // Phase 2: parallel pairwise merge passes. Run boundaries follow the
    // chunk layout of phase 1 and coarsen by 2 each pass.
    let n = pairs.len();
    let mut scratch: Vec<(V, RowId)> = Vec::with_capacity(n);
    // SAFETY-free alternative to uninitialised memory: pre-fill the scratch
    // buffer once; merge passes overwrite every slot they read back.
    scratch.resize(n, pairs[0]);

    let mut src = &mut pairs;
    let mut dst = &mut scratch;
    let mut run = chunk;
    while run < n {
        crossbeam::thread::scope(|s| {
            let mut src_rest: &[(V, RowId)] = src;
            let mut dst_rest: &mut [(V, RowId)] = dst;
            while !src_rest.is_empty() {
                let left_len = run.min(src_rest.len());
                let pair_len = (2 * run).min(src_rest.len());
                let (src_pair, tail_s) = src_rest.split_at(pair_len);
                let (dst_pair, tail_d) = dst_rest.split_at_mut(pair_len);
                src_rest = tail_s;
                dst_rest = tail_d;
                s.spawn(move |_| merge_runs(src_pair, left_len, dst_pair));
            }
        })
        .expect("merge scope panicked");
        std::mem::swap(&mut src, &mut dst);
        run *= 2;
    }

    let sorted = std::mem::take(src);
    SortedColumn::from_sorted_pairs(sorted)
}

/// Merges `src[..left_len]` and `src[left_len..]` (both sorted) into `dst`.
fn merge_runs<V: CrackValue>(src: &[(V, RowId)], left_len: usize, dst: &mut [(V, RowId)]) {
    debug_assert_eq!(src.len(), dst.len());
    let (left, right) = src.split_at(left_len);
    let (mut i, mut j) = (0, 0);
    for slot in dst.iter_mut() {
        let take_left = j >= right.len() || (i < left.len() && left[i] <= right[j]);
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{scan_stats, Predicate};
    use rand::prelude::*;

    #[test]
    fn merge_runs_interleaves() {
        let src = [(1i64, 0u32), (4, 1), (2, 2), (3, 3)];
        let mut dst = [(0i64, 0u32); 4];
        merge_runs(&src, 2, &mut dst);
        assert_eq!(dst.map(|p| p.0), [1, 2, 3, 4]);
    }

    #[test]
    fn parallel_matches_sequential_small() {
        let vals: Vec<i64> = vec![5, 3, 9, 1, 1, 7];
        let p = parallel_sort(&vals, 4);
        let s = SortedColumn::build(&vals);
        assert_eq!(p.values(), s.values());
    }

    #[test]
    fn parallel_matches_sequential_large_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<i64> = (0..(1 << 16) + 117)
            .map(|_| rng.random_range(0..10_000))
            .collect();
        for t in [2, 3, 8] {
            let p = parallel_sort(&vals, t);
            assert!(p.values().windows(2).all(|w| w[0] <= w[1]), "t={t}");
            assert_eq!(p.len(), vals.len());
            // Row ids still point at equal base values.
            for (i, &r) in p.rowids().iter().enumerate().step_by(997) {
                assert_eq!(vals[r as usize], p.values()[i]);
            }
            // Selection agrees with a scan oracle.
            let pred = Predicate::range(2_000, 7_500);
            assert_eq!(p.select_stats(pred), scan_stats(&vals, pred));
        }
    }

    #[test]
    fn rowid_permutation_is_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let vals: Vec<i32> = (0..(1 << 15) + 13)
            .map(|_| rng.random_range(0..100))
            .collect();
        let p = parallel_sort(&vals, 4);
        let mut seen = vec![false; vals.len()];
        for &r in p.rowids() {
            assert!(!seen[r as usize], "duplicate rowid {r}");
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
