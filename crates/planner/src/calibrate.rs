//! Online cost-model calibration: regress observed service time against
//! the [`PlanCost`] that admitted the query, and nudge the model's
//! constants inside guard rails.
//!
//! The seeded [`CostModel`] constants encode a nominal machine (~25 ns
//! per touched value). Real hardware diverges — a faster cache raises
//! the touched-value budget a "cheap" query can afford; a slow Ripple
//! merge path raises the weight a pending update deserves. The
//! calibrator learns two rates by exponentially weighted moving average:
//!
//! - **alpha** — ns per touched value, sampled from backlog-free
//!   `Locked` executions (`service / (crack_values + est_rows)`),
//! - **beta** — ns per pending Ripple op, sampled from backlogged
//!   `Locked` executions after subtracting the alpha-predicted value
//!   work,
//! - **gamma** — ns per decoded edge-filter value, sampled from
//!   `Snapshot` executions that touched encoded pieces, after
//!   subtracting the alpha-predicted plain-filter work (only once alpha
//!   is seeded, so a decode sample is never priced against the nominal
//!   machine),
//!
//! and re-derives the knobs every [`Calibrator::REPUBLISH_EVERY`]
//! observations: `merge_weight ← beta/alpha` (the model's unit *is*
//! alpha), `decode_weight ← gamma/alpha`, `cheap_budget ←
//! TARGET_CHEAP_NS/alpha`, `downgrade_budget ←
//! TARGET_DOWNGRADE_NS/alpha`. Every derived knob is clamped to
//! `[seed/4, seed*4]` so a burst of anomalous timings (page faults, CPU
//! migration) can never swing admission by more than 4x from the
//! reviewed constants.
//!
//! Readers take a `Copy` of the whole model ([`Calibrator::model`]), so
//! a query prices itself against one consistent constant set even while
//! the calibrator republishes — the same publish-then-read discipline as
//! the shard plan's epoch cell.

use std::sync::{Mutex, RwLock};

use crate::cost::{CostModel, PlanCost, Route};

/// EWMA smoothing factor: ~the last 20 samples dominate.
const EWMA_ALPHA: f64 = 0.1;

/// Target wall time for the admission cheap line. At the nominal
/// 25 ns/value this reproduces the seeded `cheap_budget` of 4096.
const TARGET_CHEAP_NS: f64 = 102_400.0;

/// Target wall time for the snapshot downgrade budget. At the nominal
/// 25 ns/value this reproduces the seeded `downgrade_budget` of 32768.
const TARGET_DOWNGRADE_NS: f64 = 819_200.0;

/// Which channel a predicted-vs-actual residual is folded into: the
/// executed route, with point-filter screens split out (their near-zero
/// cost would mask a drifting locked channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidualChannel {
    /// Locked crack path (non-screened).
    Locked,
    /// Lock-free snapshot path.
    Snapshot,
    /// Answered by a point-filter screen.
    Screened,
}

impl ResidualChannel {
    fn of(cost: &PlanCost, route: Route) -> Self {
        if cost.screened {
            ResidualChannel::Screened
        } else {
            match route {
                Route::Locked => ResidualChannel::Locked,
                Route::Snapshot => ResidualChannel::Snapshot,
            }
        }
    }
}

#[derive(Debug, Default)]
struct CalState {
    /// EWMA ns per touched value on the locked path (0 until seeded).
    ns_per_value: f64,
    /// EWMA ns per pending Ripple op (0 until seeded).
    ns_per_merge: f64,
    /// EWMA ns per decoded edge-filter value (0 until seeded).
    ns_per_decoded: f64,
    /// Per-channel EWMA of `|predicted − actual| / actual` (calibrator
    /// health: → 0 as the rails adjust to the machine).
    residuals: [f64; 3],
    /// Whether each residual channel has folded a sample yet (a residual
    /// of exactly 0 is a valid — perfect — sample, so "unseeded" cannot
    /// be encoded as 0 the way the rate channels do).
    residual_seeded: [bool; 3],
    observations: u64,
}

fn ewma(slot: &mut f64, sample: f64) {
    if !sample.is_finite() || sample <= 0.0 {
        return;
    }
    *slot = if *slot == 0.0 {
        sample
    } else {
        *slot * (1.0 - EWMA_ALPHA) + sample * EWMA_ALPHA
    };
}

/// Clamp a derived knob to the guard rails around its seeded value.
fn rail(derived: f64, seed: u64) -> u64 {
    let lo = (seed / 4).max(1);
    let hi = seed.saturating_mul(4);
    if !derived.is_finite() {
        return seed;
    }
    (derived.round() as u64).clamp(lo, hi)
}

/// Online regressor from `(PlanCost, Route, service_ns)` observations to
/// a republished [`CostModel`]. Shared by value behind an `Arc`: the
/// dispatcher observes after each execution, admission reads
/// [`Calibrator::model`] before each decision.
#[derive(Debug)]
pub struct Calibrator {
    seed: CostModel,
    model: RwLock<CostModel>,
    state: Mutex<CalState>,
}

impl Calibrator {
    /// Derived knobs are recomputed and republished every this many
    /// observations — cheap enough to keep admission reads lock-light
    /// while still tracking a drifting machine within a few batches.
    pub const REPUBLISH_EVERY: u64 = 16;

    pub fn new(seed: CostModel) -> Self {
        Calibrator {
            seed,
            model: RwLock::new(seed),
            state: Mutex::new(CalState::default()),
        }
    }

    /// The currently published model (a `Copy` — consistent for the
    /// whole pricing of one query).
    pub fn model(&self) -> CostModel {
        *self.model.read().unwrap()
    }

    /// The reviewed constants the guard rails are anchored to.
    pub fn seed(&self) -> CostModel {
        self.seed
    }

    /// Total observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.state.lock().unwrap().observations
    }

    /// EWMA of `|predicted − actual| / actual` for one residual channel
    /// (0 until that channel has observed anything). Converges toward 0
    /// as calibration pulls the published model onto the machine.
    pub fn residual(&self, channel: ResidualChannel) -> f64 {
        let st = self.state.lock().unwrap();
        st.residuals[channel as usize]
    }

    /// Predicted service time (ns) for `cost` on `route` under the
    /// current calibration state — the same prediction the residual
    /// channels grade, exposed so per-query trace records can carry
    /// predicted-vs-actual.
    pub fn predicted_ns(&self, cost: &PlanCost, route: Route) -> u64 {
        let st = self.state.lock().unwrap();
        self.predict_ns(&st, cost, route) as u64
    }

    /// Predicted service time (ns) for `cost` on `route` under the
    /// currently published model: cost units × the calibrated value rate
    /// (or the seed-implied nominal rate until alpha is seeded).
    fn predict_ns(&self, st: &CalState, cost: &PlanCost, route: Route) -> f64 {
        let model = *self.model.read().unwrap();
        let locked_units = cost.locked_cost(&model).saturating_add(cost.est_rows);
        let units = match route {
            Route::Locked => locked_units,
            Route::Snapshot => cost.snapshot_cost(&model).unwrap_or(locked_units),
        };
        let rate = if st.ns_per_value > 0.0 {
            st.ns_per_value
        } else {
            TARGET_CHEAP_NS / self.seed.cheap_budget.max(1) as f64
        };
        units.max(1) as f64 * rate
    }

    /// Folds one finished execution into the per-channel residual EWMAs
    /// and mirrors the calibrator channels into the telemetry registry.
    fn fold_residual(&self, st: &mut CalState, cost: &PlanCost, route: Route, actual_ns: f64) {
        let channel = ResidualChannel::of(cost, route);
        let rel = (self.predict_ns(st, cost, route) - actual_ns).abs() / actual_ns;
        let slot = &mut st.residuals[channel as usize];
        if st.residual_seeded[channel as usize] {
            *slot = *slot * (1.0 - EWMA_ALPHA) + rel * EWMA_ALPHA;
        } else {
            *slot = rel;
            st.residual_seeded[channel as usize] = true;
        }
        if holix_telemetry::metrics_enabled() {
            holix_telemetry::counter!("planner_observations_total").inc();
            holix_telemetry::float_gauge!("planner_ns_per_value").set(st.ns_per_value);
            holix_telemetry::float_gauge!("planner_ns_per_merge").set(st.ns_per_merge);
            holix_telemetry::float_gauge!("planner_ns_per_decoded").set(st.ns_per_decoded);
            let g = match channel {
                ResidualChannel::Locked => {
                    holix_telemetry::float_gauge!("planner_calibration_residual{route=\"locked\"}")
                }
                ResidualChannel::Snapshot => holix_telemetry::float_gauge!(
                    "planner_calibration_residual{route=\"snapshot\"}"
                ),
                ResidualChannel::Screened => holix_telemetry::float_gauge!(
                    "planner_calibration_residual{route=\"screened\"}"
                ),
            };
            g.set(*slot);
        }
    }

    /// Folds one finished execution into the regression. `cost` is the
    /// plan-time price the query was admitted under, `route` the path it
    /// actually took, `service_ns` its measured service time.
    pub fn observe(&self, cost: &PlanCost, route: Route, service_ns: u64) {
        let mut st = self.state.lock().unwrap();
        let ns = service_ns.max(1) as f64;
        self.fold_residual(&mut st, cost, route, ns);
        if route == Route::Locked && !cost.screened {
            let values = cost.crack_values.saturating_add(cost.est_rows).max(1) as f64;
            if cost.merge_backlog == 0 {
                ewma(&mut st.ns_per_value, ns / values);
            } else if st.ns_per_value > 0.0 {
                let merge_ns = (ns - st.ns_per_value * values).max(0.0);
                ewma(&mut st.ns_per_merge, merge_ns / cost.merge_backlog as f64);
            }
        } else if route == Route::Snapshot && cost.decode_rows > 0 && st.ns_per_value > 0.0 {
            // Gamma: what the encoded edge rows cost *beyond* the
            // alpha-predicted plain filter + per-shard snapshot overhead.
            // Kernel-fast decodes leave almost nothing after the
            // subtraction, so the sample is floored at alpha/64 (one block
            // amortised per value) instead of discarded — a machine whose
            // decode is too fast to measure must still pull decode_weight
            // DOWN, not leave it at the scalar-era seed.
            if let Some(filter) = cost.snapshot_filter {
                let plain_ns = st.ns_per_value
                    * (filter as f64
                        + self.seed.snapshot_fixed as f64 * cost.shards_touched as f64);
                let decode_ns = (ns - plain_ns).max(0.0);
                let sample = (decode_ns / cost.decode_rows as f64).max(st.ns_per_value / 64.0);
                ewma(&mut st.ns_per_decoded, sample);
            }
        }
        st.observations += 1;
        if st.observations.is_multiple_of(Self::REPUBLISH_EVERY) {
            let next = self.derive(&st);
            drop(st);
            *self.model.write().unwrap() = next;
            if holix_telemetry::metrics_enabled() {
                holix_telemetry::counter!("planner_republish_total").inc();
                holix_telemetry::gauge!("planner_cheap_budget").set(next.cheap_budget as i64);
                holix_telemetry::gauge!("planner_downgrade_budget")
                    .set(next.downgrade_budget as i64);
                holix_telemetry::gauge!("planner_merge_weight").set(next.merge_weight as i64);
                holix_telemetry::gauge!("planner_decode_weight").set(next.decode_weight as i64);
            }
        }
    }

    fn derive(&self, st: &CalState) -> CostModel {
        let mut m = self.seed;
        if st.ns_per_value > 0.0 {
            m.cheap_budget = rail(TARGET_CHEAP_NS / st.ns_per_value, self.seed.cheap_budget);
            m.downgrade_budget = rail(
                TARGET_DOWNGRADE_NS / st.ns_per_value,
                self.seed.downgrade_budget,
            );
            if st.ns_per_merge > 0.0 {
                m.merge_weight = rail(st.ns_per_merge / st.ns_per_value, self.seed.merge_weight);
            }
            if st.ns_per_decoded > 0.0 {
                m.decode_weight =
                    rail(st.ns_per_decoded / st.ns_per_value, self.seed.decode_weight);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QueryPrice;

    fn locked_cost(crack_values: u64, merge_backlog: u64) -> PlanCost {
        PlanCost {
            crack_values,
            scan_rows: crack_values,
            merge_backlog,
            shards_touched: 1,
            ..PlanCost::default()
        }
    }

    /// The acceptance-gate decision flip: a query priced `Expensive`
    /// under the seeded constants becomes `Cheap` once observed timings
    /// show the machine is much faster than the nominal 25 ns/value.
    #[test]
    fn fast_hardware_flips_an_admission_decision() {
        let cal = Calibrator::new(CostModel::default());
        let seed = cal.seed();
        let cost = locked_cost(3 * seed.cheap_budget, 0);
        assert_eq!(
            cost.price(&cal.model()),
            QueryPrice::Expensive,
            "seeded constants shed this crack"
        );
        // Observed: 1 ns per touched value — 25x faster than nominal.
        for _ in 0..4 * Calibrator::REPUBLISH_EVERY {
            cal.observe(&cost, Route::Locked, cost.crack_values);
        }
        let m = cal.model();
        assert_eq!(
            m.cheap_budget,
            seed.cheap_budget * 4,
            "budget rails at 4x the seed"
        );
        assert_eq!(
            cost.price(&m),
            QueryPrice::Cheap,
            "the same plan is now admitted inline"
        );
    }

    /// The cutover flip in the other direction: a snapshot downgrade that
    /// paid under the seeded constants stops paying once the machine is
    /// observed to be slow (the inline filter would itself be overload).
    #[test]
    fn slow_hardware_flips_a_cutover_decision() {
        let cal = Calibrator::new(CostModel::default());
        let seed = cal.seed();
        let cost = PlanCost {
            crack_values: 500_000,
            scan_rows: 500_000,
            snapshot_filter: Some(20_000),
            shards_touched: 1,
            ..PlanCost::default()
        };
        assert!(
            cost.downgradable(&cal.model()),
            "under the seed the snapshot filter fits the downgrade budget"
        );
        // Observed: 1000 ns per touched value — 40x slower than nominal.
        let probe = locked_cost(1_000, 0);
        for _ in 0..4 * Calibrator::REPUBLISH_EVERY {
            cal.observe(&probe, Route::Locked, probe.crack_values * 1_000);
        }
        let m = cal.model();
        assert_eq!(m.downgrade_budget, seed.downgrade_budget / 4);
        assert!(
            !cost.downgradable(&m),
            "the slow machine can no longer afford the inline filter"
        );
    }

    #[test]
    fn merge_weight_tracks_observed_ripple_cost() {
        let cal = Calibrator::new(CostModel::default());
        // Seed alpha at 10 ns/value with backlog-free observations.
        let clean = locked_cost(1_000, 0);
        for _ in 0..Calibrator::REPUBLISH_EVERY {
            cal.observe(&clean, Route::Locked, clean.crack_values * 10);
        }
        // Backlogged runs where each pending op costs ~200 ns → 20 values.
        let backlogged = locked_cost(1_000, 500);
        let ns = 1_000 * 10 + 500 * 200;
        for _ in 0..4 * Calibrator::REPUBLISH_EVERY {
            cal.observe(&backlogged, Route::Locked, ns);
        }
        let m = cal.model();
        assert!(
            (15..=25).contains(&m.merge_weight),
            "merge_weight {} should converge near 20",
            m.merge_weight
        );
    }

    /// The kernel-layer acceptance check: snapshot executions whose
    /// encoded edges decode at block-kernel speed (no measurable time
    /// beyond the plain filter) must pull the calibrated `decode_weight`
    /// *below* its scalar-era seed — admission and cutover then stop
    /// penalising morphed pieces the kernels made cheap.
    #[test]
    fn kernel_fast_decodes_drop_decode_weight_below_seed() {
        let cal = Calibrator::new(CostModel::default());
        let seed = cal.seed();
        // Seed alpha at 10 ns/value with backlog-free locked runs.
        let clean = locked_cost(1_000, 0);
        for _ in 0..Calibrator::REPUBLISH_EVERY {
            cal.observe(&clean, Route::Locked, clean.crack_values * 10);
        }
        // Snapshot runs with fully-encoded edges that finish in exactly
        // the plain-filter time: the block kernels erased the decode tax.
        let snap = PlanCost {
            snapshot_filter: Some(10_000),
            decode_rows: 10_000,
            shards_touched: 1,
            ..PlanCost::default()
        };
        let ns = 10 * (10_000 + seed.snapshot_fixed);
        for _ in 0..4 * Calibrator::REPUBLISH_EVERY {
            cal.observe(&snap, Route::Snapshot, ns);
        }
        let m = cal.model();
        assert!(
            m.decode_weight < seed.decode_weight,
            "decode_weight {} did not drop below its seed {}",
            m.decode_weight,
            seed.decode_weight
        );
        // An encoded edge now prices barely above a plain one.
        assert_eq!(m.decode_weight, (seed.decode_weight / 4).max(1));
    }

    /// Calibrator-health acceptance: a deliberately mis-seeded model
    /// starts with a large predicted-vs-actual residual, and the residual
    /// converges toward zero as calibration pulls the published model
    /// onto the machine.
    #[test]
    fn mis_seeded_model_residual_converges_toward_zero() {
        // cheap_budget mis-seeded 16x low → the seed-implied nominal rate
        // (TARGET_CHEAP_NS / cheap_budget) claims 400 ns per value; the
        // machine below actually runs at 25 ns per value.
        let seed = CostModel {
            cheap_budget: 256,
            ..CostModel::default()
        };
        let cal = Calibrator::new(seed);
        let cost = locked_cost(10_000, 0);
        cal.observe(&cost, Route::Locked, cost.crack_values * 25);
        let initial = cal.residual(ResidualChannel::Locked);
        assert!(
            initial > 1.0,
            "mis-seed must show as a large residual, got {initial}"
        );
        for _ in 0..8 * Calibrator::REPUBLISH_EVERY {
            cal.observe(&cost, Route::Locked, cost.crack_values * 25);
        }
        let settled = cal.residual(ResidualChannel::Locked);
        assert!(
            settled < 0.05,
            "residual must converge toward zero, got {settled}"
        );
        assert!(
            settled < initial / 10.0,
            "no convergence: {initial} → {settled}"
        );
        // Untouched channels stay at their unseeded zero.
        assert_eq!(cal.residual(ResidualChannel::Snapshot), 0.0);
        assert_eq!(cal.residual(ResidualChannel::Screened), 0.0);
    }

    #[test]
    fn knobs_never_leave_the_guard_rails() {
        let seed = CostModel::default();
        for (per_value_ns, label) in [(1u64, "fast"), (100_000, "slow")] {
            let cal = Calibrator::new(seed);
            let cost = locked_cost(4_096, 0);
            for _ in 0..8 * Calibrator::REPUBLISH_EVERY {
                cal.observe(&cost, Route::Locked, cost.crack_values * per_value_ns);
            }
            let m = cal.model();
            for (got, seeded) in [
                (m.merge_weight, seed.merge_weight),
                (m.cheap_budget, seed.cheap_budget),
                (m.downgrade_budget, seed.downgrade_budget),
            ] {
                assert!(
                    got >= (seeded / 4).max(1) && got <= seeded * 4,
                    "{label}: knob {got} outside rails of seed {seeded}"
                );
            }
        }
    }

    #[test]
    fn snapshot_and_screened_observations_do_not_poison_alpha() {
        let cal = Calibrator::new(CostModel::default());
        // Screened probes finish in ~0 work; snapshot reads have their own
        // rate. Neither may contaminate the locked-path alpha.
        let screened = PlanCost::screened_point();
        let snap = PlanCost {
            snapshot_filter: Some(100),
            shards_touched: 1,
            ..PlanCost::default()
        };
        for _ in 0..4 * Calibrator::REPUBLISH_EVERY {
            cal.observe(&screened, Route::Locked, 50);
            cal.observe(&snap, Route::Snapshot, 1_000_000);
        }
        assert_eq!(
            cal.model(),
            cal.seed(),
            "no locked-path evidence: the seed stands"
        );
    }
}
