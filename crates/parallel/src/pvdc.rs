//! PVDC — Parallel Vectorized Database Cracking ([44], the strongest
//! query-driven baseline in §5.1–5.3 of the paper).
//!
//! A PVDC column is an ordinary [`CrackerColumn`] whose crack kernel
//! partitions large pieces with [`crate::partition::parallel_partition`]:
//! all user-query threads gang up on the one piece the query must crack.
//! Holistic indexing instead spreads those threads across *many* pieces of
//! many indices — §5.1 (Fig 7) measures exactly this trade-off.

use crate::partition::{parallel_partition, DEFAULT_MIN_PARALLEL};
use holix_cracking::column::PartitionFn;
use holix_cracking::CrackerColumn;
use holix_storage::types::{CrackValue, RowId};
use std::sync::Arc;

/// Returns the parallel partition kernel used by PVDC columns.
pub fn parallel_partition_fn<V: CrackValue>(threads: usize) -> PartitionFn<V> {
    parallel_partition_fn_with_threshold(threads, DEFAULT_MIN_PARALLEL)
}

/// Parallel partition kernel with an explicit sequential-fallback threshold.
pub fn parallel_partition_fn_with_threshold<V: CrackValue>(
    threads: usize,
    min_parallel: usize,
) -> PartitionFn<V> {
    Arc::new(move |vals: &mut [V], rows: &mut [RowId], pivot: V| {
        let t = if vals.len() >= min_parallel {
            threads
        } else {
            1
        };
        parallel_partition(vals, rows, pivot, t)
    })
}

/// Builds a PVDC cracker column over `base` that cracks large pieces with
/// `threads` threads.
pub fn pvdc_column<V: CrackValue>(
    name: impl Into<String>,
    base: &[V],
    threads: usize,
) -> CrackerColumn<V> {
    CrackerColumn::with_partition_fn(name, base, parallel_partition_fn(threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_cracking::CrackScratch;
    use holix_storage::select::{scan_stats, Predicate};
    use rand::prelude::*;

    #[test]
    fn pvdc_select_matches_scan_oracle() {
        let mut rng = StdRng::seed_from_u64(1);
        let base: Vec<i64> = (0..300_000).map(|_| rng.random_range(0..100_000)).collect();
        let col = pvdc_column("a", &base, 4);
        let mut scratch = CrackScratch::new();
        for _ in 0..30 {
            let a = rng.random_range(0..100_000);
            let b = rng.random_range(0..100_000);
            let pred = Predicate::range(a.min(b), a.max(b));
            let (_, stats) = col.select_verified(pred, &mut scratch);
            assert_eq!(stats, scan_stats(&base, pred));
        }
        col.check_invariants(Some(&base));
    }

    #[test]
    fn pvdc_agrees_with_sequential_cracking() {
        let mut rng = StdRng::seed_from_u64(2);
        let base: Vec<i64> = (0..200_000).map(|_| rng.random_range(0..50_000)).collect();
        let par = pvdc_column("p", &base, 8);
        let seq = CrackerColumn::from_base("s", &base);
        let mut scratch = CrackScratch::new();
        for i in 0..20 {
            let lo = i * 2_000;
            let pred = Predicate::range(lo, lo + 10_000);
            let sp = par.select(pred, &mut scratch);
            let ss = seq.select(pred, &mut scratch);
            assert_eq!(sp.count(), ss.count());
        }
        assert_eq!(par.piece_count(), seq.piece_count());
    }

    #[test]
    fn threshold_forces_sequential_path() {
        let base: Vec<i64> = (0..1_000).rev().collect();
        let col = CrackerColumn::with_partition_fn(
            "t",
            &base,
            parallel_partition_fn_with_threshold(8, usize::MAX),
        );
        let mut scratch = CrackScratch::new();
        let (_, stats) = col.select_verified(Predicate::range(100, 500), &mut scratch);
        assert_eq!(stats, scan_stats(&base, Predicate::range(100, 500)));
    }
}
