//! Vendored minimal stand-in for `parking_lot` (no-network build).
//!
//! Implements the slice of the `parking_lot` 0.12 API that holix uses:
//! non-poisoning [`Mutex`] and [`RwLock`], plus the `arc_lock` owned guards
//! ([`lock_api::ArcRwLockReadGuard`] / [`lock_api::ArcRwLockWriteGuard`])
//! that the piece latches rely on. The rwlock is a classic
//! mutex-plus-condvar state machine rather than a futex word: guards only
//! record which lock to release, so owned (`Arc`) guards and borrowed guards
//! share one code path, and releasing from a different thread than the one
//! that acquired is sound (std's `RwLock` guards cannot be sent; these can).

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

// ---------------------------------------------------------------------------
// Raw rwlock
// ---------------------------------------------------------------------------

/// Reader/writer state. `held` is `-1` for a writer, `0` free, `n > 0` for
/// `n` readers. `waiting_writers` makes the lock writer-preferring like real
/// parking_lot: new *blocking* readers queue behind a waiting writer, so a
/// stream of overlapping reads cannot starve a writer (the Ripple update
/// path takes the cracker column's structure lock exclusively while selects
/// hammer it shared). `try_*` callers never wait and so never consult the
/// queue. Writer preference would deadlock on same-thread recursive reads;
/// holix takes the structure lock once per entry point (audited, and the
/// same rule real parking_lot imposes).
#[derive(Clone, Copy)]
struct RwState {
    held: i64,
    waiting_writers: u32,
}

/// The raw lock. Public only because the `ArcRwLock*Guard` aliases in
/// downstream code name it as a type parameter.
pub struct RawRwLock {
    state: StdMutex<RwState>,
    cv: Condvar,
}

impl RawRwLock {
    pub const fn new() -> Self {
        RawRwLock {
            state: StdMutex::new(RwState {
                held: 0,
                waiting_writers: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn state(&self) -> StdMutexGuard<'_, RwState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_shared(&self) {
        let mut s = self.state();
        while s.held < 0 || s.waiting_writers > 0 {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.held += 1;
    }

    fn try_lock_shared(&self) -> bool {
        let mut s = self.state();
        if s.held < 0 {
            false
        } else {
            s.held += 1;
            true
        }
    }

    fn lock_exclusive(&self) {
        let mut s = self.state();
        s.waiting_writers += 1;
        while s.held != 0 {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.waiting_writers -= 1;
        s.held = -1;
    }

    fn try_lock_exclusive(&self) -> bool {
        let mut s = self.state();
        if s.held != 0 {
            false
        } else {
            s.held = -1;
            true
        }
    }

    fn unlock_shared(&self) {
        let mut s = self.state();
        debug_assert!(s.held > 0);
        s.held -= 1;
        if s.held == 0 {
            self.cv.notify_all();
        }
    }

    fn unlock_exclusive(&self) {
        let mut s = self.state();
        debug_assert_eq!(s.held, -1);
        s.held = 0;
        self.cv.notify_all();
    }
}

impl Default for RawRwLock {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Non-poisoning reader/writer lock with owned-guard (`*_arc`) support.
pub struct RwLock<T: ?Sized> {
    raw: RawRwLock,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            raw: RawRwLock::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.raw.lock_shared();
        RwLockReadGuard { lock: self }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.raw
            .try_lock_shared()
            .then(|| RwLockReadGuard { lock: self })
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.raw.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.raw
            .try_lock_exclusive()
            .then(|| RwLockWriteGuard { lock: self })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T> RwLock<T> {
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        self.raw.lock_shared();
        lock_api::ArcRwLockReadGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }

    pub fn try_read_arc(self: &Arc<Self>) -> Option<lock_api::ArcRwLockReadGuard<RawRwLock, T>> {
        self.raw
            .try_lock_shared()
            .then(|| lock_api::ArcRwLockReadGuard {
                lock: Arc::clone(self),
                _raw: PhantomData,
            })
    }

    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        self.raw.lock_exclusive();
        lock_api::ArcRwLockWriteGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }

    pub fn try_write_arc(self: &Arc<Self>) -> Option<lock_api::ArcRwLockWriteGuard<RawRwLock, T>> {
        self.raw
            .try_lock_exclusive()
            .then(|| lock_api::ArcRwLockWriteGuard {
                lock: Arc::clone(self),
                _raw: PhantomData,
            })
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_shared();
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_exclusive();
    }
}

pub mod lock_api {
    //! Owned (`Arc`-holding) guards, mirroring `lock_api` with the
    //! `arc_lock` feature. The first type parameter exists only so that
    //! downstream aliases like `ArcRwLockWriteGuard<RawRwLock, ()>` keep
    //! their upstream shape.

    use super::*;

    pub struct ArcRwLockReadGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_shared();
        }
    }

    pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_exclusive();
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex over `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_excludes_writers() {
        let l = Arc::new(RwLock::new(0u32));
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_write_arc().is_none());
        drop(r);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn arc_write_guard_can_cross_threads() {
        let l = Arc::new(RwLock::new(0u32));
        let mut g = l.write_arc();
        *g = 7;
        let h = thread::spawn(move || drop(g));
        h.join().unwrap();
        assert_eq!(*l.read(), 7);
    }

    /// Writer preference: a writer must get in even while readers arrive
    /// continuously (the select-vs-Ripple-merge pattern on cracker columns).
    #[test]
    fn writer_not_starved_by_reader_stream() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};

        let lock = Arc::new(RwLock::new(0u32));
        let stop = Arc::new(AtomicBool::new(false));

        // Four readers re-acquiring in a tight loop: with reader preference
        // the read count never reaches zero and the writer below hangs.
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = lock.read();
                        std::hint::black_box(*g);
                    }
                })
            })
            .collect();

        let t = Instant::now();
        *lock.write() = 7;
        let waited = t.elapsed();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*lock.read(), 7);
        assert!(
            waited < Duration::from_secs(5),
            "writer waited {waited:?} behind a reader stream"
        );
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
