//! Bounded lock-free per-query trace ring.
//!
//! One [`QueryTrace`] per query lifecycle: admit decision → queue wait →
//! batch/coalesce → route taken → crack/decode estimate → completion, with
//! the shard-plan version and the predicted-vs-actual `PlanCost` residual
//! attached. The ring is a fixed array of seqlock slots: a writer claims a
//! ticket with one `fetch_add`, marks the slot's sequence odd, copies the
//! `Copy` record in, and publishes the even sequence. Readers validate the
//! sequence pair and simply skip torn slots — tracing never blocks or
//! allocates on the query path, and memory is bounded at
//! `capacity × size_of::<QueryTrace>()`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// How admission control disposed of the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Admitted into the queue.
    Queued,
    /// Cheap query executed inline at submission (admission bypass).
    Inline,
    /// Expensive query downgraded to an inline snapshot scan.
    Downgraded,
    /// Load-shed (rejected).
    Shed,
}

/// How batching disposed of the query relative to its batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceKind {
    /// Executed on its own.
    Solo,
    /// Duplicate predicate answered by another run in the batch.
    Duplicate,
    /// Contained predicate answered by post-filtering a superset run.
    Containment,
}

/// Which execution path served the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRoute {
    /// Locked crack-and-refine path.
    Locked,
    /// Lock-free snapshot path.
    Snapshot,
    /// Answered entirely by a point-filter screen.
    Screened,
}

/// One query's lifecycle record. `Copy` so seqlock slots can tear-check a
/// plain memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// Monotone ticket (global order of completion records).
    pub seq: u64,
    /// Attribute / column index the predicate targeted.
    pub attr: u32,
    /// Admission decision.
    pub admit: AdmitOutcome,
    /// Queue wait (enqueue → drain), ns.
    pub queue_wait_ns: u64,
    /// Queries drained in the same batch.
    pub batch_len: u32,
    /// Batch coalescing outcome.
    pub coalesce: CoalesceKind,
    /// Execution route taken.
    pub route: TraceRoute,
    /// Shard-plan version the query executed against.
    pub plan_version: u64,
    /// Planner's predicted service time, ns (0 when cost-blind).
    pub predicted_ns: u64,
    /// Measured service time, ns.
    pub actual_ns: u64,
    /// Planner's crack-work estimate (values to partition).
    pub crack_values: u64,
    /// Planner's compressed-decode estimate (rows to unpack).
    pub decode_rows: u64,
}

impl QueryTrace {
    /// Signed predicted-vs-actual residual, ns (positive ⇒ over-predicted).
    pub fn residual_ns(&self) -> i64 {
        self.predicted_ns as i64 - self.actual_ns as i64
    }
}

const EMPTY: QueryTrace = QueryTrace {
    seq: 0,
    attr: 0,
    admit: AdmitOutcome::Queued,
    queue_wait_ns: 0,
    batch_len: 0,
    coalesce: CoalesceKind::Solo,
    route: TraceRoute::Locked,
    plan_version: 0,
    predicted_ns: 0,
    actual_ns: 0,
    crack_values: 0,
    decode_rows: 0,
};

struct Slot {
    /// 0 = never written; odd = write in progress; even = ticket*2+2.
    seq: AtomicU64,
    data: UnsafeCell<QueryTrace>,
}

/// Bounded lock-free ring of [`QueryTrace`] records.
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

// The UnsafeCell is guarded by the per-slot seqlock protocol.
unsafe impl Sync for TraceRing {}
unsafe impl Send for TraceRing {}

impl TraceRing {
    /// `capacity` is rounded up to a power of two (min 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        TraceRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: UnsafeCell::new(EMPTY),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Records one trace; `trace.seq` is overwritten with the claimed
    /// ticket. Wait-free for writers (one `fetch_add`, two stores, one
    /// memcpy). A writer stalled for a full ring revolution can race
    /// another writer on the same slot; readers detect the torn slot via
    /// the sequence pair and skip it.
    pub fn record(&self, mut trace: QueryTrace) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        trace.seq = ticket;
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        // Order the payload store after the odd mark.
        std::sync::atomic::fence(Ordering::Release);
        unsafe {
            *slot.data.get() = trace;
        }
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Tickets issued so far (= traces ever recorded).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Snapshot of currently readable records, oldest first. Torn or
    /// never-written slots are skipped.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            std::sync::atomic::fence(Ordering::Acquire);
            let data = unsafe { *slot.data.get() };
            std::sync::atomic::fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 == s2 && data.seq * 2 + 2 == s2 {
                out.push(data);
            }
        }
        out.sort_by_key(|t| t.seq);
        out
    }

    /// The `n` most recent readable records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(attr: u32, actual: u64) -> QueryTrace {
        QueryTrace {
            attr,
            actual_ns: actual,
            ..EMPTY
        }
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let ring = TraceRing::new(16);
        for i in 0..10 {
            ring.record(t(i, i as u64 * 100));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, tr) in snap.iter().enumerate() {
            assert_eq!(tr.seq, i as u64);
            assert_eq!(tr.attr, i as u32);
        }
    }

    #[test]
    fn ring_wraps_keeping_most_recent() {
        let ring = TraceRing::new(8);
        for i in 0..100u32 {
            ring.record(t(i, 0));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(snap.first().unwrap().attr, 92);
        assert_eq!(snap.last().unwrap().attr, 99);
        assert_eq!(ring.recent(3).len(), 3);
        assert_eq!(ring.recent(3)[2].attr, 99);
        assert_eq!(ring.recorded(), 100);
    }

    #[test]
    fn concurrent_writers_and_readers_never_tear() {
        // Writers stamp attr == low bits of actual_ns; any torn read would
        // break the invariant. Readers continuously snapshot meanwhile.
        let ring = Arc::new(TraceRing::new(64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let tag = (w as u64) << 32 | i;
                        ring.record(QueryTrace {
                            attr: w,
                            actual_ns: tag,
                            predicted_ns: tag,
                            ..EMPTY
                        });
                        i += 1;
                    }
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(150);
        while std::time::Instant::now() < deadline {
            for tr in ring.snapshot() {
                assert_eq!(tr.actual_ns, tr.predicted_ns, "torn record: {tr:?}");
                assert_eq!(tr.attr as u64, tr.actual_ns >> 32, "torn record: {tr:?}");
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn residual_is_signed() {
        let mut tr = EMPTY;
        tr.predicted_ns = 100;
        tr.actual_ns = 250;
        assert_eq!(tr.residual_ns(), -150);
    }
}
