//! Range-selection operator over dense columns (single-threaded scan).
//!
//! All range predicates in the workspace are normalised to the half-open form
//! `lo <= v < hi`; the paper's `A < v` queries become `[MIN_VALUE, v)` and its
//! `low <= A < high` queries map directly.

use crate::types::{succ, CrackValue, RowId};

/// Half-open range predicate `lo <= v < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate<V> {
    /// Inclusive lower bound.
    pub lo: V,
    /// Exclusive upper bound.
    pub hi: V,
}

impl<V: CrackValue> Predicate<V> {
    /// `lo <= v < hi`.
    pub fn range(lo: V, hi: V) -> Self {
        Predicate { lo, hi }
    }

    /// `v < hi` — the single-sided form used by the paper's microbenchmarks.
    pub fn less_than(hi: V) -> Self {
        Predicate {
            lo: V::MIN_VALUE,
            hi,
        }
    }

    /// `v >= lo`.
    pub fn at_least(lo: V) -> Self {
        Predicate {
            lo,
            hi: V::MAX_VALUE,
        }
    }

    /// Equality probe `v == value` as the unit half-open range
    /// `[value, succ(value))` — the lowering every point predicate takes
    /// through the range-only kernels. `point(MAX_VALUE)` degenerates to an
    /// empty predicate (the sentinel cannot be probed; synthetic domains
    /// never generate it).
    pub fn point(value: V) -> Self {
        Predicate {
            lo: value,
            hi: succ(value),
        }
    }

    /// Inverse of [`Predicate::point`]: `Some(v)` when this predicate is a
    /// unit range `[v, succ(v))`. Ranges touching the domain sentinels are
    /// never points (a `hi == MAX_VALUE` bound means *unbounded*, not
    /// "up to the sentinel").
    pub fn as_point(&self) -> Option<V> {
        (self.lo != V::MAX_VALUE && self.hi != V::MAX_VALUE && self.hi == succ(self.lo))
            .then_some(self.lo)
    }

    /// Does `v` satisfy the predicate?
    #[inline(always)]
    pub fn matches(&self, v: V) -> bool {
        self.lo <= v && v < self.hi
    }

    /// `true` when no value can qualify.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Sentinel-aware variant of [`Predicate::matches`], mirroring the
    /// cracked select path: a bound equal to `MIN_VALUE`/`MAX_VALUE` means
    /// *unbounded*, so a value equal to `MAX_VALUE` qualifies under an
    /// unbounded upper end (where `matches` would exclude it). The
    /// snapshot read path filters edge pieces and folds pending-update
    /// overlays through this one definition.
    ///
    /// Degenerate predicates (`lo >= hi`, including sentinel-valued ones
    /// like `[MAX, MAX)`) match nothing — the same "empty result, zero
    /// cracks" rule the cracked select and the sharded fan-out apply, so
    /// the three paths can never disagree on a pathological range.
    #[inline(always)]
    pub fn matches_unbounded(&self, v: V) -> bool {
        !self.is_empty()
            && (self.lo == V::MIN_VALUE || v >= self.lo)
            && (self.hi == V::MAX_VALUE || v < self.hi)
    }
}

/// Aggregate fingerprint of a selection: how many values qualified and their
/// sum. Engines compare counts for performance runs and (count, sum) pairs in
/// verification mode; the sum is wide enough to never overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeStats {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of qualifying values (widened).
    pub sum: i128,
}

impl RangeStats {
    /// Accumulates another partial result (e.g. from a parallel chunk).
    pub fn merge(&mut self, other: RangeStats) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Scans `values` and returns count and sum of qualifying values.
///
/// This is the "no indexing support" baseline: cost is O(N) data accesses per
/// query regardless of selectivity.
pub fn scan_stats<V: CrackValue>(values: &[V], pred: Predicate<V>) -> RangeStats {
    let mut count = 0u64;
    let mut sum = 0i128;
    for &v in values {
        // Written as a single conditional accumulation so LLVM can vectorise.
        if pred.matches(v) {
            count += 1;
            sum += v.as_i64() as i128;
        }
    }
    RangeStats { count, sum }
}

/// Scans `values` and materialises the positions of qualifying values — the
/// intermediate "candidate list" a column-store select produces for later
/// positional operators.
pub fn scan_positions<V: CrackValue>(values: &[V], pred: Predicate<V>) -> Vec<RowId> {
    let mut out = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if pred.matches(v) {
            out.push(i as RowId);
        }
    }
    out
}

/// Count-only scan (used where the sum checksum is not needed).
pub fn scan_count<V: CrackValue>(values: &[V], pred: Predicate<V>) -> u64 {
    values.iter().filter(|&&v| pred.matches(v)).count() as u64
}

/// Computes [`RangeStats`] over a contiguous slice that is already known to
/// qualify (e.g. a cracked piece range) — no predicate evaluation.
pub fn slice_stats<V: CrackValue>(values: &[V]) -> RangeStats {
    let mut sum = 0i128;
    for &v in values {
        sum += v.as_i64() as i128;
    }
    RangeStats {
        count: values.len() as u64,
        sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_forms() {
        let p = Predicate::range(3i64, 8);
        assert!(p.matches(3) && p.matches(7));
        assert!(!p.matches(2) && !p.matches(8));

        let lt = Predicate::less_than(5i64);
        assert!(lt.matches(i64::MIN) && lt.matches(4) && !lt.matches(5));

        let ge = Predicate::at_least(5i64);
        assert!(ge.matches(5) && !ge.matches(4));
        // MAX_VALUE itself is excluded by the half-open form; acceptable for
        // synthetic domains that never generate the sentinel.
        assert!(!ge.matches(i64::MAX));
    }

    #[test]
    fn empty_predicate() {
        assert!(Predicate::range(5i32, 5).is_empty());
        assert!(Predicate::range(6i32, 5).is_empty());
        assert!(!Predicate::range(5i32, 6).is_empty());
    }

    #[test]
    fn point_round_trips_through_unit_range() {
        let p = Predicate::point(7i64);
        assert_eq!(p, Predicate::range(7, 8));
        assert_eq!(p.as_point(), Some(7));
        assert!(Predicate::range(7i64, 9).as_point().is_none());
        // Sentinel-adjacent ranges are never points: hi == MAX means
        // *unbounded*, and the sentinel itself cannot be probed.
        assert!(Predicate::range(i64::MAX - 1, i64::MAX)
            .as_point()
            .is_none());
        assert!(Predicate::point(i64::MAX).is_empty());
    }

    #[test]
    fn degenerate_predicates_match_nothing_even_with_sentinel_bounds() {
        // Regression: `[MAX, MAX)` is empty under `is_empty`/`matches` but
        // the sentinel-aware form used to read it as "unbounded above,
        // v >= MAX" and match the sentinel — so the snapshot path counted
        // a value the cracked path refused. Empty must mean empty on every
        // path.
        let top = Predicate::range(i64::MAX, i64::MAX);
        assert!(top.is_empty());
        assert!(!top.matches_unbounded(i64::MAX));
        let bottom = Predicate::range(i64::MIN, i64::MIN);
        assert!(bottom.is_empty());
        assert!(!bottom.matches_unbounded(i64::MIN));
        let inverted = Predicate::range(9i64, 3);
        assert!(!inverted.matches_unbounded(5));
        // Non-degenerate sentinel bounds keep their unbounded meaning.
        assert!(Predicate::range(0i64, i64::MAX).matches_unbounded(i64::MAX));
        assert!(Predicate::range(i64::MIN, 5).matches_unbounded(i64::MIN));
    }

    #[test]
    fn scan_stats_counts_and_sums() {
        let vals = [1i64, 5, 3, 9, 5, 0];
        let s = scan_stats(&vals, Predicate::range(3, 9));
        assert_eq!(s.count, 3); // 5, 3, 5
        assert_eq!(s.sum, 13);
    }

    #[test]
    fn scan_positions_matches_scan_stats() {
        let vals = [10i32, 2, 7, 7, 1];
        let pred = Predicate::range(2, 8);
        let pos = scan_positions(&vals, pred);
        assert_eq!(pos, vec![1, 2, 3]);
        assert_eq!(scan_stats(&vals, pred).count as usize, pos.len());
        assert_eq!(scan_count(&vals, pred) as usize, pos.len());
    }

    #[test]
    fn slice_stats_sums_everything() {
        let s = slice_stats(&[1i64, -2, 3]);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RangeStats { count: 2, sum: 10 };
        a.merge(RangeStats { count: 3, sum: -4 });
        assert_eq!(a, RangeStats { count: 5, sum: 6 });
    }
}
