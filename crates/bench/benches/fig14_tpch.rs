//! Fig 14 — TPC-H Q1, Q6 and Q12 (§5.6): 30 random variants per query type
//! against plain scans, pre-sorted projections, sideways cracking and
//! holistic indexing.
//!
//! Expected shape: the first sideways/holistic query pays the map-copy cost,
//! then both track (or beat) the pre-sorted engine — which itself paid a
//! pre-sorting cost the curves exclude (printed separately, as the paper
//! notes "pre-sorted times exclude pre-sorting costs").

use holix_bench::{secs, time, BenchEnv};
use holix_engine::tpch::{HolisticTpch, PresortedTpch, ScanTpch, SidewaysTpch, TpchDb, TpchEngine};
use holix_workloads::tpch::{generate, q12_variants, q1_variants, q6_variants};
use std::sync::Arc;

fn run_series(
    label: &str,
    engines: &[&dyn TpchEngine],
    run: impl Fn(&dyn TpchEngine, usize),
    variants: usize,
) {
    for (e_idx, e) in engines.iter().enumerate() {
        let _ = e_idx;
        for v in 0..variants {
            let (_, d) = time(|| run(*e, v));
            println!("{label},{},{},{:.6}", e.name(), v + 1, secs(d));
        }
    }
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 14: TPC-H Q1/Q6/Q12, 30 variants, 4 engines",
        "csv: query,engine,variant,seconds (presort cost printed separately)",
    );
    let db = Arc::new(TpchDb::new(generate(env.tpch_sf, 14)));
    println!(
        "# lineitem_rows={} orders_rows={}",
        db.li.len(),
        db.orders.len()
    );

    let scan = ScanTpch::new(Arc::clone(&db));
    let (presorted, presort_cost) = time(|| PresortedTpch::new(Arc::clone(&db)));
    println!("# presort_cost_seconds={:.6}", secs(presort_cost));
    let (sideways, sideways_build) = time(|| SidewaysTpch::new(Arc::clone(&db)));
    println!("# sideways_map_build_seconds={:.6}", secs(sideways_build));
    let holistic = HolisticTpch::new(Arc::clone(&db), 140);

    let engines: Vec<&dyn TpchEngine> = vec![&scan, &presorted, &sideways, &holistic];
    let variants = 30usize;

    println!("query,engine,variant,seconds");
    let q1 = q1_variants(variants, 141);
    run_series(
        "Q1",
        &engines,
        |e, v| {
            std::hint::black_box(e.q1(q1[v]));
        },
        variants,
    );
    let q6 = q6_variants(variants, 142);
    run_series(
        "Q6",
        &engines,
        |e, v| {
            std::hint::black_box(e.q6(q6[v]));
        },
        variants,
    );
    let q12 = q12_variants(variants, 143);
    run_series(
        "Q12",
        &engines,
        |e, v| {
            std::hint::black_box(e.q12(q12[v]));
        },
        variants,
    );
}
