//! Parallel partition-and-merge — the multi-threaded crack kernel (Fig 4 of
//! the paper, after [44]).
//!
//! Phase 1 slices the piece into `threads` contiguous slices; each thread
//! partitions its slice independently (branch-free out-of-place kernel).
//! Phase 2 computes the global split point and swaps the misplaced regions —
//! high values stranded left of the split with low values stranded right of
//! it — using disjoint swap jobs executed in parallel.
//!
//! DESIGN.md documents the substitution: the paper's concentric slice layout
//! only balances merge work statistically; contiguous slices with a parallel
//! misplaced-region swap produce the identical output layout at the same
//! O(N/n + misplaced) cost.

use holix_cracking::vectorized::{crack_in_two_oop, CrackScratch};
use holix_storage::types::{CrackValue, RowId};

/// Below this piece size the sequential kernel wins; used as the default
/// threshold by [`crate::pvdc`].
pub const DEFAULT_MIN_PARALLEL: usize = 1 << 16;

/// Partitions `vals`/`rows` around `pivot` with up to `threads` threads.
/// Returns the split point (count of values `< pivot`).
pub fn parallel_partition<V: CrackValue>(
    vals: &mut [V],
    rows: &mut [RowId],
    pivot: V,
    threads: usize,
) -> usize {
    debug_assert_eq!(vals.len(), rows.len());
    let n = vals.len();
    let threads = threads.max(1);
    if threads == 1 || n < 2 * threads {
        let mut scratch = CrackScratch::new();
        return crack_in_two_oop(vals, rows, pivot, &mut scratch);
    }

    // Phase 1: partition contiguous slices independently.
    let chunk = n.div_ceil(threads);
    let mut splits: Vec<(usize, usize)> = Vec::with_capacity(threads); // (slice_start, local_split)
    {
        let mut jobs: Vec<(usize, &mut [V], &mut [RowId])> = Vec::with_capacity(threads);
        let mut vrest: &mut [V] = vals;
        let mut rrest: &mut [RowId] = rows;
        let mut off = 0usize;
        while !vrest.is_empty() {
            let take = chunk.min(vrest.len());
            let (va, vb) = vrest.split_at_mut(take);
            let (ra, rb) = rrest.split_at_mut(take);
            jobs.push((off, va, ra));
            vrest = vb;
            rrest = rb;
            off += take;
        }
        let results = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(off, v, r)| {
                    s.spawn(move |_| {
                        let mut scratch = CrackScratch::new();
                        (off, crack_in_two_oop(v, r, pivot, &mut scratch))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("partition scope panicked");
        splits.extend(results);
    }
    splits.sort_unstable_by_key(|&(off, _)| off);

    // Global boundary.
    let boundary: usize = splits.iter().map(|&(_, s)| s).sum();

    // Phase 2: collect misplaced segments. Slice i occupies
    // [off, off+len) = lows [off, off+s) then highs [off+s, off+len).
    let mut high_left: Vec<(usize, usize)> = Vec::new(); // highs at positions < boundary
    let mut low_right: Vec<(usize, usize)> = Vec::new(); // lows at positions >= boundary
    for (i, &(off, s)) in splits.iter().enumerate() {
        let end = if i + 1 < splits.len() {
            splits[i + 1].0
        } else {
            n
        };
        let (lo_s, lo_e) = (off, off + s);
        let (hi_s, hi_e) = (off + s, end);
        // Portion of the high segment lying left of the boundary.
        if hi_s < boundary {
            high_left.push((hi_s, hi_e.min(boundary)));
        }
        // Portion of the low segment lying right of the boundary.
        if lo_e > boundary {
            low_right.push((lo_s.max(boundary), lo_e));
        }
    }
    let total_high: usize = high_left.iter().map(|&(a, b)| b - a).sum();
    let total_low: usize = low_right.iter().map(|&(a, b)| b - a).sum();
    debug_assert_eq!(total_high, total_low, "misplaced counts must match");

    // Pair the segment lists into disjoint fixed-length swap jobs.
    let mut swap_jobs: Vec<(usize, usize, usize)> = Vec::new(); // (left, right, len)
    let (mut hi_idx, mut lo_idx) = (0usize, 0usize);
    let (mut hi_pos, mut lo_pos) = (0usize, 0usize);
    while hi_idx < high_left.len() && lo_idx < low_right.len() {
        let (ha, hb) = high_left[hi_idx];
        let (la, lb) = low_right[lo_idx];
        let h_rem = (hb - ha) - hi_pos;
        let l_rem = (lb - la) - lo_pos;
        let take = h_rem.min(l_rem);
        swap_jobs.push((ha + hi_pos, la + lo_pos, take));
        hi_pos += take;
        lo_pos += take;
        if hi_pos == hb - ha {
            hi_idx += 1;
            hi_pos = 0;
        }
        if lo_pos == lb - la {
            lo_idx += 1;
            lo_pos = 0;
        }
    }

    execute_swaps(vals, rows, &swap_jobs, threads);
    boundary
}

/// Executes disjoint swap jobs, parallelised across threads. Shared with the
/// concentric-slice variant.
pub(crate) fn execute_swaps<V: CrackValue>(
    vals: &mut [V],
    rows: &mut [RowId],
    jobs: &[(usize, usize, usize)],
    threads: usize,
) {
    if jobs.is_empty() {
        return;
    }
    let total: usize = jobs.iter().map(|&(_, _, l)| l).sum();
    if threads <= 1 || total < (1 << 14) {
        for &(a, b, len) in jobs {
            for k in 0..len {
                vals.swap(a + k, b + k);
                rows.swap(a + k, b + k);
            }
        }
        return;
    }

    // Every job swaps a left region (< boundary) with a right region
    // (>= boundary); all regions across all jobs are pairwise disjoint, so
    // concurrent execution never touches the same element twice.
    let vp = SendPtr(vals.as_mut_ptr());
    let rp = SendPtr(rows.as_mut_ptr());
    let per = jobs.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for batch in jobs.chunks(per) {
            s.spawn(move |_| {
                for &(a, b, len) in batch {
                    // SAFETY: (a..a+len) and (b..b+len) are disjoint from
                    // every other job's regions and from each other (left
                    // regions lie strictly below the partition boundary,
                    // right regions at or above it), so no element is
                    // accessed by two threads.
                    unsafe {
                        std::ptr::swap_nonoverlapping(vp.ptr().add(a), vp.ptr().add(b), len);
                        std::ptr::swap_nonoverlapping(rp.ptr().add(a), rp.ptr().add(b), len);
                    }
                }
            });
        }
    })
    .expect("swap scope panicked");
}

/// Raw pointer wrapper that asserts Send for the disjoint-job pattern above.
/// The accessor method (rather than direct field access) matters: Rust 2021
/// closures capture precise field paths, and capturing the bare `*mut T`
/// field would defeat the `Send` wrapper.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn ptr(self) -> *mut T {
        self.0
    }
}

// SAFETY: see `execute_swaps` — each thread only dereferences disjoint
// offsets from the pointer.
unsafe impl<T> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_cracking::crack::is_partitioned;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check(base: &[i64], pivot: i64, threads: usize) {
        let mut vals = base.to_vec();
        let mut rows: Vec<RowId> = (0..base.len() as u32).collect();
        let split = parallel_partition(&mut vals, &mut rows, pivot, threads);
        assert!(is_partitioned(&vals, split, pivot), "t={threads}");
        assert!(
            vals.iter().zip(&rows).all(|(&v, &r)| base[r as usize] == v),
            "alignment broken t={threads}"
        );
        let mut a = base.to_vec();
        let mut b = vals.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "multiset broken t={threads}");
        assert_eq!(split, base.iter().filter(|&&v| v < pivot).count());
    }

    #[test]
    fn small_inputs_fall_back() {
        check(&[5, 1, 9], 4, 8);
        check(&[], 4, 8);
        check(&[1], 4, 8);
    }

    #[test]
    fn random_inputs_all_thread_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        let base: Vec<i64> = (0..200_000).map(|_| rng.random_range(0..10_000)).collect();
        for t in [1, 2, 3, 4, 8, 16] {
            check(&base, 5_000, t);
            check(&base, 0, t);
            check(&base, 10_000, t);
        }
    }

    #[test]
    fn skewed_inputs() {
        // All lows then all highs — maximum misplacement for some slices.
        let mut base: Vec<i64> = vec![1; 100_000];
        base.extend(vec![9i64; 100_000]);
        check(&base, 5, 4);
        // Reversed: all highs first.
        let mut rev: Vec<i64> = vec![9; 100_000];
        rev.extend(vec![1i64; 100_000]);
        check(&rev, 5, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_parallel_matches_sequential(
            base in proptest::collection::vec(-100i64..100, 0..5000),
            pivot in -110i64..110,
            threads in 1usize..9,
        ) {
            let mut vals = base.clone();
            let mut rows: Vec<RowId> = (0..base.len() as u32).collect();
            let split = parallel_partition(&mut vals, &mut rows, pivot, threads);
            prop_assert_eq!(split, base.iter().filter(|&&v| v < pivot).count());
            prop_assert!(is_partitioned(&vals, split, pivot));
        }
    }
}
