//! Spanning-query decomposition correctness: any `[lo, hi)` over
//! S ∈ {1, 2, 4, 7} shards, decomposed at the shard plan's cuts and
//! merged, must equal the whole-query result and the sorted oracle —
//! including exact-cut bounds and single-shard-interior ranges — and the
//! service-layer merge-ticket path must stay exact while two Ripple
//! updater threads race the per-shard parts.

use holix::engine::{Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine};
use holix::server::{DecomposePolicy, QueryService, Scheduling, ServiceConfig};
use holix::workloads::data::uniform_table;
use holix::workloads::QuerySpec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const ROWS: usize = 12_000;
const DOMAIN: i64 = 100_000;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// One engine per shard count, shared across proptest cases (engine
/// construction dominates otherwise). Sorted column as the oracle.
struct Fixture {
    sorted: Vec<i64>,
    engines: Vec<(usize, HolisticEngine)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = Dataset::new(uniform_table(1, ROWS, DOMAIN, 31));
        let mut sorted = data.column(0).to_vec();
        sorted.sort_unstable();
        let engines = SHARD_COUNTS
            .iter()
            .map(|&s| {
                let mut cfg = HolisticEngineConfig::split_half_sharded(2, s);
                cfg.holistic.monitor_interval = Duration::from_millis(250);
                (s, HolisticEngine::new(data.clone(), cfg))
            })
            .collect();
        Fixture { sorted, engines }
    })
}

fn oracle(sorted: &[i64], lo: i64, hi: i64) -> u64 {
    (sorted.partition_point(|&v| v < hi) - sorted.partition_point(|&v| v < lo)) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn decomposed_plus_merged_equals_whole_and_oracle(
        a in -1_000i64..101_000,
        b in -1_000i64..101_000,
        cut_lo in any::<bool>(),
        cut_hi in any::<bool>(),
        cut_pick in 0usize..16,
    ) {
        let fx = fixture();
        for (s, engine) in &fx.engines {
            let (col, _) = engine.sharded(0);
            let cuts = col.plan().cuts();
            // Optionally snap a bound to an exact shard cut — the
            // boundary case where a part's range starts/ends exactly on
            // the plan's partition point.
            let mut lo = a.min(b);
            let mut hi = a.max(b).max(lo + 1);
            if !cuts.is_empty() {
                if cut_lo {
                    lo = cuts[cut_pick % cuts.len()];
                }
                if cut_hi {
                    hi = cuts[cut_pick / 2 % cuts.len()];
                }
            }
            if lo >= hi {
                std::mem::swap(&mut lo, &mut hi);
                hi += 1;
            }
            let q = QuerySpec { attr: 0, lo, hi };
            let expect = oracle(&fx.sorted, lo, hi);
            let whole = engine.execute(&q);
            prop_assert_eq!(whole, expect, "whole query diverged (S={})", s);
            match engine.decompose(&q) {
                Some(parts) => {
                    prop_assert!(parts.len() >= 2, "S={}: trivial decomposition", s);
                    // Parts partition [lo, hi) exactly …
                    prop_assert_eq!(parts[0].lo, lo);
                    prop_assert_eq!(parts.last().unwrap().hi, hi);
                    for w in parts.windows(2) {
                        prop_assert_eq!(w[0].hi, w[1].lo);
                    }
                    // … each confined to one shard (distinct routing keys) …
                    for part in &parts {
                        let (first, last) = col
                            .plan()
                            .shard_range(part.lo, part.hi)
                            .expect("non-empty part");
                        prop_assert_eq!(first, last, "part {:?} spans shards", part);
                    }
                    // … and the merged counts equal whole and oracle.
                    let merged: u64 = parts.iter().map(|p| engine.execute(p)).sum();
                    prop_assert_eq!(merged, expect, "S={}: decomposed sum diverged", s);
                }
                None => {
                    // Single-shard-interior (or unsharded): the range must
                    // genuinely lie within one shard.
                    let (first, last) = col.plan().shard_range(lo, hi).expect("non-empty");
                    prop_assert_eq!(first, last, "S={}: spanning range not decomposed", s);
                }
            }
        }
    }
}

#[test]
fn decomposed_service_answers_race_two_ripple_updaters() {
    // Two updater threads churn value 7 (insert → merge → delete) while
    // clients push shard-spanning queries through the affinity service
    // with decomposition on. Each updater keeps at most one insert
    // outstanding, so every full-domain answer must be base..=base+2; a
    // lost or double-counted part breaks the band. Narrow control ranges
    // away from the churned value stay oracle-exact throughout.
    let data = Dataset::new(uniform_table(1, 30_000, 100_000, 33));
    let mut sorted = data.column(0).to_vec();
    sorted.sort_unstable();
    let mut cfg = HolisticEngineConfig::split_half_sharded(4, 4);
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    let engine = Arc::new(HolisticEngine::new(data, cfg));
    let service = QueryService::start(
        Arc::clone(&engine) as Arc<dyn QueryEngine>,
        None,
        ServiceConfig {
            workers: 4,
            scheduling: Scheduling::CrackAware,
            affinity: true,
            decompose: DecomposePolicy::Always,
            ..ServiceConfig::default()
        },
    );
    let wide = QuerySpec {
        attr: 0,
        lo: 0,
        hi: 100_000,
    };
    let narrow = QuerySpec {
        attr: 0,
        lo: 40_000,
        hi: 42_000,
    };
    let base_wide = oracle(&sorted, wide.lo, wide.hi);
    let base_narrow = oracle(&sorted, narrow.lo, narrow.hi);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let engine = &engine;
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let row = 1_000_000 + t * 100_000 + i;
                    engine.queue_insert(0, 7, row);
                    engine.execute(&QuerySpec {
                        attr: 0,
                        lo: 0,
                        hi: 20,
                    }); // Ripple merge of the insert
                    engine.queue_delete(0, 7, row);
                    i += 1;
                }
            });
        }
        for _ in 0..2 {
            let service = &service;
            let sorted = &sorted;
            s.spawn(move || {
                let session = service.session();
                for _ in 0..150 {
                    let got = session.execute(wide).unwrap().count;
                    assert!(
                        (base_wide..=base_wide + 2).contains(&got),
                        "decomposed spanning count {got} outside churn band \
                         [{base_wide}, {}]",
                        base_wide + 2
                    );
                    let got = session.execute(narrow).unwrap().count;
                    assert_eq!(got, base_narrow, "control range diverged");
                }
                let _ = sorted;
            });
        }
        // Let the clients finish, then stop the churn.
        // (Scope join order: spawn order doesn't matter — clients count to
        // 150 and exit; we flip the stop flag from the main thread after
        // they are done by joining via scope end.)
        while service.stats().completed < 2 * 300 {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Quiesce: drain every remaining pending op through a locked merge,
    // then all three paths must agree exactly.
    let locked = engine.execute(&wide);
    let merged: u64 = engine
        .decompose(&wide)
        .expect("wide range spans shards")
        .iter()
        .map(|p| engine.execute(p))
        .sum();
    assert_eq!(locked, merged);
    assert_eq!(locked, base_wide, "net-zero churn must restore the base");
    let summary = service.shutdown();
    assert!(
        summary.decomposed > 0,
        "spanning queries were not decomposed"
    );
    engine.stop();
}
