//! Serve a holistic engine to a fleet of concurrent client sessions.
//!
//! Demonstrates the `holix-server` layer end-to-end: per-worker admission
//! queues with shard-affine routing over a 4-shard holistic engine,
//! crack-aware batching (per-column grouping + bound ordering + duplicate
//! and containment coalescing), and the holistic daemon reacting to the
//! service's load through the shared accountant.
//!
//! ```bash
//! cargo run --release --example service_demo
//! ```

use holix::engine::{Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine};
use holix::server::{AdmissionPolicy, DecomposePolicy, QueryService, Scheduling, ServiceConfig};
use holix::workloads::data::uniform_table;
use holix::workloads::TrafficSpec;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let attrs = 4;
    let rows = 400_000;
    let domain = 1 << 20;
    let clients = 12;
    let queries_per_client = 300;

    println!("== holix service demo ==");
    println!("{attrs} attrs x {rows} rows; {clients} closed-loop client sessions");

    let data = Dataset::new(uniform_table(attrs, rows, domain, 99));
    let monitor_interval = Duration::from_millis(2);
    // Four range shards per attribute: each shard is its own cracker
    // column, so the shard-affine dispatchers below never contend.
    let mut cfg = HolisticEngineConfig::split_half_sharded(4, 4);
    cfg.holistic.monitor_interval = monitor_interval;
    let engine = Arc::new(HolisticEngine::new(data, cfg));

    // Idle phase before any client arrives: the daemon refines speculative
    // indices at full worker strength (Fig 9).
    engine.add_potential(&[0, 1, 2, 3]);
    std::thread::sleep(Duration::from_millis(60));
    let idle_cycles = engine.cycles();
    let idle_workers = idle_cycles.iter().map(|c| c.workers).max().unwrap_or(0);

    let service = QueryService::start(
        Arc::clone(&engine) as Arc<dyn QueryEngine>,
        Some(Arc::clone(engine.accountant())),
        ServiceConfig {
            workers: 2,
            queue_capacity: clients * 2,
            admission: AdmissionPolicy::Block,
            scheduling: Scheduling::CrackAware,
            batch_max: 32,
            contexts_per_worker: 1,
            affinity: true,
            // Decompose expensive shard-spanning ranges onto their pinned
            // workers (merged under one ticket) when the plan prices them.
            decompose: DecomposePolicy::CostBased,
            ..ServiceConfig::default()
        },
    );

    // A skewed fleet: hot regions shared fleet-wide, rotated per client.
    let traffic = TrafficSpec::saturating(clients, queries_per_client, attrs, domain, 4242);
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let stream = traffic.client_stream(c);
            let session = service.session();
            s.spawn(move || {
                for tq in &stream {
                    let result = session.execute(tq.spec).expect("submit failed");
                    std::hint::black_box(result.count);
                }
            });
        }
    });

    let run_wall = t0.elapsed();
    let cycles = engine.stop();
    // Workers per monitor tick while the service was loaded (unrecorded
    // ticks activated zero workers; a stray cycle from the spawn gap is
    // averaged out rather than reported as the maximum).
    let run_worker_sum: usize = cycles
        .iter()
        .skip(idle_cycles.len())
        .map(|c| c.workers)
        .sum();
    let run_ticks = (run_wall.as_secs_f64() / monitor_interval.as_secs_f64()).max(1.0);
    let run_workers = run_worker_sum as f64 / run_ticks;
    let refinements: u64 = cycles.iter().map(|c| c.refinements).sum();
    let summary = service.shutdown();

    println!(
        "completed {} queries ({} engine executions after coalescing, \
         {} answered from a batched superset), 0 rejected",
        summary.completed, summary.executed, summary.containment
    );
    println!(
        "sustained {:.0} QPS | latency p50 {:?} p95 {:?} p99 {:?}",
        summary.qps, summary.p50, summary.p95, summary.p99
    );
    println!(
        "holistic daemon: {} tuning cycles, {} refinements; \
         {idle_workers} workers/cycle while idle -> {run_workers:.2} avg under service load",
        cycles.len(),
        refinements,
    );
    assert_eq!(
        summary.completed as usize,
        clients * queries_per_client,
        "every submitted query must be answered"
    );
    println!("OK");
}
