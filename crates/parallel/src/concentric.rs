//! Concentric-slice parallel cracking — the literal Fig 4 layout of the
//! paper (from [44] "Database Cracking: Fancy Scan, not Poor Man's Sort!").
//!
//! The to-be-cracked piece is cut into `n` slices: the **center slice is
//! contiguous**, while each of the remaining `n − 1` slices consists of two
//! disjoint halves arranged **concentrically** around the center (slice `i`
//! owns a prefix block on the far left and a suffix block on the far right;
//! `x_i`/`y_i` mark its first and last element, as in the figure). Every
//! thread partitions its own logical slice — lows pack into its left extent
//! first, highs into its right extent first — and a merge pass swaps the
//! misplaced regions around the global split point.
//!
//! [`crate::partition`] keeps the contiguous-slice variant; this module
//! implements the concentric layout so the substitution documented in
//! DESIGN.md §3 can be *measured* rather than assumed: both variants are
//! property-tested to produce identical partitions and compared in the
//! micro-benchmarks. The concentric layout's appeal is statistical — rings
//! see value distributions closer to the whole piece's, so per-ring
//! boundaries cluster near the global split and the merge moves less data.

use crate::partition::execute_swaps;
use holix_storage::types::{CrackValue, RowId};

/// Partitions `vals`/`rows` around `pivot` using the concentric-slice layout
/// with up to `threads` threads. Returns the split point.
pub fn concentric_partition<V: CrackValue>(
    vals: &mut [V],
    rows: &mut [RowId],
    pivot: V,
    threads: usize,
) -> usize {
    debug_assert_eq!(vals.len(), rows.len());
    let n = vals.len();
    let threads = threads.max(1);
    if threads == 1 || n < 4 * threads {
        let mut scratch = holix_cracking::vectorized::CrackScratch::new();
        return holix_cracking::vectorized::crack_in_two_oop(vals, rows, pivot, &mut scratch);
    }

    let rings = build_rings(n, threads);

    // Phase 1: each thread partitions its ring in place.
    let vp = SyncPtr(vals.as_mut_ptr());
    let rp = SyncPtr(rows.as_mut_ptr());
    let cuts: Vec<RingCut> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = rings
            .iter()
            .map(|ring| {
                let ring = *ring;
                // SAFETY: rings are pairwise disjoint by construction, so
                // each thread owns its index ranges exclusively.
                s.spawn(move |_| unsafe { partition_ring(vp.get(), rp.get(), ring, pivot) })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ring worker panicked"))
            .collect()
    })
    .expect("concentric scope panicked");

    // Phase 2: swap misplaced regions across the global boundary.
    let boundary: usize = cuts.iter().map(|c| c.low_count).sum();
    let mut high_left: Vec<(usize, usize)> = Vec::new(); // highs at < boundary
    let mut low_right: Vec<(usize, usize)> = Vec::new(); // lows at >= boundary
    for cut in &cuts {
        for &(a, b) in cut.low_segments().iter() {
            if b > boundary {
                low_right.push((a.max(boundary), b));
            }
        }
        for &(a, b) in cut.high_segments().iter() {
            if a < boundary {
                high_left.push((a, b.min(boundary)));
            }
        }
    }
    high_left.retain(|&(a, b)| a < b);
    low_right.retain(|&(a, b)| a < b);
    high_left.sort_unstable();
    low_right.sort_unstable();
    debug_assert_eq!(
        high_left.iter().map(|&(a, b)| b - a).sum::<usize>(),
        low_right.iter().map(|&(a, b)| b - a).sum::<usize>(),
        "misplaced volumes must match"
    );

    // Pair segments into fixed-length swap jobs (two-pointer).
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    let (mut hi, mut lo) = (0usize, 0usize);
    let (mut hpos, mut lpos) = (0usize, 0usize);
    while hi < high_left.len() && lo < low_right.len() {
        let (ha, hb) = high_left[hi];
        let (la, lb) = low_right[lo];
        let take = ((hb - ha) - hpos).min((lb - la) - lpos);
        jobs.push((ha + hpos, la + lpos, take));
        hpos += take;
        lpos += take;
        if hpos == hb - ha {
            hi += 1;
            hpos = 0;
        }
        if lpos == lb - la {
            lo += 1;
            lpos = 0;
        }
    }
    execute_swaps(vals, rows, &jobs, threads);
    boundary
}

/// One ring: a left block `[left_start, left_end)` and a right block
/// `[right_start, right_end)`. The center slice is a ring whose right block
/// is empty.
#[derive(Debug, Clone, Copy)]
struct Ring {
    left_start: usize,
    left_end: usize,
    right_start: usize,
    right_end: usize,
}

impl Ring {
    fn len(&self) -> usize {
        (self.left_end - self.left_start) + (self.right_end - self.right_start)
    }
}

/// Partition outcome of one ring, in global coordinates.
#[derive(Debug, Clone, Copy)]
struct RingCut {
    ring: Ring,
    /// Number of values `< pivot` in the ring.
    low_count: usize,
}

/// Up to two `(start, end)` half-open index ranges; `(0, 0)` entries are
/// empty placeholders.
type SegmentPair = [(usize, usize); 2];

impl RingCut {
    /// Global index where the ring's lows end, in its logical order.
    fn segments(&self) -> (SegmentPair, SegmentPair) {
        let r = self.ring;
        let left_len = r.left_end - r.left_start;
        if self.low_count <= left_len {
            // Boundary inside the left block.
            let cut = r.left_start + self.low_count;
            (
                [(r.left_start, cut), (0, 0)],
                [(cut, r.left_end), (r.right_start, r.right_end)],
            )
        } else {
            // Lows fill the whole left block and spill into the right block.
            let cut = r.right_start + (self.low_count - left_len);
            (
                [(r.left_start, r.left_end), (r.right_start, cut)],
                [(cut, r.right_end), (0, 0)],
            )
        }
    }

    fn low_segments(&self) -> Vec<(usize, usize)> {
        self.segments()
            .0
            .into_iter()
            .filter(|&(a, b)| a < b)
            .collect()
    }

    fn high_segments(&self) -> Vec<(usize, usize)> {
        self.segments()
            .1
            .into_iter()
            .filter(|&(a, b)| a < b)
            .collect()
    }
}

fn build_rings(n: usize, t: usize) -> Vec<Ring> {
    let half = n / (2 * t);
    let mut rings = Vec::with_capacity(t);
    for i in 0..t - 1 {
        rings.push(Ring {
            left_start: i * half,
            left_end: (i + 1) * half,
            right_start: n - (i + 1) * half,
            right_end: n - i * half,
        });
    }
    // Center slice: the contiguous remainder between the innermost blocks.
    rings.push(Ring {
        left_start: (t - 1) * half,
        left_end: n - (t - 1) * half,
        right_start: n - (t - 1) * half,
        right_end: n - (t - 1) * half,
    });
    debug_assert_eq!(rings.iter().map(Ring::len).sum::<usize>(), n);
    rings
}

/// Partitions one ring in place over the logical concatenation
/// (left block ⧺ right block): lows pack leftwards from `left_start`, highs
/// rightwards from `right_end`. Returns the ring's low count.
///
/// # Safety
/// Caller guarantees exclusive ownership of the ring's index ranges.
unsafe fn partition_ring<V: CrackValue>(
    vals: *mut V,
    rows: *mut RowId,
    ring: Ring,
    pivot: V,
) -> RingCut {
    let len = ring.len();
    // Map logical index -> global index.
    let left_len = ring.left_end - ring.left_start;
    let global = |logical: usize| -> usize {
        if logical < left_len {
            ring.left_start + logical
        } else {
            ring.right_start + (logical - left_len)
        }
    };

    let mut i = 0usize;
    let mut j = len;
    // SAFETY: `global` maps into the ring's blocks only; caller owns them.
    unsafe {
        while i < j {
            if *vals.add(global(i)) < pivot {
                i += 1;
            } else {
                j -= 1;
                let (gi, gj) = (global(i), global(j));
                std::ptr::swap(vals.add(gi), vals.add(gj));
                std::ptr::swap(rows.add(gi), rows.add(gj));
            }
        }
    }
    RingCut { ring, low_count: i }
}

/// `Send`-asserting raw pointer for the disjoint-ring pattern. The accessor
/// method keeps Rust 2021 closures from capturing the bare field.
#[derive(Clone, Copy)]
struct SyncPtr<T>(*mut T);

impl<T> SyncPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: rings are disjoint; each thread only touches its own ranges.
unsafe impl<T> Send for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_cracking::crack::is_partitioned;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn check(base: &[i64], pivot: i64, threads: usize) {
        let mut vals = base.to_vec();
        let mut rows: Vec<RowId> = (0..base.len() as u32).collect();
        let split = concentric_partition(&mut vals, &mut rows, pivot, threads);
        assert_eq!(
            split,
            base.iter().filter(|&&v| v < pivot).count(),
            "split point t={threads}"
        );
        assert!(is_partitioned(&vals, split, pivot), "t={threads}");
        assert!(
            vals.iter().zip(&rows).all(|(&v, &r)| base[r as usize] == v),
            "alignment t={threads}"
        );
        let mut a = base.to_vec();
        let mut b = vals;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "multiset t={threads}");
    }

    #[test]
    fn ring_layout_covers_input_exactly() {
        for (n, t) in [(100usize, 4usize), (1_000, 3), (64, 8), (17, 2)] {
            let rings = build_rings(n, t);
            let mut covered = vec![0u8; n];
            for r in &rings {
                for i in (r.left_start..r.left_end).chain(r.right_start..r.right_end) {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "n={n} t={t}: {covered:?}");
        }
    }

    #[test]
    fn small_inputs_fall_back() {
        check(&[3, 1, 4, 1, 5], 3, 4);
        check(&[], 1, 4);
        check(&[9], 1, 4);
    }

    #[test]
    fn random_inputs_many_thread_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let base: Vec<i64> = (0..100_000).map(|_| rng.random_range(0..10_000)).collect();
        for t in [2usize, 3, 4, 8] {
            check(&base, 5_000, t);
            check(&base, 1, t);
            check(&base, 9_999, t);
        }
    }

    #[test]
    fn adversarial_layouts() {
        let n = 50_000;
        let all_low: Vec<i64> = vec![0; n];
        check(&all_low, 5, 4);
        let all_high: Vec<i64> = vec![9; n];
        check(&all_high, 5, 4);
        let mut half: Vec<i64> = vec![0; n / 2];
        half.extend(vec![9i64; n / 2]);
        check(&half, 5, 4);
        half.reverse();
        check(&half, 5, 4);
    }

    #[test]
    fn agrees_with_contiguous_variant() {
        let mut rng = StdRng::seed_from_u64(8);
        let base: Vec<i64> = (0..80_000).map(|_| rng.random_range(0..1_000)).collect();
        for pivot in [0i64, 250, 500, 999, 1_000] {
            let mut v1 = base.clone();
            let mut r1: Vec<RowId> = (0..base.len() as u32).collect();
            let s1 = crate::partition::parallel_partition(&mut v1, &mut r1, pivot, 4);

            let mut v2 = base.clone();
            let mut r2: Vec<RowId> = (0..base.len() as u32).collect();
            let s2 = concentric_partition(&mut v2, &mut r2, pivot, 4);

            assert_eq!(s1, s2, "pivot {pivot}");
        }
    }

    #[test]
    fn concentric_merge_volume_is_smaller_on_uniform_data() {
        // The statistical argument for the concentric layout: per-ring
        // boundaries cluster near the global split. Verify via segment
        // accounting (not timing): count misplaced elements for a uniform
        // input under both layouts.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000usize;
        let base: Vec<i64> = (0..n).map(|_| rng.random_range(0..1_000_000)).collect();
        let pivot = 300_000i64;
        let t = 4usize;

        // Concentric misplaced volume.
        let mut vals = base.clone();
        let mut rows: Vec<RowId> = (0..n as u32).collect();
        let rings = build_rings(n, t);
        let cuts: Vec<RingCut> = rings
            .iter()
            .map(|&ring| unsafe {
                partition_ring(vals.as_mut_ptr(), rows.as_mut_ptr(), ring, pivot)
            })
            .collect();
        let boundary: usize = cuts.iter().map(|c| c.low_count).sum();
        let concentric_misplaced: usize = cuts
            .iter()
            .flat_map(|c| c.high_segments())
            .map(|(a, b)| b.min(boundary).saturating_sub(a))
            .sum();

        // Contiguous misplaced volume: chunk i = [i*c, (i+1)*c), lows first.
        let chunk = n.div_ceil(t);
        let mut contiguous_misplaced = 0usize;
        for (i, part) in base.chunks(chunk).enumerate() {
            let lows = part.iter().filter(|&&v| v < pivot).count();
            let hi_start = i * chunk + lows;
            let hi_end = i * chunk + part.len();
            contiguous_misplaced += hi_end.min(boundary).saturating_sub(hi_start.min(boundary));
        }

        assert!(
            concentric_misplaced <= contiguous_misplaced,
            "concentric {concentric_misplaced} > contiguous {contiguous_misplaced}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_concentric_is_a_partition(
            base in proptest::collection::vec(-100i64..100, 0..4000),
            pivot in -110i64..110,
            threads in 1usize..7,
        ) {
            let mut vals = base.clone();
            let mut rows: Vec<RowId> = (0..base.len() as u32).collect();
            let split = concentric_partition(&mut vals, &mut rows, pivot, threads);
            prop_assert_eq!(split, base.iter().filter(|&&v| v < pivot).count());
            prop_assert!(is_partitioned(&vals, split, pivot));
            prop_assert!(vals.iter().zip(&rows).all(|(&v, &r)| base[r as usize] == v));
        }
    }
}
