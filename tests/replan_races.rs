//! Replan races: forced shard-plan splits and merges while concurrent
//! readers and Ripple updaters hammer the same attribute.
//!
//! Live answers are band-checked (base oracle ± total in-flight churn); at
//! quiesce every window is checked *exactly* against the sorted-scan
//! oracle; and a reader pinned to the old plan version must stay exact
//! after the new plan publishes (the migration republishes the retiring
//! shards' snapshots before the epoch cutover).

use holix::cracking::{CrackScratch, ReplanAction};
use holix::engine::{Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine};
use holix::storage::select::{scan_stats, Predicate};
use holix::workloads::data::uniform_table;
use holix::workloads::QuerySpec;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DOMAIN: i64 = 1 << 20;

fn windows(n: i64) -> Vec<QuerySpec> {
    (0..n)
        .map(|i| QuerySpec {
            attr: 0,
            lo: i * (DOMAIN / n),
            hi: (i + 1) * (DOMAIN / n),
        })
        .collect()
}

#[test]
fn forced_splits_and_merges_race_queries_and_ripple_updaters() {
    const ROWS: usize = 60_000;
    const CHURN: usize = 4_000; // per updater
    let data = Dataset::new(uniform_table(1, ROWS, DOMAIN, 73));
    let mut cfg = HolisticEngineConfig::split_half_sharded(2, 4);
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    let eng = Arc::new(HolisticEngine::new(data.clone(), cfg));

    let qs = windows(8);
    let base: Vec<u64> = qs
        .iter()
        .map(|q| scan_stats(data.column(0), Predicate::range(q.lo, q.hi)).count)
        .collect();

    let done = AtomicBool::new(false);
    let replans = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        // Two query threads: every live answer must sit inside the churn
        // band around the base oracle (each updater moves a window's count
        // by at most CHURN).
        for t in 0..2usize {
            let eng = &eng;
            let (qs, base, done) = (&qs, &base, &done);
            s.spawn(move |_| {
                let mut i = t;
                while !done.load(Ordering::Relaxed) {
                    let q = &qs[i % qs.len()];
                    let count = eng.execute(q);
                    let b = base[i % qs.len()];
                    assert!(
                        count >= b.saturating_sub(CHURN as u64) && count <= b + CHURN as u64,
                        "live count {count} outside the churn band of {b}"
                    );
                    i += 1;
                }
            });
        }
        // Replanner: force splits until the plan is wide, then merges —
        // every application races the readers and updaters above.
        let replan = s.spawn(|_| {
            for round in 0..12u64 {
                let shards = eng.plan_epoch(0).plan.shards();
                let action = if shards < 6 {
                    ReplanAction::Split {
                        shard: (round as usize) % shards,
                    }
                } else {
                    ReplanAction::Merge { left: 0 }
                };
                if eng.force_replan(0, action) {
                    replans.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        // Updater 0: inserts fresh values spread over the whole domain
        // (row ids beyond the base table).
        let ins = s.spawn(|_| {
            for i in 0..CHURN {
                let v = (i as i64).wrapping_mul(257) % DOMAIN;
                eng.queue_insert(0, v, (ROWS + i) as u32);
            }
        });
        // Updater 1: deletes the first CHURN base tuples by (value, row).
        let del = s.spawn(|_| {
            for (row, &v) in data.column(0).iter().enumerate().take(CHURN) {
                eng.queue_delete(0, v, row as u32);
            }
        });
        ins.join().unwrap();
        del.join().unwrap();
        replan.join().unwrap();
        done.store(true, Ordering::Relaxed);
    })
    .unwrap();

    assert!(
        replans.load(Ordering::Relaxed) >= 1,
        "no forced replan ever applied"
    );
    assert!(eng.plan_version(0) >= 1);

    // Quiesce: every window must now be exact — base tuples, minus the
    // deleted ones, plus the inserted values that fall inside it.
    for (q, b) in qs.iter().zip(&base) {
        let deleted = data
            .column(0)
            .iter()
            .take(CHURN)
            .filter(|&&v| q.lo <= v && v < q.hi)
            .count() as u64;
        let inserted = (0..CHURN)
            .map(|i| (i as i64).wrapping_mul(257) % DOMAIN)
            .filter(|&v| q.lo <= v && v < q.hi)
            .count() as u64;
        assert_eq!(
            eng.execute(q),
            b - deleted + inserted,
            "quiesce mismatch for {q:?}"
        );
    }
    eng.stop();
}

#[test]
fn a_reader_pinned_to_the_old_plan_stays_exact_after_the_new_plan_publishes() {
    let data = Dataset::new(uniform_table(1, 40_000, DOMAIN, 91));
    let mut cfg = HolisticEngineConfig::split_half_sharded(2, 4);
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    let eng = HolisticEngine::new(data.clone(), cfg);
    let q = QuerySpec {
        attr: 0,
        lo: 100_000,
        hi: 900_000,
    };
    let expect = scan_stats(data.column(0), Predicate::range(q.lo, q.hi)).count;

    // Pin what an in-flight query would have loaded: the epoch and the
    // sharded column it started against.
    let old_epoch = eng.plan_epoch(0);
    let (old_col, _) = eng.sharded(0);
    assert_eq!(old_epoch.version, 0);

    assert!(
        eng.force_replan(0, ReplanAction::Split { shard: 1 }),
        "forced split did not apply"
    );
    assert!(eng.plan_version(0) >= 1, "no new plan version published");
    assert!(
        !Arc::ptr_eq(&old_col, &eng.sharded(0).0),
        "the published column did not change"
    );

    // The pinned reader finishes against the plan it started with and is
    // still exact: migration merged the retiring shards' pending updates
    // and republished their snapshots before the epoch cutover.
    let mut scratch = CrackScratch::new();
    let (_, stats) = old_col.select_verified(Predicate::range(q.lo, q.hi), &mut scratch);
    assert_eq!(stats.count, expect, "old-plan reader went stale");

    // New-plan traffic agrees, and an update submitted after the cutover
    // routes through the new plan.
    assert_eq!(eng.execute(&q), expect);
    eng.queue_insert(0, 500_000, 40_000);
    assert_eq!(eng.execute(&q), expect + 1);
    eng.stop();
}
