//! Fig 15 — sweep of `x`, the refinements each holistic worker performs per
//! activation (§5.5): more refinements per worker help until the indices
//! converge (the paper settles on x = 16).

use holix_bench::{secs, time, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::patterns::{AttrDist, Pattern, WorkloadSpec};
use holix_workloads::skyserver::SkyServerSpec;
use holix_workloads::QuerySpec;

fn run_engine(engine: &dyn QueryEngine, queries: &[QuerySpec]) -> f64 {
    let (_, d) = time(|| {
        for q in queries {
            std::hint::black_box(engine.execute(q));
        }
    });
    secs(d)
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 15: refinements per worker (x) across workloads",
        "csv: workload,pvdc,pvsdc,x1,x2,x4,x8,x16,x32",
    );
    let xs = [1usize, 2, 4, 8, 16, 32];

    let mut workloads: Vec<(String, usize, Vec<QuerySpec>)> = Pattern::SYNTHETIC
        .iter()
        .map(|&p| {
            let qs = WorkloadSpec {
                pattern: p,
                attr_dist: AttrDist::Uniform,
                n_attrs: env.attrs,
                n_queries: env.queries / 2,
                domain: env.domain,
                seed: 15,
            }
            .generate();
            (p.label().to_string(), env.attrs, qs)
        })
        .collect();
    workloads.push((
        "SkyServer".into(),
        1,
        SkyServerSpec {
            n_queries: env.queries,
            domain: env.domain,
            ..Default::default()
        }
        .generate(),
    ));

    println!("workload,pvdc,pvsdc,x1,x2,x4,x8,x16,x32");
    for (label, attrs, queries) in &workloads {
        let data = Dataset::new(uniform_table(*attrs, env.n / 2, env.domain, 150));
        let pvdc = run_engine(
            &AdaptiveEngine::new(
                data.clone(),
                CrackMode::Pvdc {
                    threads: env.threads,
                },
            ),
            queries,
        );
        let pvsdc = run_engine(
            &AdaptiveEngine::new(
                data.clone(),
                CrackMode::Pvsdc {
                    threads: env.threads,
                },
            ),
            queries,
        );
        print!("{label},{pvdc:.6},{pvsdc:.6}");
        for &x in &xs {
            let mut cfg = HolisticEngineConfig::split_half(env.threads);
            cfg.holistic.refinements_per_worker = x;
            let engine = HolisticEngine::new(data.clone(), cfg);
            let hi = run_engine(&engine, queries);
            engine.stop();
            print!(",{hi:.6}");
        }
        println!();
    }
}
