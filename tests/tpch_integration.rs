//! TPC-H integration: all four engine kinds produce exactly the reference
//! results across many variants, including while the holistic refiners run.

use holix::engine::tpch::{
    HolisticTpch, PresortedTpch, ScanTpch, SidewaysTpch, TpchDb, TpchEngine,
};
use holix::workloads::tpch::{
    generate, q12_reference, q12_variants, q1_reference, q1_variants, q6_reference, q6_variants,
};
use std::sync::Arc;

fn db() -> Arc<TpchDb> {
    Arc::new(TpchDb::new(generate(0.01, 61))) // ~60k lineitems
}

#[test]
fn thirty_variants_of_each_query_agree_everywhere() {
    let db = db();
    let engines: Vec<Box<dyn TpchEngine>> = vec![
        Box::new(ScanTpch::new(Arc::clone(&db))),
        Box::new(PresortedTpch::new(Arc::clone(&db))),
        Box::new(SidewaysTpch::new(Arc::clone(&db))),
        Box::new(HolisticTpch::new(Arc::clone(&db), 610)),
    ];

    for p in q1_variants(30, 611) {
        let expect = q1_reference(&db.li, p);
        for e in &engines {
            assert_eq!(e.q1(p), expect, "{} Q1 {:?}", e.name(), p);
        }
    }
    for p in q6_variants(30, 612) {
        let expect = q6_reference(&db.li, p);
        for e in &engines {
            assert_eq!(e.q6(p), expect, "{} Q6 {:?}", e.name(), p);
        }
    }
    for p in q12_variants(30, 613) {
        let expect = q12_reference(&db.li, &db.orders, p);
        for e in &engines {
            assert_eq!(e.q12(p), expect, "{} Q12 {:?}", e.name(), p);
        }
    }
}

#[test]
fn holistic_queries_race_refiners_without_wrong_answers() {
    let db = db();
    let holistic = HolisticTpch::new(Arc::clone(&db), 620);
    // Interleave queries with ongoing refinement from time zero.
    for (i, p) in q6_variants(40, 621).into_iter().enumerate() {
        assert_eq!(holistic.q6(p), q6_reference(&db.li, p), "variant {i}");
    }
    let refinements = holistic.stop();
    assert!(refinements > 0, "refiners never ran");
}

#[test]
fn q1_aggregates_have_expected_group_structure() {
    let db = db();
    let scan = ScanTpch::new(Arc::clone(&db));
    let p = q1_variants(1, 630)[0];
    let rows = scan.q1(p);
    // Groups are keyed by (returnflag, linestatus); each row's derived
    // aggregates must be internally consistent.
    for ((rf, ls), row) in rows {
        assert!((0..=2).contains(&rf) && (0..=1).contains(&ls));
        assert!(row.count > 0);
        assert!(row.sum_qty >= row.count as i128); // quantity >= 1
        assert!(row.sum_disc_price <= row.sum_base_price * 100);
        assert!(row.sum_charge >= row.sum_disc_price * 100);
    }
}

#[test]
fn q12_counts_split_by_priority_consistently() {
    let db = db();
    let scan = ScanTpch::new(Arc::clone(&db));
    // A window over all receipt dates with two modes: high+low must equal a
    // manual filter count.
    let p = holix::workloads::tpch::Q12Params {
        mode1: 0,
        mode2: 3,
        date_lo: 0,
        date_hi: 10_000,
    };
    let rows = scan.q12(p);
    let total: u64 = rows.iter().map(|&(_, h, l)| h + l).sum();
    let manual = (0..db.li.len())
        .filter(|&i| {
            (db.li.shipmode[i] == 0 || db.li.shipmode[i] == 3)
                && db.li.commitdate[i] < db.li.receiptdate[i]
                && db.li.shipdate[i] < db.li.commitdate[i]
        })
        .count() as u64;
    assert_eq!(total, manual);
}
