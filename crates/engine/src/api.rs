//! The engine interface shared by all five indexing approaches.

use holix_planner::PlanCost;
use holix_workloads::QuerySpec;
use std::sync::Arc;

/// The microbenchmark dataset: a table of `i64` attributes.
#[derive(Debug, Clone)]
pub struct Dataset {
    columns: Arc<Vec<Vec<i64>>>,
}

impl Dataset {
    /// Wraps generated columns.
    pub fn new(columns: Vec<Vec<i64>>) -> Self {
        Dataset {
            columns: Arc::new(columns),
        }
    }

    /// Number of attributes.
    pub fn attrs(&self) -> usize {
        self.columns.len()
    }

    /// Rows per attribute.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Borrow one attribute's values.
    pub fn column(&self, attr: usize) -> &[i64] {
        &self.columns[attr]
    }
}

/// The qualitative feature matrix of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Statistical analysis before query processing.
    pub workload_analysis: bool,
    /// Exploits idle resources before query processing.
    pub idle_before_queries: bool,
    /// Exploits idle resources during query processing.
    pub idle_during_queries: bool,
    /// "full" (true) vs "partial" (false) index materialisation.
    pub full_materialization: bool,
    /// High (true) vs low (false) update/maintenance cost.
    pub high_update_cost: bool,
    /// Adapts to a dynamic workload (vs static physical design).
    pub dynamic: bool,
    /// Answers provably-absent equality/IN probes from a point-membership
    /// filter without touching (or cracking) the indexed data — the
    /// zero-crack screened-probe row of Table 1.
    pub point_screening: bool,
}

/// A query engine over a [`Dataset`]. Engines are `Sync`: §5.8 drives one
/// engine from many concurrent clients.
pub trait QueryEngine: Send + Sync {
    /// Engine name (CSV label).
    fn name(&self) -> &'static str;

    /// Table 1 row for this engine.
    fn capabilities(&self) -> Capabilities;

    /// Executes one range select and returns the qualifying-tuple count.
    /// Index construction costs (sorting, copying, cracking) happen inside,
    /// so wall-clock timing around this call reproduces the paper's
    /// per-query cost attribution.
    fn execute(&self, q: &QuerySpec) -> u64;

    /// Count plus checksum for verification (may be slower; tests only).
    fn execute_verified(&self, q: &QuerySpec) -> (u64, i128);

    /// Stable dispatch-affinity key: queries sharing a key touch the same
    /// underlying index structure (for a sharded engine, one attribute
    /// shard), so a service can pin each key to one dispatcher worker and
    /// keep two workers from latching the same structure. Engines without
    /// sharding group per attribute.
    fn routing_key(&self, q: &QuerySpec) -> u64 {
        q.attr as u64
    }

    /// Version of the shard plan `q`'s attribute would execute against
    /// (engines without versioned plans report 0). Telemetry attaches this
    /// to per-query trace records so live replans show up in lifecycles.
    fn plan_version(&self, q: &QuerySpec) -> u64 {
        let _ = q;
        0
    }

    /// Executes the query and returns the qualifying *values* when the
    /// engine can produce them without a full rescan (`None` otherwise).
    /// The service layer uses this for containment coalescing: a batched
    /// superset query executes once and contained predicates are answered
    /// by post-filtering its values. Callers own the same consistency
    /// caveat as `execute_verified`: concurrent updates between crack and
    /// copy are not serialised.
    fn execute_collect(&self, q: &QuerySpec) -> Option<Vec<i64>> {
        let _ = q;
        None
    }

    /// Lock-free snapshot execution: `(count, sum)` served from the
    /// engine's published piece snapshots — pinning one epoch per touched
    /// shard and taking **no structure lock** — so a long analytical scan
    /// never serialises against cracks or Ripple merges, and a merge in
    /// one value range never stalls readers anywhere else. Consistency is
    /// **per shard** (per value range): each shard contributes a
    /// point-in-time view including updates the engine has accepted but
    /// not yet merged, but shards are pinned sequentially, so a
    /// shard-spanning scan is not one global instant — the same semantics
    /// the locked fan-out has. `None` when the engine has no snapshot
    /// read path (callers fall back to [`QueryEngine::execute`]).
    fn execute_snapshot(&self, q: &QuerySpec) -> Option<(u64, i128)> {
        let _ = q;
        None
    }

    /// Lock-free variant of [`QueryEngine::execute_collect`]: qualifying
    /// values copied out of the piece snapshots under epoch pins instead
    /// of each shard's exclusive structure lock — the service's batched
    /// superset runs stop blocking writers for the duration of the copy.
    ///
    /// The three-way result matters to callers: `Unsupported` invites a
    /// retry through the locked [`QueryEngine::execute_collect`], while
    /// `CapExceeded` means the predicate qualifies more values than any
    /// collect path will materialise — retrying the locked collect would
    /// pay the same doomed copy again, under every shard's structure lock.
    fn execute_collect_snapshot(&self, q: &QuerySpec) -> SnapshotCollect {
        let _ = q;
        SnapshotCollect::Unsupported
    }

    /// Plan-time cost of `q` from the engine's published piece statistics
    /// (see `holix-planner`): crack work, scan work, pending-merge debt
    /// and snapshot freshness, folded over every shard the predicate
    /// intersects. **Must not take any structure or maintenance lock, and
    /// must not materialise cracker columns** — admission control calls
    /// this on every submission, including for attributes no query has
    /// touched yet. `None` when the engine keeps no plan statistics
    /// (callers fall back to cost-blind behaviour).
    fn estimate_cost(&self, q: &QuerySpec) -> Option<PlanCost> {
        let _ = q;
        None
    }

    /// Cuts a shard-spanning range into per-shard sub-queries whose
    /// half-open ranges partition `[q.lo, q.hi)` exactly, each confined to
    /// one [`QueryEngine::routing_key`] — the service layer routes every
    /// part to its pinned worker and folds the counts under one merge
    /// ticket. Stable across index eviction (derives from the immutable
    /// shard plan, like `routing_key`). `None` when the range lies within
    /// a single shard or the engine is unsharded.
    fn decompose(&self, q: &QuerySpec) -> Option<Vec<QuerySpec>> {
        let _ = q;
        None
    }

    /// Executes an IN-list probe — the count of tuples whose `attr` value
    /// equals any of `values` (an equality probe is the one-element case).
    /// Engines with point-membership filters answer non-containing values
    /// without cracking anything; everyone else may fall back to unit-range
    /// executes or return `None` (caller lowers to ranges itself).
    fn execute_points(&self, attr: usize, values: &[i64]) -> Option<u64> {
        let _ = (attr, values);
        None
    }

    /// Executes a multi-attribute conjunction — the count of *base-table*
    /// rows satisfying every term's range predicate on its attribute.
    /// `None` when the engine cannot intersect across attributes (callers
    /// fall back to per-term executes without the intersection).
    fn execute_conjunction(&self, terms: &[QuerySpec]) -> Option<u64> {
        let _ = terms;
        None
    }
}

/// Outcome of [`QueryEngine::execute_collect_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotCollect {
    /// The engine has no snapshot read path — fall back to the locked
    /// collect.
    Unsupported,
    /// The qualifying set exceeds the engine's copy cap; the locked
    /// collect shares the cap, so callers should skip materialisation
    /// entirely.
    CapExceeded,
    /// The qualifying values, served lock-free.
    Values(Vec<i64>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_accessors() {
        let d = Dataset::new(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(d.attrs(), 2);
        assert_eq!(d.rows(), 3);
        assert_eq!(d.column(1), &[4, 5, 6]);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert_eq!(d.attrs(), 0);
        assert_eq!(d.rows(), 0);
    }
}
