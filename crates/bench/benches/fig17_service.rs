//! Fig 17 (service) — naive round-robin vs crack-aware scheduling vs
//! sharded + shard-affine dispatch under a saturated multi-client service
//! (§5.8 grown into the service layer).
//!
//! `HOLIX_CLIENTS` closed-loop sessions hammer one holistic engine through
//! the `holix-server` admission queue with a skewed hot-region workload
//! (per-client Zipf rotation; mostly exact repeats plus jittered
//! variants). The same traffic runs against identical service beds —
//! FIFO dispatch, single-shard crack-aware batching (the PR 2
//! configuration), and a `HOLIX_SHARDS` sweep of sharded engines with
//! shard-affine dispatch (per-worker queues routed by the engine's
//! `(attr, shard)` key, so two workers never latch the same shard) — in
//! three phases per bed: a pre-traffic idle phase (speculative indices,
//! Fig 9 style: daemon at full worker strength), a saturated cold-start
//! warmup (daemon cycles windowed per bed show the §5.8 worker
//! scale-down), then — with all daemons stopped so refine workers cannot
//! confound the comparison — `HOLIX_REPS` measured repetitions
//! *interleaved round-robin* so machine drift hits every bed equally. The
//! harness prints sustained steady-state QPS plus p50/p95/p99 end-to-end
//! latency per bed over the measured phase only, with executed /
//! containment-coalesced counts; every answer is checked against a
//! sorted-column oracle.

use holix_bench::{secs, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{HolisticEngine, HolisticEngineConfig};
use holix_server::{AdmissionPolicy, QueryService, Scheduling, ServiceConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::traffic::{ArrivalProcess, ClientFocus};
use holix_workloads::{QuerySpec, TrafficSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Binary-search count oracle over pre-sorted columns.
fn oracle(sorted: &[Vec<i64>], q: &QuerySpec) -> u64 {
    let col = &sorted[q.attr];
    (col.partition_point(|&v| v < q.hi) - col.partition_point(|&v| v < q.lo)) as u64
}

/// One configuration's engine + service under test.
struct Bed {
    label: String,
    shards: usize,
    engine: Arc<HolisticEngine>,
    service: QueryService,
    /// Dispatcher threads (busy-fraction denominator).
    workers: usize,
    idle_workers_max: usize,
    /// Daemon workers per monitor tick, windowed to this bed's own
    /// saturated warmup rep (cycles from other beds' windows excluded).
    load_workers_avg: f64,
    steady_wall: Duration,
}

/// Drives one full traffic repetition through the bed's service, checking
/// every answer against the oracle; returns the repetition's wall time.
/// Closed-loop streams carry think times (relative sleeps); open-loop
/// streams carry absolute arrival offsets from the repetition start.
fn run_rep(bed: &Bed, traffic: &TrafficSpec, sorted: &[Vec<i64>]) -> Duration {
    let open_loop = !matches!(traffic.arrival, ArrivalProcess::Closed { .. });
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..traffic.clients {
            let stream = traffic.client_stream(c);
            let session = bed.service.session();
            s.spawn(move || {
                for tq in &stream {
                    if open_loop {
                        let target = t0 + tq.at;
                        let now = Instant::now();
                        if target > now {
                            std::thread::sleep(target - now);
                        }
                    } else if !tq.at.is_zero() {
                        std::thread::sleep(tq.at);
                    }
                    let result = session.execute(tq.spec).expect("submit failed");
                    assert_eq!(
                        result.count,
                        oracle(sorted, &tq.spec),
                        "scheduler answer diverged from scan oracle on {:?}",
                        tq.spec
                    );
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 17 (service): fifo vs crack-aware vs sharded shard-affine dispatch",
        "csv: scheduler,shards,clients,completed,executed,containment,qps,p50_ms,p95_ms,p99_ms,idle_workers_max,load_workers_avg,queue_depth_peak,busy_frac",
    );
    let clients = env.clients.max(2);
    let queries_per_client = (env.queries * 8 / clients).max(128);
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 1701));
    let sorted: Vec<Vec<i64>> = (0..env.attrs)
        .map(|a| {
            let mut col = data.column(a).to_vec();
            col.sort_unstable();
            col
        })
        .collect();
    let mut traffic = TrafficSpec::saturating(
        clients,
        queries_per_client,
        env.attrs,
        env.domain,
        env.n as u64 ^ 0x17,
    );
    // Skewed serving mix: a fleet-wide hot set, three quarters exact
    // repeats (cached dashboards), the rest jittered variants that keep
    // fresh cracking work arriving.
    traffic.focus = ClientFocus::HotRegions {
        regions: 16,
        exact_prob: 0.75,
    };
    traffic.arrival = ArrivalProcess::Closed {
        think: Duration::ZERO,
    };
    let monitor_interval = Duration::from_millis(2);
    // Repetition 0 cracks the hot regions (cold start, high variance); the
    // remaining repetitions measure steady-state scheduling behaviour,
    // rotating across the beds so drift cancels.
    let measured_reps = env.reps;

    // Bed sweep: the two single-shard baselines plus a shard-count sweep
    // with shard-affine dispatch (half the sweep value and the value
    // itself, deduplicated).
    let mut bed_specs: Vec<(Scheduling, usize, bool)> = vec![
        (Scheduling::Fifo, 1, false),
        (Scheduling::CrackAware, 1, false),
    ];
    // HOLIX_SHARDS=1 runs the baselines only.
    if env.shards >= 2 {
        let mut sweep: Vec<usize> = vec![(env.shards / 2).max(2), env.shards];
        sweep.dedup();
        for s in sweep {
            bed_specs.push((Scheduling::CrackAware, s, true));
        }
    }

    let mut beds: Vec<Bed> = bed_specs
        .into_iter()
        .map(|(scheduling, shards, affinity)| {
            let mut cfg = HolisticEngineConfig::split_half_sharded(env.threads, shards);
            cfg.holistic.monitor_interval = monitor_interval;
            let engine = Arc::new(HolisticEngine::new(data.clone(), cfg));

            // Brief pre-traffic idle phase: register every attribute
            // speculatively and let the daemon refine at full worker
            // strength (the Fig 9 scenario) so the under-load scale-down is
            // visible in the records. Kept short so the run still has
            // cracking work left to schedule.
            engine.add_potential(&(0..env.attrs).collect::<Vec<_>>());
            std::thread::sleep(monitor_interval * 16);
            let idle_cycles = engine.cycles();
            let idle_workers_max = idle_cycles.iter().map(|c| c.workers).max().unwrap_or(0);

            let workers = (env.threads / 2).max(2);
            let service = QueryService::start(
                Arc::clone(&engine) as Arc<dyn QueryEngine>,
                Some(Arc::clone(engine.accountant())),
                ServiceConfig {
                    workers,
                    queue_capacity: (clients * 4 / if affinity { workers } else { 1 }).max(4),
                    admission: AdmissionPolicy::Block,
                    scheduling,
                    batch_max: (clients * 2).max(32),
                    contexts_per_worker: 1,
                    affinity,
                    // Cost-blind beds: keep this harness comparable with
                    // the PR 2-4 baselines (no plan estimate per executed
                    // query, no snapshot cutover).
                    cutover: false,
                    ..ServiceConfig::default()
                },
            );
            let label = if affinity {
                format!("shard_affine_s{shards}")
            } else {
                scheduling.label().to_string()
            };
            Bed {
                label,
                shards,
                engine,
                service,
                workers,
                idle_workers_max,
                load_workers_avg: 0.0,
                steady_wall: Duration::ZERO,
            }
        })
        .collect();

    // Cold-start warmup: the service saturates while the hot regions are
    // still being cracked — the window where the daemon's scale-down must
    // show. Worker cycles are attributed strictly to each bed's own rep.
    for bed in &mut beds {
        let cycles_before = bed.engine.cycles().len();
        let wall = run_rep(bed, &traffic, &sorted);
        let worker_sum: usize = bed
            .engine
            .cycles()
            .iter()
            .skip(cycles_before)
            .map(|c| c.workers)
            .sum();
        let ticks = (secs(wall) / monitor_interval.as_secs_f64()).max(1.0);
        bed.load_workers_avg = worker_sum as f64 / ticks;
    }
    // Stop all daemons before the measured phase so an idle bed's refine
    // workers can neither steal CPU from the measured bed nor refine their
    // own columns between reps — the steady-state comparison isolates the
    // dispatch configurations. Then start a fresh measurement window past
    // the cold start (every counter rebases, not just latencies).
    for bed in &mut beds {
        bed.engine.stop();
        bed.service.reset_window();
    }
    // Interleaved measured repetitions: machine drift hits every bed
    // equally.
    for _ in 0..measured_reps {
        for bed in &mut beds {
            bed.steady_wall += run_rep(bed, &traffic, &sorted);
        }
    }

    println!(
        "scheduler,shards,clients,completed,executed,containment,qps,p50_ms,p95_ms,p99_ms,idle_workers_max,load_workers_avg,queue_depth_peak,busy_frac"
    );
    let mut crack_aware_s1_qps = 0.0f64;
    let mut best_affine: Option<(String, f64)> = None;
    for bed in beds {
        let steady_completed = (measured_reps * clients * queries_per_client) as f64;
        let qps = steady_completed / secs(bed.steady_wall).max(1e-9);
        if bed.label == "crack_aware" {
            crack_aware_s1_qps = qps;
        }
        if bed.label.starts_with("shard_affine")
            && best_affine.as_ref().is_none_or(|(_, q)| qps > *q)
        {
            best_affine = Some((bed.label.clone(), qps));
        }

        // All columns cover the measured phase only: the window reset after
        // warmup rebased every counter and restarted the latency window.
        let summary = bed.service.shutdown();
        // Fraction of the dispatcher pool's wall-clock capacity spent
        // servicing drained batches (the live-telemetry utilization line;
        // the queue-depth peak is the matching live gauge's window high).
        let busy_frac =
            summary.busy_ns as f64 / (bed.workers as f64 * secs(bed.steady_wall).max(1e-9) * 1e9);
        println!(
            "{},{},{clients},{},{},{},{qps:.1},{:.3},{:.3},{:.3},{},{:.2},{},{busy_frac:.3}",
            bed.label,
            bed.shards,
            summary.completed,
            summary.executed,
            summary.containment,
            summary.p50.as_secs_f64() * 1e3,
            summary.p95.as_secs_f64() * 1e3,
            summary.p99.as_secs_f64() * 1e3,
            bed.idle_workers_max,
            bed.load_workers_avg,
            summary.queue_depth_peak,
        );
    }
    if let Some((label, qps)) = best_affine {
        println!(
            "# sharded_speedup={:.3} ({label} steady-state QPS / single-shard crack_aware QPS, paired reps)",
            qps / crack_aware_s1_qps.max(1e-9)
        );
    }
}
