//! Vectorized, out-of-place crack kernel (Fig 5 of the paper, from [44]
//! "Database Cracking: Fancy Scan, not Poor Man's Sort!").
//!
//! The kernel copies the input piece once and writes the partition into the
//! original storage from both ends with a branch-free cursor update: every
//! element is written to *both* the low and the high cursor, then exactly one
//! cursor advances depending on the comparison. This removes the
//! hard-to-predict branch of the in-place swap loop, which is what makes it
//! the most CPU-efficient single-threaded cracking kernel reported in [44].

use holix_storage::types::{CrackValue, RowId};

/// Reusable scratch buffers so repeated cracks do not re-allocate. One
/// scratch per worker/query thread.
#[derive(Debug)]
pub struct CrackScratch<V> {
    vals: Vec<V>,
    rows: Vec<RowId>,
    /// Middle-region staging for the fused three-way kernel.
    mid_vals: Vec<V>,
    mid_rows: Vec<RowId>,
}

impl<V> Default for CrackScratch<V> {
    fn default() -> Self {
        CrackScratch {
            vals: Vec::new(),
            rows: Vec::new(),
            mid_vals: Vec::new(),
            mid_rows: Vec::new(),
        }
    }
}

impl<V: CrackValue> CrackScratch<V> {
    /// Creates an empty scratch; buffers grow to the largest piece cracked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers only ever grow (monotone high-water mark): the kernels write
    /// every slot of the window they use before reading it back, so slots
    /// are *not* re-initialised per call — the old `clear()` + full
    /// `resize(len, MIN_VALUE)` re-filled the whole scratch on every crack.
    fn prepare(&mut self, len: usize) -> (&mut [V], &mut [RowId]) {
        if self.vals.len() < len {
            self.vals.resize(len, V::MIN_VALUE);
            self.rows.resize(len, 0);
        }
        (&mut self.vals[..len], &mut self.rows[..len])
    }

    /// Like [`CrackScratch::prepare`] plus the middle-region staging buffers
    /// for the fused three-way kernel.
    #[allow(clippy::type_complexity)]
    fn prepare3(&mut self, len: usize) -> (&mut [V], &mut [RowId], &mut [V], &mut [RowId]) {
        if self.vals.len() < len {
            self.vals.resize(len, V::MIN_VALUE);
            self.rows.resize(len, 0);
        }
        if self.mid_vals.len() < len {
            self.mid_vals.resize(len, V::MIN_VALUE);
            self.mid_rows.resize(len, 0);
        }
        (
            &mut self.vals[..len],
            &mut self.rows[..len],
            &mut self.mid_vals[..len],
            &mut self.mid_rows[..len],
        )
    }
}

/// Out-of-place, branch-free two-way partition: after the call, `vals` holds
/// all elements `< pivot` before all elements `>= pivot` (rows permuted in
/// lockstep). Returns the split point.
pub fn crack_in_two_oop<V: CrackValue>(
    vals: &mut [V],
    rows: &mut [RowId],
    pivot: V,
    scratch: &mut CrackScratch<V>,
) -> usize {
    debug_assert_eq!(vals.len(), rows.len());
    let n = vals.len();
    if n == 0 {
        return 0;
    }
    let (sv, sr) = scratch.prepare(n);

    // Partition from the source into the scratch from both ends.
    let mut lo = 0usize;
    let mut hi = n;
    for i in 0..n {
        let v = vals[i];
        let r = rows[i];
        // Write to both frontier slots; exactly one survives. While k
        // elements are placed, `lo + (n - hi) == k < n`, so `lo < hi` and
        // both indices are in the unfilled window.
        sv[lo] = v;
        sr[lo] = r;
        sv[hi - 1] = v;
        sr[hi - 1] = r;
        let is_low = (v < pivot) as usize;
        lo += is_low;
        hi -= 1 - is_low;
    }
    debug_assert_eq!(lo, hi);

    vals.copy_from_slice(sv);
    rows.copy_from_slice(sr);
    lo
}

/// Out-of-place three-way partition `[< lo | lo <= v < hi | >= hi]` in a
/// **single** branch-free pass. Three cursors advance through one scan:
/// lows fill the scratch from the left, highs from the right, and middles
/// stage in a side buffer that is copied into the remaining gap at the end
/// — every element is written to all three frontier slots and exactly one
/// cursor moves, so the loop carries no data-dependent branch. Returns
/// `(a, b)` bounding the middle region.
///
/// (The previous implementation composed two full two-way passes; the
/// fused form reads the piece once instead of ~twice.)
pub fn crack_in_three_oop<V: CrackValue>(
    vals: &mut [V],
    rows: &mut [RowId],
    lo: V,
    hi: V,
    scratch: &mut CrackScratch<V>,
) -> (usize, usize) {
    debug_assert!(lo <= hi);
    debug_assert_eq!(vals.len(), rows.len());
    let n = vals.len();
    if n == 0 {
        return (0, 0);
    }
    let (sv, sr, mv, mr) = scratch.prepare3(n);

    let mut l = 0usize;
    let mut h = n;
    let mut m = 0usize;
    for i in 0..n {
        let v = vals[i];
        let r = rows[i];
        // Write to the low, middle and high frontier slots; exactly one
        // survives. While k elements are placed, `l + (n - h) <= k < n`, so
        // `l < h` and both scratch indices stay inside the unfilled window;
        // `m <= k` keeps the middle buffer in bounds.
        sv[l] = v;
        sr[l] = r;
        sv[h - 1] = v;
        sr[h - 1] = r;
        mv[m] = v;
        mr[m] = r;
        let is_low = (v < lo) as usize;
        let is_high = (v >= hi) as usize;
        l += is_low;
        h -= is_high;
        m += 1 - is_low - is_high;
    }
    debug_assert_eq!(h - l, m);
    sv[l..h].copy_from_slice(&mv[..m]);
    sr[l..h].copy_from_slice(&mr[..m]);

    vals.copy_from_slice(sv);
    rows.copy_from_slice(sr);
    (l, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crack::{crack_in_two, is_partitioned};
    use proptest::prelude::*;

    #[test]
    fn oop_matches_inplace_split() {
        let base = vec![5i64, 1, 9, 3, 7, 3, 5];
        let mut scratch = CrackScratch::new();

        let mut v1 = base.clone();
        let mut r1: Vec<RowId> = (0..7).collect();
        let s1 = crack_in_two(&mut v1, &mut r1, 5);

        let mut v2 = base.clone();
        let mut r2: Vec<RowId> = (0..7).collect();
        let s2 = crack_in_two_oop(&mut v2, &mut r2, 5, &mut scratch);

        assert_eq!(s1, s2);
        assert!(is_partitioned(&v2, s2, 5));
    }

    #[test]
    fn oop_empty_and_single() {
        let mut scratch = CrackScratch::new();
        let mut v: Vec<i64> = vec![];
        let mut r: Vec<RowId> = vec![];
        assert_eq!(crack_in_two_oop(&mut v, &mut r, 3, &mut scratch), 0);

        let mut v = vec![7i64];
        let mut r = vec![0u32];
        assert_eq!(crack_in_two_oop(&mut v, &mut r, 3, &mut scratch), 0);
        assert_eq!(crack_in_two_oop(&mut v, &mut r, 8, &mut scratch), 1);
    }

    #[test]
    fn fused_three_way_matches_two_pass_composition() {
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1_000) as i64
        };
        let base: Vec<i64> = (0..5_000).map(|_| next()).collect();
        let rows: Vec<RowId> = (0..base.len() as u32).collect();
        let mut scratch = CrackScratch::new();
        for (lo, hi) in [(0, 0), (200, 700), (500, 500), (999, 1_000), (0, 999)] {
            let mut v1 = base.clone();
            let mut r1 = rows.clone();
            let (a, b) = crack_in_three_oop(&mut v1, &mut r1, lo, hi, &mut scratch);

            // Reference: two composed two-way passes.
            let mut v2 = base.clone();
            let mut r2 = rows.clone();
            let a2 = crack_in_two_oop(&mut v2, &mut r2, lo, &mut scratch);
            let b2 = a2 + crack_in_two_oop(&mut v2[a2..], &mut r2[a2..], hi, &mut scratch);
            assert_eq!((a, b), (a2, b2), "split points differ for [{lo},{hi})");
            assert!(v1[..a].iter().all(|&x| x < lo));
            assert!(v1[a..b].iter().all(|&x| lo <= x && x < hi));
            assert!(v1[b..].iter().all(|&x| x >= hi));
            // Rowids stay aligned and the multiset is preserved.
            assert!(v1.iter().zip(&r1).all(|(&vv, &rr)| base[rr as usize] == vv));
            let mut s1 = v1.clone();
            let mut s2 = base.clone();
            s1.sort_unstable();
            s2.sort_unstable();
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        let mut scratch = CrackScratch::new();
        for n in [100usize, 10, 1000, 1] {
            let mut v: Vec<i64> = (0..n as i64).rev().collect();
            let mut r: Vec<RowId> = (0..n as u32).collect();
            let split = crack_in_two_oop(&mut v, &mut r, n as i64 / 2, &mut scratch);
            assert!(is_partitioned(&v, split, n as i64 / 2));
        }
    }

    proptest! {
        #[test]
        fn prop_oop_two_equivalent_to_inplace(
            base in proptest::collection::vec(-50i64..50, 0..300),
            pivot in -60i64..60,
        ) {
            let mut scratch = CrackScratch::new();
            let mut v = base.clone();
            let mut r: Vec<RowId> = (0..base.len() as u32).collect();
            let split = crack_in_two_oop(&mut v, &mut r, pivot, &mut scratch);
            prop_assert!(is_partitioned(&v, split, pivot));
            // alignment with base through rowids
            prop_assert!(v.iter().zip(&r).all(|(&vv, &rr)| base[rr as usize] == vv));
            // multiset preserved
            let mut a = base.clone();
            let mut b = v.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_oop_three_regions(
            base in proptest::collection::vec(-50i64..50, 0..300),
            p1 in -60i64..60,
            p2 in -60i64..60,
        ) {
            let (lo, hi) = (p1.min(p2), p1.max(p2));
            let mut scratch = CrackScratch::new();
            let mut v = base.clone();
            let mut r: Vec<RowId> = (0..base.len() as u32).collect();
            let (a, b) = crack_in_three_oop(&mut v, &mut r, lo, hi, &mut scratch);
            prop_assert!(v[..a].iter().all(|&x| x < lo));
            prop_assert!(v[a..b].iter().all(|&x| lo <= x && x < hi));
            prop_assert!(v[b..].iter().all(|&x| x >= hi));
            prop_assert!(v.iter().zip(&r).all(|(&vv, &rr)| base[rr as usize] == vv));
        }
    }
}
