//! Service-level latency and throughput accounting.
//!
//! The dispatcher records one end-to-end latency sample (enqueue →
//! completion) per query plus counters for admission decisions and engine
//! executions; [`StatsSummary`] condenses them into the sustained-QPS and
//! tail-latency numbers the `fig17_service` harness prints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latency samples kept for percentile estimation. Beyond this, reservoir
/// sampling (Vitter's algorithm R) keeps a uniform sample of the whole
/// history so a long-lived service's memory stays bounded.
const MAX_SAMPLES: usize = 1 << 16;

/// Shared counters + latency samples for one service instance.
#[derive(Debug, Default)]
pub struct ServiceStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    /// Engine executions performed. Crack-aware batching coalesces duplicate
    /// predicates inside a batch, so this can be below `completed`.
    executed: AtomicU64,
    /// Queries answered by post-filtering a batched superset's values
    /// (containment coalescing) — strict subsets only; exact duplicates are
    /// visible as `completed − executed` instead.
    containment: AtomicU64,
    /// Containment runs served through the engine's lock-free snapshot
    /// collect path (an epoch ticket per touched shard) instead of the
    /// shard-locking collect.
    snapshot_runs: AtomicU64,
    latencies: Mutex<Reservoir>,
}

/// Bounded uniform sample over an unbounded stream.
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<Duration>,
    /// Stream length so far.
    seen: u64,
    /// xorshift64* state for replacement indices (seeded on first overflow;
    /// statistical sampling only, determinism not required).
    rng: u64,
}

impl Reservoir {
    fn push(&mut self, d: Duration) {
        self.seen += 1;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(d);
            return;
        }
        if self.rng == 0 {
            self.rng = 0x9E37_79B9_7F4A_7C15 ^ self.seen;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let r = self.rng % self.seen;
        if (r as usize) < MAX_SAMPLES {
            self.samples[r as usize] = d;
        }
    }
}

impl ServiceStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a query accepted into the queue.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query turned away by admission control.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one engine execution (which may answer several queries).
    pub fn record_executed(&self) {
        self.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query answered by post-filtering a superset's result.
    pub fn record_containment(&self) {
        self.containment.fetch_add(1, Ordering::Relaxed);
    }

    /// Containment-coalesced queries so far.
    pub fn containment(&self) -> u64 {
        self.containment.load(Ordering::Relaxed)
    }

    /// Records a containment run answered from a snapshot (lock-free) read.
    pub fn record_snapshot_run(&self) {
        self.snapshot_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot-served containment runs so far.
    pub fn snapshot_runs(&self) -> u64 {
        self.snapshot_runs.load(Ordering::Relaxed)
    }

    /// Starts a fresh percentile window: clears the latency reservoir (the
    /// monotonic counters keep running). Harnesses call this after a
    /// cold-start warmup so the reported percentiles cover steady state.
    pub fn reset_latencies(&self) {
        let mut r = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        r.samples.clear();
        r.seen = 0;
    }

    /// Records a completed query with its enqueue-to-completion latency.
    pub fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(latency);
    }

    /// Queries accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Queries rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queries completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Summarises everything recorded so far over `wall` elapsed time.
    pub fn summary(&self, wall: Duration) -> StatsSummary {
        let mut lat = self
            .latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .samples
            .clone();
        lat.sort_unstable();
        let completed = self.completed.load(Ordering::Relaxed);
        StatsSummary {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            containment: self.containment.load(Ordering::Relaxed),
            snapshot_runs: self.snapshot_runs.load(Ordering::Relaxed),
            wall,
            qps: if wall.is_zero() {
                0.0
            } else {
                completed as f64 / wall.as_secs_f64()
            },
            p50: percentile(&lat, 0.50),
            p95: percentile(&lat, 0.95),
            p99: percentile(&lat, 0.99),
            max: lat.last().copied().unwrap_or(Duration::ZERO),
        }
    }
}

/// Condensed service metrics (one row of the Fig 17 service CSV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries answered.
    pub completed: u64,
    /// Queries turned away by admission control.
    pub rejected: u64,
    /// Engine executions (≤ completed when batching coalesces duplicates).
    pub executed: u64,
    /// Queries answered from a batched superset's post-filtered values.
    pub containment: u64,
    /// Containment runs whose superset was materialised through the
    /// engine's lock-free snapshot read path.
    pub snapshot_runs: u64,
    /// Wall time the summary covers.
    pub wall: Duration,
    /// Sustained completions per second over `wall`.
    pub qps: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Worst observed end-to-end latency.
    pub max: Duration,
}

/// Nearest-rank percentile over an ascending-sorted sample set; zero when
/// empty. `q` is a fraction in `[0, 1]`.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&s, 0.50), ms(50));
        assert_eq!(percentile(&s, 0.95), ms(95));
        assert_eq!(percentile(&s, 0.99), ms(99));
        assert_eq!(percentile(&s, 1.0), ms(100));
        assert_eq!(percentile(&s, 0.0), ms(1)); // clamps to the first rank
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 0.99), ms(7));
    }

    #[test]
    fn summary_counts_and_qps() {
        let stats = ServiceStats::new();
        for i in 1..=10 {
            stats.record_submitted();
            stats.record_executed();
            stats.record_completed(ms(i));
        }
        stats.record_rejected();
        stats.record_containment();
        let s = stats.summary(Duration::from_secs(2));
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.executed, 10);
        assert_eq!(s.containment, 1);
        assert!((s.qps - 5.0).abs() < 1e-9);
        assert_eq!(s.p50, ms(5));
        assert_eq!(s.max, ms(10));
    }

    #[test]
    fn summary_on_empty_stats() {
        let s = ServiceStats::new().summary(Duration::ZERO);
        assert_eq!(s.completed, 0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_representative() {
        let mut r = Reservoir::default();
        // 4x the capacity of identical samples: size stays capped and every
        // retained sample is from the stream.
        for _ in 0..(MAX_SAMPLES * 4) {
            r.push(ms(5));
        }
        assert_eq!(r.samples.len(), MAX_SAMPLES);
        assert_eq!(r.seen, (MAX_SAMPLES * 4) as u64);
        assert!(r.samples.iter().all(|&d| d == ms(5)));
        // A second value fed after overflow must be able to displace old
        // samples (replacement actually happens).
        for _ in 0..(MAX_SAMPLES * 4) {
            r.push(ms(9));
        }
        assert!(r.samples.iter().any(|&d| d == ms(9)));
    }
}
