//! End-to-end behaviour of the holistic tuning layer: convergence to
//! C_optimal, monotone piece growth, strategy behaviour, and the accounting
//! loop between engine load and worker activation.

use holix::core::handle::CrackerHandle;
use holix::core::index_space::{IndexSpace, Membership};
use holix::core::{CpuMonitor, HolisticConfig, HolisticDaemon, LoadAccountant, Strategy};
use holix::cracking::CrackerColumn;
use holix::engine::{Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine};
use holix::workloads::data::uniform_table;
use holix::workloads::WorkloadSpec;
use std::sync::Arc;
use std::time::Duration;

fn fast_config(strategy: Strategy) -> HolisticConfig {
    HolisticConfig {
        monitor_interval: Duration::from_millis(1),
        strategy,
        ..HolisticConfig::default()
    }
}

#[test]
fn daemon_converges_every_strategy_to_optimal() {
    for strategy in Strategy::ALL {
        let space = Arc::new(IndexSpace::new(fast_config(strategy)));
        for c in 0..3 {
            let base: Vec<i64> = (0..60_000).map(|i| (i * 37) % 100_000).collect();
            space.register_actual(Arc::new(CrackerHandle::new(Arc::new(
                CrackerColumn::from_base(format!("c{c}"), &base),
            ))));
        }
        let monitor = LoadAccountant::new(4);
        let daemon = HolisticDaemon::spawn(
            Arc::clone(&space),
            monitor as Arc<dyn CpuMonitor>,
            fast_config(strategy),
        );
        // Wait (bounded) for convergence.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let (_, _, optimal, _) = space.membership_counts();
            if optimal == 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{strategy}: stuck at {:?}",
                space.membership_counts()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        daemon.stop();
        // Optimal means avg piece ≤ |L1| for every index.
        for id in space.live_ids() {
            assert_eq!(
                space.membership(id),
                Some(Membership::Optimal),
                "{strategy}"
            );
        }
    }
}

#[test]
fn holistic_creates_more_pieces_than_adaptive_for_same_queries() {
    let data = Dataset::new(uniform_table(4, 100_000, 1 << 20, 31));
    let queries = WorkloadSpec::random(4, 80, 1 << 20, 310).generate();

    let adaptive = holix::engine::AdaptiveEngine::new(
        data.clone(),
        holix::engine::CrackMode::Pvdc { threads: 2 },
    );
    for q in &queries {
        adaptive.execute(q);
    }

    let mut cfg = HolisticEngineConfig::split_half(4);
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    let holistic = HolisticEngine::new(data, cfg);
    for q in &queries {
        holistic.execute(q);
        // Give the daemon room to interleave, as real queries would.
        if holistic.total_pieces().is_multiple_of(7) {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Bounded wait: the daemon must eventually push holistic past the
    // query-driven piece count.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while holistic.total_pieces() <= adaptive.total_pieces() {
        assert!(
            std::time::Instant::now() < deadline,
            "holistic {} <= adaptive {}",
            holistic.total_pieces(),
            adaptive.total_pieces()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    holistic.stop();
}

#[test]
fn saturated_engine_never_activates_workers() {
    let data = Dataset::new(uniform_table(2, 50_000, 1 << 20, 32));
    let mut cfg = HolisticEngineConfig::split_half(2);
    cfg.user_threads = 2; // every query occupies all contexts
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    let engine = HolisticEngine::new(data, cfg);

    // Hold external load so the accountant reports zero idle contexts.
    let _external = engine.accountant().begin_task(2);
    let queries = WorkloadSpec::random(2, 30, 1 << 20, 320).generate();
    for q in &queries {
        engine.execute(q);
    }
    std::thread::sleep(Duration::from_millis(50));
    let cycles = engine.stop();
    assert!(
        cycles.is_empty(),
        "workers activated under saturation: {cycles:?}"
    );
}

#[test]
fn exact_hit_statistics_accumulate() {
    let data = Dataset::new(uniform_table(1, 50_000, 1 << 20, 33));
    let mut cfg = HolisticEngineConfig::split_half(4);
    cfg.holistic.monitor_interval = Duration::from_millis(500); // daemon mostly quiet
    let engine = HolisticEngine::new(data, cfg);
    let q = holix::workloads::QuerySpec {
        attr: 0,
        lo: 1_000,
        hi: 2_000,
    };
    for _ in 0..5 {
        engine.execute(&q);
    }
    let id = engine.space().live_ids()[0];
    let (_, stats) = engine.space().get(id).unwrap();
    assert_eq!(stats.queries(), 5);
    // First execution cracks, the other four are exact hits.
    assert_eq!(stats.exact_hits(), 4);
    engine.stop();
}

#[test]
fn cycle_records_capture_worker_activity() {
    // The timing *shape* of Fig 6(d) (early cycles expensive, late cycles
    // cheap) is regenerated by `fig06d_workers`; wall-clock assertions are
    // too flaky under test-runner contention, so this test checks the
    // structural properties of the records. Column size keeps the early
    // (first-crack + encoded-refresh) cycles short enough in debug builds
    // that several cycles start inside the idle window below even on one
    // core.
    let data = Dataset::new(uniform_table(4, 100_000, 1 << 20, 34));
    let mut cfg = HolisticEngineConfig::split_half(4);
    cfg.holistic.monitor_interval = Duration::from_millis(1);
    let engine = HolisticEngine::new(data, cfg);
    // Create the indices, then idle so the daemon works alone.
    for attr in 0..4 {
        engine.execute(&holix::workloads::QuerySpec { attr, lo: 0, hi: 1 });
    }
    std::thread::sleep(Duration::from_millis(300));
    let cycles = engine.stop();
    assert!(cycles.len() >= 3, "too few cycles: {}", cycles.len());
    let total_refinements: u64 = cycles.iter().map(|c| c.refinements).sum();
    assert!(total_refinements > 0);
    for (i, c) in cycles.iter().enumerate() {
        // While a query runs, 2 of the 4 contexts are busy → 2 workers;
        // once the engine idles every context is free → 4 workers.
        assert!(c.workers == 2 || c.workers == 4, "cycle {i}: {}", c.workers);
        assert!(c.wall <= c.worker_time_total.max(c.wall), "cycle {i}");
        assert!(
            c.refinements > 0 || c.busy > 0 || c.worker_time_total > Duration::ZERO,
            "empty cycle {i} recorded"
        );
    }
}
