//! Type-erased handles to refinable adaptive indices.
//!
//! The index space manages indices over columns of different value types
//! (`i32` dates, `i64` measures, …). [`RefinableIndex`] erases the value
//! type down to the operations holistic tuning needs: piece statistics for
//! Equation (1) and random-pivot refinement.

use holix_cracking::{CrackScratch, CrackerColumn, RefineOutcome};
use holix_storage::types::CrackValue;
use parking_lot::Mutex;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a type-erased refinement step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineResult {
    /// A piece was split (length of the partitioned piece).
    Refined { piece_len: usize },
    /// The drawn pivot already was a boundary.
    AlreadyBound,
    /// All attempted pieces were latched.
    Busy,
}

/// What holistic tuning needs from an adaptive index, independent of the
/// concrete value type.
pub trait RefinableIndex: Send + Sync {
    /// Index (column) name.
    fn name(&self) -> &str;
    /// Tuples in the cracker column.
    fn len(&self) -> usize;
    /// `true` when the cracker column holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Current piece count `p`.
    fn piece_count(&self) -> usize;
    /// Value width in bytes (for the `L1s` term of Equation 1).
    fn value_width(&self) -> usize;
    /// Materialised bytes (values + row ids + index) for budgeting.
    fn payload_bytes(&self) -> usize;
    /// One refinement at a random pivot; tries up to `attempts` pivots when
    /// pieces are latched. Also merges pending updates for the target piece.
    fn refine_random(&self, rng: &mut dyn RngCore, attempts: usize) -> RefineResult;
    /// Republishes the index's plan-time statistics if stale (the holistic
    /// daemon forces this once per worker activation, so `holix-planner`
    /// summaries never lag an idle period). Default: no planner surface.
    fn publish_plan_stats(&self) {}
    /// Background snapshot maintenance: refresh one stale snapshot piece
    /// to live granularity so the first reader stops paying the copy
    /// (snapshot follow-up (b)). Returns `true` when a piece was
    /// refreshed. Default: no snapshot surface.
    fn refresh_snapshot(&self) -> bool {
        false
    }
    /// Background membership-filter maintenance: rebuild the point filter
    /// when delete churn has degraded its false-positive rate (deletes
    /// stay in a Bloom filter until rebuilt). Returns `true` when a
    /// rebuild ran. Default: no filter surface.
    fn maybe_rebuild_filter(&self) -> bool {
        false
    }
    /// Background segment morphing: re-encode one stable plain snapshot
    /// piece (FOR / delta / RLE) so the storage budget charges encoded
    /// bytes instead of full-width copies. Returns `true` when a piece was
    /// morphed. Default: no snapshot surface.
    fn morph_cold_segments(&self) -> bool {
        false
    }
    /// [`RefinableIndex::morph_cold_segments`] without any rate gate: under
    /// budget pressure the idle workers morph imminent-eviction attributes
    /// *now* — shrinking their footprint is what can still save them, so
    /// the usual every-Nth-activation pacing would be self-defeating.
    /// Returns `true` when a piece was morphed. Default: no snapshot
    /// surface.
    fn morph_cold_segments_now(&self) -> bool {
        false
    }
}

/// [`RefinableIndex`] adapter around a [`CrackerColumn`].
///
/// Keeps a small pool of crack scratch buffers so concurrent workers do not
/// re-allocate per refinement.
pub struct CrackerHandle<V> {
    col: Arc<CrackerColumn<V>>,
    scratch_pool: Mutex<Vec<CrackScratch<V>>>,
    morph_tick: AtomicU64,
}

/// Morph attempts happen on every `MORPH_ATTEMPT_PERIOD`-th worker
/// activation of a handle, not every one. Encoding sorts the candidate
/// piece — by far the most expensive idle action — and on an index that is
/// still converging (refinements re-staling the snapshot every cycle) an
/// every-activation morph would dominate the daemon's cycle time. A quiet
/// index still drains its plain pieces within a few monitor intervals.
const MORPH_ATTEMPT_PERIOD: u64 = 4;

impl<V: CrackValue> CrackerHandle<V> {
    /// Wraps a shared cracker column.
    pub fn new(col: Arc<CrackerColumn<V>>) -> Self {
        CrackerHandle {
            col,
            scratch_pool: Mutex::new(Vec::new()),
            morph_tick: AtomicU64::new(0),
        }
    }

    /// The underlying column.
    pub fn column(&self) -> &Arc<CrackerColumn<V>> {
        &self.col
    }

    fn take_scratch(&self) -> CrackScratch<V> {
        self.scratch_pool.lock().pop().unwrap_or_default()
    }

    fn return_scratch(&self, s: CrackScratch<V>) {
        let mut pool = self.scratch_pool.lock();
        if pool.len() < 64 {
            pool.push(s);
        }
    }
}

impl<V: CrackValue> RefinableIndex for CrackerHandle<V> {
    fn name(&self) -> &str {
        self.col.name()
    }

    fn len(&self) -> usize {
        self.col.len()
    }

    fn piece_count(&self) -> usize {
        self.col.piece_count()
    }

    fn value_width(&self) -> usize {
        V::width()
    }

    fn payload_bytes(&self) -> usize {
        self.col.payload_bytes()
    }

    fn refine_random(&self, mut rng: &mut dyn RngCore, attempts: usize) -> RefineResult {
        let mut scratch = self.take_scratch();
        let outcome = self.col.refine_random(&mut rng, &mut scratch, attempts);
        self.return_scratch(scratch);
        match outcome {
            RefineOutcome::Refined { piece_len } => RefineResult::Refined { piece_len },
            RefineOutcome::AlreadyBound => RefineResult::AlreadyBound,
            RefineOutcome::Busy => RefineResult::Busy,
        }
    }

    fn publish_plan_stats(&self) {
        self.col.maybe_publish_stats(1);
    }

    fn refresh_snapshot(&self) -> bool {
        self.col.refresh_stale_snapshot()
    }

    fn maybe_rebuild_filter(&self) -> bool {
        self.col.maybe_rebuild_point_filter()
    }

    fn morph_cold_segments(&self) -> bool {
        if !self
            .morph_tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(MORPH_ATTEMPT_PERIOD)
        {
            return false;
        }
        self.col.morph_cold_segments()
    }

    fn morph_cold_segments_now(&self) -> bool {
        self.col.morph_cold_segments()
    }
}

/// Distance to the optimal index per Equation (1):
/// `d(I, I_opt) = N/p − L1s`, floored at zero.
pub fn distance_to_optimal(index: &dyn RefinableIndex, l1_bytes: usize) -> u64 {
    let n = index.len();
    let p = index.piece_count().max(1);
    let l1s = (l1_bytes / index.value_width().max(1)).max(1);
    (n / p).saturating_sub(l1s) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn handle(n: usize) -> CrackerHandle<i64> {
        let base: Vec<i64> = (0..n as i64).rev().collect();
        CrackerHandle::new(Arc::new(CrackerColumn::from_base("a", &base)))
    }

    #[test]
    fn adapter_reports_column_properties() {
        let h = handle(10_000);
        assert_eq!(h.len(), 10_000);
        assert_eq!(h.piece_count(), 1);
        assert_eq!(h.value_width(), 8);
        assert_eq!(h.name(), "a");
        assert!(h.payload_bytes() >= 10_000 * 12);
    }

    #[test]
    fn refine_random_through_erased_type() {
        let h = handle(10_000);
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_ref: &dyn RefinableIndex = &h;
        let mut refined = 0;
        for _ in 0..50 {
            if matches!(
                dyn_ref.refine_random(&mut rng, 4),
                RefineResult::Refined { .. }
            ) {
                refined += 1;
            }
        }
        assert!(refined > 30, "only {refined} refinements succeeded");
        assert_eq!(h.piece_count(), refined + 1);
    }

    #[test]
    fn distance_shrinks_with_refinement() {
        let h = handle(100_000);
        let l1 = 32 * 1024;
        let d0 = distance_to_optimal(&h, l1);
        assert_eq!(d0, 100_000 - 4096);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            h.refine_random(&mut rng, 8);
        }
        let d1 = distance_to_optimal(&h, l1);
        assert!(d1 < d0 / 10, "d1={d1}");
    }

    #[test]
    fn distance_zero_when_pieces_fit_l1() {
        let h = handle(1_000); // 1000 values < 4096-value L1 budget
        assert_eq!(distance_to_optimal(&h, 32 * 1024), 0);
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let h = handle(1_000);
        let s1 = h.take_scratch();
        h.return_scratch(s1);
        assert_eq!(h.scratch_pool.lock().len(), 1);
        let _s2 = h.take_scratch();
        assert_eq!(h.scratch_pool.lock().len(), 0);
    }
}
