//! Fig 8 — per-query response time of adaptive indexing on a single
//! attribute: the first queries are slow because they reorganise big
//! partitions; the curve collapses as pieces shrink (§5.1).

use holix_bench::{run_per_query, secs, BenchEnv};
use holix_engine::api::Dataset;
use holix_engine::{AdaptiveEngine, CrackMode};
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 8: per-query response time of adaptive indexing (one attribute)",
        "csv: query,seconds",
    );
    let data = Dataset::new(uniform_table(1, env.n, env.domain, 8));
    let n_queries = env.queries.min(100);
    let queries = WorkloadSpec::random(1, n_queries, env.domain, 80).generate();

    let engine = AdaptiveEngine::new(
        data,
        CrackMode::Pvdc {
            threads: env.threads,
        },
    );
    let times = run_per_query(&engine, &queries);
    println!("query,seconds");
    for (i, t) in times.iter().enumerate() {
        println!("{},{:.6}", i + 1, secs(*t));
    }
    let first10: f64 = times.iter().take(10).map(|&d| secs(d)).sum();
    let last10: f64 = times.iter().rev().take(10).map(|&d| secs(d)).sum();
    println!("# first10={first10:.6} last10={last10:.6}");
}
