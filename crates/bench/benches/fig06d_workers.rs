//! Fig 6(d) — idle-CPU utilisation: total worker response time and number of
//! activated workers per tuning cycle (§5.1). The first activations are
//! expensive (big pieces); later cycles are cheap as the indices converge.

use holix_bench::{run_per_query, secs, BenchEnv};
use holix_engine::api::Dataset;
use holix_engine::{HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 6(d): holistic worker activations per tuning cycle",
        "csv: cycle,workers,worker_time_total_s,wall_s,refinements,busy_skips",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 6));
    let queries = WorkloadSpec::random(env.attrs, env.queries, env.domain, 60).generate();

    let engine = HolisticEngine::new(data, HolisticEngineConfig::split_half(env.threads));
    run_per_query(&engine, &queries);
    let cycles = engine.stop();

    println!("cycle,workers,worker_time_total,wall,refinements,busy_skips");
    for (i, c) in cycles.iter().enumerate() {
        println!(
            "{},{},{:.6},{:.6},{},{}",
            i + 1,
            c.workers,
            secs(c.worker_time_total),
            secs(c.wall),
            c.refinements,
            c.busy
        );
    }
    let total_ref: u64 = cycles.iter().map(|c| c.refinements).sum();
    println!(
        "# activations={} total_refinements={total_ref}",
        cycles.len()
    );
}
