//! Multi-client drivers (§5.8 "Varying Number of Clients").
//!
//! [`run_clients`] supersedes the old `holix_engine::session::run_clients`
//! round-robin harness: queries are dealt round-robin to `clients`
//! closed-loop sessions of a [`QueryService`] whose dispatcher pool matches
//! the client count, so concurrency semantics are unchanged while every
//! query flows through admission control and the scheduler.

use crate::batcher::Scheduling;
use crate::dispatcher::{QueryService, ServiceConfig};
use crate::queue::AdmissionPolicy;
use holix_core::cpu::LoadAccountant;
use holix_engine::api::QueryEngine;
use holix_workloads::QuerySpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-client outcome.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Client index.
    pub client: usize,
    /// Queries the client executed.
    pub queries: usize,
    /// Sum of the client's per-query end-to-end latencies.
    pub busy_time: Duration,
}

/// Runs `queries` round-robin across `clients` concurrent closed-loop
/// sessions; returns total wall time and per-client reports.
pub fn run_clients(
    engine: Arc<dyn QueryEngine>,
    queries: &[QuerySpec],
    clients: usize,
) -> (Duration, Vec<ClientReport>) {
    run_clients_with(engine, None, queries, clients, Scheduling::Fifo)
}

/// [`run_clients`] with an explicit load accountant and scheduling policy.
pub fn run_clients_with(
    engine: Arc<dyn QueryEngine>,
    accountant: Option<Arc<LoadAccountant>>,
    queries: &[QuerySpec],
    clients: usize,
    scheduling: Scheduling,
) -> (Duration, Vec<ClientReport>) {
    let clients = clients.max(1);
    let service = QueryService::start(
        engine,
        accountant,
        ServiceConfig {
            workers: clients,
            queue_capacity: clients.max(4),
            admission: AdmissionPolicy::Block,
            scheduling,
            // FIFO drains one query per dispatcher pass, keeping the
            // engine-level concurrency identical to the old round-robin
            // harness (every in-flight query on its own thread). Crack-aware
            // needs multi-query batches to reorder/coalesce at all, trading
            // some dispatch concurrency for batching.
            batch_max: match scheduling {
                Scheduling::Fifo => 1,
                Scheduling::CrackAware => (clients / 2).max(2),
            },
            contexts_per_worker: 1,
            affinity: false,
            ..ServiceConfig::default()
        },
    );
    let t0 = Instant::now();
    let reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let my_queries: Vec<QuerySpec> =
                    queries.iter().skip(c).step_by(clients).copied().collect();
                let session = service.session();
                s.spawn(move || {
                    let mut busy = Duration::ZERO;
                    for q in &my_queries {
                        let result = session.execute(*q).expect("closed-loop submit failed");
                        busy += result.latency;
                    }
                    ClientReport {
                        client: c,
                        queries: my_queries.len(),
                        busy_time: busy,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect::<Vec<_>>()
    });
    let wall = t0.elapsed();
    service.shutdown();
    (wall, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_engine::api::Dataset;
    use holix_engine::{AdaptiveEngine, CrackMode};
    use holix_workloads::data::uniform_table;
    use holix_workloads::WorkloadSpec;

    #[test]
    fn clients_split_the_workload() {
        let data = Dataset::new(uniform_table(2, 50_000, 100_000, 1));
        let engine: Arc<dyn QueryEngine> =
            Arc::new(AdaptiveEngine::new(data, CrackMode::Sequential));
        let queries = WorkloadSpec::random(2, 64, 100_000, 2).generate();
        let (wall, reports) = run_clients(engine, &queries, 4);
        assert!(wall > Duration::ZERO);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports.iter().map(|r| r.queries).sum::<usize>(), 64);
        assert!(reports.iter().all(|r| r.queries == 16));
    }

    #[test]
    fn concurrent_clients_get_correct_counts() {
        let data = Dataset::new(uniform_table(1, 50_000, 1_000, 3));
        let base: Vec<i64> = data.column(0).to_vec();
        let engine: Arc<dyn QueryEngine> =
            Arc::new(AdaptiveEngine::new(data, CrackMode::Sequential));
        let expect = base.iter().filter(|&&v| (100..300).contains(&v)).count() as u64;
        let queries: Vec<QuerySpec> = (0..32)
            .map(|_| QuerySpec {
                attr: 0,
                lo: 100,
                hi: 300,
            })
            .collect();
        for scheduling in [Scheduling::Fifo, Scheduling::CrackAware] {
            let (_, reports) = run_clients_with(Arc::clone(&engine), None, &queries, 4, scheduling);
            assert_eq!(reports.iter().map(|r| r.queries).sum::<usize>(), 32);

            // Every answer on the *concurrent* path must equal the scan
            // oracle — four racing sessions, identical predicates, so
            // crack-aware coalescing is exercised under contention too.
            let service = QueryService::start(
                Arc::clone(&engine),
                None,
                ServiceConfig {
                    workers: 4,
                    scheduling,
                    ..ServiceConfig::default()
                },
            );
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let session = service.session();
                    let queries = &queries;
                    s.spawn(move || {
                        for q in queries {
                            assert_eq!(session.execute(*q).unwrap().count, expect);
                        }
                    });
                }
            });
            service.shutdown();
        }
    }
}
