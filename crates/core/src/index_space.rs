//! The index space `IS = C_actual ∪ C_potential` and its management (§4.1).
//!
//! - `C_actual` — indices created by user queries; candidates for weighted
//!   refinement.
//! - `C_potential` — indices added speculatively (by the system during idle
//!   time, or manually); refined when `C_actual` offers nothing.
//! - `C_optimal` — indices whose average piece fits in L1 (Equation 1);
//!   excluded from further background refinement.
//!
//! A storage budget bounds the materialised index bytes; exceeding it evicts
//! least-frequently-used indices (§4.2 "Storage Constraints").

use crate::config::HolisticConfig;
use crate::handle::{distance_to_optimal, RefinableIndex, RefineResult};
use crate::stats::IndexStats;
use crate::strategy::Strategy;
use crate::weight_heap::WeightHeap;
use parking_lot::RwLock;
use rand::seq::IndexedRandom;
use rand::RngCore;
use std::sync::Arc;

/// Slot id of an index inside the space (stable for the space's lifetime).
pub type IndexId = usize;

/// Which configuration an index currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// Created by a user query; candidate for weighted refinement.
    Actual,
    /// Added speculatively; refined when `C_actual` is exhausted.
    Potential,
    /// Average piece size ≤ |L1|; no further background refinement.
    Optimal,
    /// Evicted by the storage budget; the owner should drop and possibly
    /// re-create it.
    Dropped,
}

struct Entry {
    /// `None` once evicted — a Dropped entry must not pin the column's
    /// payload in memory (only the membership tombstone remains).
    handle: Option<Arc<dyn RefinableIndex>>,
    stats: Arc<IndexStats>,
    membership: Membership,
}

struct Inner {
    entries: Vec<Entry>,
    /// Heap over `C_actual` entries with non-zero weight (strategies W1–W3;
    /// maintained under W4 too so optimality transitions are uniform).
    heap: WeightHeap,
}

/// Registry of adaptive indices with weights, memberships and budget.
pub struct IndexSpace {
    inner: RwLock<Inner>,
    config: HolisticConfig,
}

impl IndexSpace {
    /// Empty space.
    pub fn new(config: HolisticConfig) -> Self {
        IndexSpace {
            inner: RwLock::new(Inner {
                entries: Vec::new(),
                heap: WeightHeap::new(),
            }),
            config,
        }
    }

    /// The configuration this space runs with.
    pub fn config(&self) -> &HolisticConfig {
        &self.config
    }

    /// Registers an index created by a user query (goes to `C_actual`).
    /// Returns the slot id and the shared statistics handle the select
    /// operator updates.
    pub fn register_actual(&self, handle: Arc<dyn RefinableIndex>) -> (IndexId, Arc<IndexStats>) {
        self.register(handle, Membership::Actual)
    }

    /// Registers a speculative index (goes to `C_potential`).
    pub fn register_potential(
        &self,
        handle: Arc<dyn RefinableIndex>,
    ) -> (IndexId, Arc<IndexStats>) {
        self.register(handle, Membership::Potential)
    }

    fn register(
        &self,
        handle: Arc<dyn RefinableIndex>,
        membership: Membership,
    ) -> (IndexId, Arc<IndexStats>) {
        let mut inner = self.inner.write();
        self.make_room(&mut inner, handle.payload_bytes());
        let stats = Arc::new(IndexStats::new());
        let id = inner.entries.len();
        let d = distance_to_optimal(handle.as_ref(), self.config.l1_bytes);
        let membership = if d == 0 {
            Membership::Optimal
        } else {
            membership
        };
        inner.entries.push(Entry {
            handle: Some(handle),
            stats: Arc::clone(&stats),
            membership,
        });
        if membership == Membership::Actual {
            let w = self.config.strategy.weight(d, 0, 0);
            inner.heap.upsert(id, w);
        }
        (id, stats)
    }

    /// Evicts least-frequently-used indices until `incoming` bytes fit in
    /// the budget (no-op when unlimited). The incoming index is always
    /// admitted even if it alone exceeds the budget — dropping the index a
    /// query needs right now would leave the query unanswerable.
    fn make_room(&self, inner: &mut Inner, incoming: usize) {
        let Some(budget) = self.config.storage_budget else {
            return;
        };
        loop {
            let used: usize = inner
                .entries
                .iter()
                .filter(|e| e.membership != Membership::Dropped)
                .filter_map(|e| e.handle.as_ref().map(|h| h.payload_bytes()))
                .sum();
            if used + incoming <= budget {
                return;
            }
            // LFU victim among all live entries.
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.membership != Membership::Dropped)
                .min_by_key(|(_, e)| e.stats.queries())
                .map(|(i, _)| i);
            let Some(v) = victim else { return };
            inner.entries[v].membership = Membership::Dropped;
            // Release the column payload; the tombstone keeps only stats.
            inner.entries[v].handle = None;
            inner.heap.remove(v);
        }
    }

    /// Handle and stats for a slot (`None` when dropped/unknown).
    pub fn get(&self, id: IndexId) -> Option<(Arc<dyn RefinableIndex>, Arc<IndexStats>)> {
        let inner = self.inner.read();
        let e = inner.entries.get(id)?;
        if e.membership == Membership::Dropped {
            return None;
        }
        Some((Arc::clone(e.handle.as_ref()?), Arc::clone(&e.stats)))
    }

    /// Current membership of a slot.
    pub fn membership(&self, id: IndexId) -> Option<Membership> {
        self.inner.read().entries.get(id).map(|e| e.membership)
    }

    /// Records a user query on an index: updates `f_I` / `f_Ih`, promotes a
    /// potential index to `C_actual`, refreshes the weight.
    pub fn record_user_query(&self, id: IndexId, exact_hit: bool, bounds_cracked: u64) {
        let mut inner = self.inner.write();
        let Some(e) = inner.entries.get_mut(id) else {
            return;
        };
        if e.membership == Membership::Dropped {
            return;
        }
        e.stats.record_query(exact_hit, bounds_cracked);
        if e.membership == Membership::Potential {
            e.membership = Membership::Actual;
        }
        self.refresh_weight(&mut inner, id);
    }

    /// Records a worker refinement outcome and refreshes the weight.
    pub fn record_worker_outcome(&self, id: IndexId, result: RefineResult) {
        let mut inner = self.inner.write();
        let Some(e) = inner.entries.get_mut(id) else {
            return;
        };
        match result {
            RefineResult::Refined { .. } => e.stats.record_worker_refinement(),
            RefineResult::Busy => e.stats.record_worker_busy(),
            RefineResult::AlreadyBound => {}
        }
        self.refresh_weight(&mut inner, id);
    }

    /// Recomputes `W_I`; moves the index to `C_optimal` when `d = 0`
    /// ("Remove I from IS if d(I, I_opt) = 0", Fig 2).
    fn refresh_weight(&self, inner: &mut Inner, id: IndexId) {
        let e = &inner.entries[id];
        if matches!(e.membership, Membership::Dropped | Membership::Optimal) {
            return;
        }
        let Some(handle) = e.handle.as_ref() else {
            return;
        };
        let d = distance_to_optimal(handle.as_ref(), self.config.l1_bytes);
        if d == 0 {
            inner.entries[id].membership = Membership::Optimal;
            inner.heap.remove(id);
            return;
        }
        if inner.entries[id].membership == Membership::Actual {
            let stats = &inner.entries[id].stats;
            let w = self
                .config
                .strategy
                .weight(d, stats.queries(), stats.exact_hits());
            inner.heap.upsert(id, w);
        }
    }

    /// Picks the next index to refine per the configured strategy:
    /// highest weight in `C_actual` (W1–W3) or a uniformly random member
    /// (W4); falls back to a random `C_potential` entry when `C_actual` has
    /// no candidates.
    pub fn pick(&self, rng: &mut dyn RngCore) -> Option<(IndexId, Arc<dyn RefinableIndex>)> {
        let inner = self.inner.read();
        let mut pick_random = |members: Membership| -> Option<IndexId> {
            let ids: Vec<IndexId> = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.membership == members)
                .map(|(i, _)| i)
                .collect();
            let mut rng = rng_compat(rng);
            ids.choose(&mut rng).copied()
        };
        let id = match self.config.strategy {
            Strategy::W4Random => pick_random(Membership::Actual),
            _ => inner
                .heap
                .peek_max()
                .filter(|&(_, w)| w > 0)
                .map(|(k, _)| k),
        };
        let id = id.or_else(|| pick_random(Membership::Potential))?;
        let handle = inner.entries[id].handle.as_ref()?;
        Some((id, Arc::clone(handle)))
    }

    /// `(actual, potential, optimal, dropped)` counts.
    pub fn membership_counts(&self) -> (usize, usize, usize, usize) {
        let inner = self.inner.read();
        let mut c = (0, 0, 0, 0);
        for e in &inner.entries {
            match e.membership {
                Membership::Actual => c.0 += 1,
                Membership::Potential => c.1 += 1,
                Membership::Optimal => c.2 += 1,
                Membership::Dropped => c.3 += 1,
            }
        }
        c
    }

    /// Total pieces across live indices (the Fig 6(c) series).
    pub fn total_pieces(&self) -> usize {
        let inner = self.inner.read();
        inner
            .entries
            .iter()
            .filter(|e| e.membership != Membership::Dropped)
            .filter_map(|e| e.handle.as_ref().map(|h| h.piece_count()))
            .sum()
    }

    /// Materialised bytes across live indices.
    pub fn bytes_used(&self) -> usize {
        let inner = self.inner.read();
        inner
            .entries
            .iter()
            .filter(|e| e.membership != Membership::Dropped)
            .filter_map(|e| e.handle.as_ref().map(|h| h.payload_bytes()))
            .sum()
    }

    /// Ids of all live indices.
    pub fn live_ids(&self) -> Vec<IndexId> {
        let inner = self.inner.read();
        inner
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.membership != Membership::Dropped)
            .map(|(i, _)| i)
            .collect()
    }
}

/// `rand`'s `choose` needs `Rng: Sized`; wrap the dynamic RNG.
fn rng_compat<'a>(rng: &'a mut dyn RngCore) -> impl rand::Rng + 'a {
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::CrackerHandle;
    use holix_cracking::CrackerColumn;
    use rand::prelude::*;

    fn space_with(strategy: Strategy, budget: Option<usize>) -> IndexSpace {
        IndexSpace::new(HolisticConfig {
            strategy,
            storage_budget: budget,
            ..HolisticConfig::default()
        })
    }

    fn make_handle(n: usize, name: &str) -> Arc<dyn RefinableIndex> {
        let base: Vec<i64> = (0..n as i64).rev().collect();
        Arc::new(CrackerHandle::new(Arc::new(CrackerColumn::from_base(
            name, &base,
        ))))
    }

    #[test]
    fn register_actual_and_pick_by_weight() {
        let space = space_with(Strategy::W1Distance, None);
        let (small, _) = space.register_actual(make_handle(50_000, "small"));
        let (big, _) = space.register_actual(make_handle(200_000, "big"));
        assert_eq!(space.membership(small), Some(Membership::Actual));
        let mut rng = StdRng::seed_from_u64(1);
        // W1 picks the largest-distance index: the big one.
        let (picked, _) = space.pick(&mut rng).unwrap();
        assert_eq!(picked, big);
    }

    #[test]
    fn tiny_index_is_immediately_optimal() {
        let space = space_with(Strategy::W1Distance, None);
        let (id, _) = space.register_actual(make_handle(100, "tiny"));
        assert_eq!(space.membership(id), Some(Membership::Optimal));
        let mut rng = StdRng::seed_from_u64(2);
        assert!(space.pick(&mut rng).is_none());
    }

    #[test]
    fn refinement_drives_index_to_optimal() {
        let space = space_with(Strategy::W1Distance, None);
        let (id, _) = space.register_actual(make_handle(30_000, "a"));
        let mut rng = StdRng::seed_from_u64(3);
        let mut steps = 0;
        while space.membership(id) == Some(Membership::Actual) {
            let (pid, h) = space.pick(&mut rng).expect("pickable");
            assert_eq!(pid, id);
            let res = h.refine_random(&mut rng, 8);
            space.record_worker_outcome(pid, res);
            steps += 1;
            assert!(steps < 10_000, "did not converge");
        }
        assert_eq!(space.membership(id), Some(Membership::Optimal));
        assert_eq!(space.membership_counts(), (0, 0, 1, 0));
    }

    #[test]
    fn potential_used_when_actual_empty_and_promoted_on_query() {
        let space = space_with(Strategy::W2FrequencyDistance, None);
        let (id, _) = space.register_potential(make_handle(50_000, "p"));
        let mut rng = StdRng::seed_from_u64(4);
        let (picked, _) = space.pick(&mut rng).unwrap();
        assert_eq!(picked, id);
        assert_eq!(space.membership(id), Some(Membership::Potential));
        space.record_user_query(id, false, 2);
        assert_eq!(space.membership(id), Some(Membership::Actual));
    }

    #[test]
    fn w2_prefers_frequently_queried() {
        let space = space_with(Strategy::W2FrequencyDistance, None);
        let (cold, _) = space.register_actual(make_handle(100_000, "cold"));
        let (hot, _) = space.register_actual(make_handle(100_000, "hot"));
        for _ in 0..10 {
            space.record_user_query(hot, false, 1);
        }
        let mut rng = StdRng::seed_from_u64(5);
        let (picked, _) = space.pick(&mut rng).unwrap();
        assert_eq!(picked, hot);
        let _ = cold;
    }

    #[test]
    fn w3_discounts_exact_hits() {
        let space = space_with(Strategy::W3MissDistance, None);
        let (hits, _) = space.register_actual(make_handle(100_000, "hits"));
        let (misses, _) = space.register_actual(make_handle(100_000, "misses"));
        for _ in 0..10 {
            space.record_user_query(hits, true, 0); // exact hits
            space.record_user_query(misses, false, 2);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let (picked, _) = space.pick(&mut rng).unwrap();
        assert_eq!(picked, misses);
        let _ = hits;
    }

    #[test]
    fn lfu_eviction_respects_budget() {
        // Each 10k-i64 index is ~120 KiB + index overhead; budget fits ~2.
        let space = space_with(Strategy::W4Random, Some(300 * 1024));
        let (a, _) = space.register_actual(make_handle(10_000, "a"));
        let (b, _) = space.register_actual(make_handle(10_000, "b"));
        // Make `a` hot so `b` is the LFU victim.
        for _ in 0..5 {
            space.record_user_query(a, false, 1);
        }
        let (c, _) = space.register_actual(make_handle(10_000, "c"));
        assert_eq!(space.membership(b), Some(Membership::Dropped));
        assert_eq!(space.membership(a), Some(Membership::Actual));
        assert_eq!(space.membership(c), Some(Membership::Actual));
        assert!(space.get(b).is_none());
        assert!(space.bytes_used() <= 300 * 1024);
    }

    #[test]
    fn eviction_releases_the_column_payload() {
        let space = space_with(Strategy::W4Random, Some(300 * 1024));
        let base: Vec<i64> = (0..10_000i64).rev().collect();
        let victim: Arc<dyn RefinableIndex> = Arc::new(CrackerHandle::new(Arc::new(
            CrackerColumn::from_base("victim", &base),
        )));
        let weak = Arc::downgrade(&victim);
        let (v, _) = space.register_actual(victim);
        // Two more registrations blow the budget; `v` is the LFU victim.
        space.register_actual(make_handle(10_000, "b"));
        space.register_actual(make_handle(10_000, "c"));
        assert_eq!(space.membership(v), Some(Membership::Dropped));
        assert!(
            weak.upgrade().is_none(),
            "dropped entry still pins the column payload"
        );
    }

    #[test]
    fn total_pieces_sums_live_indices() {
        let space = space_with(Strategy::W4Random, None);
        let (id, _) = space.register_actual(make_handle(50_000, "a"));
        space.register_actual(make_handle(50_000, "b"));
        assert_eq!(space.total_pieces(), 2);
        let (_, h) = space.get(id).map(|(h, s)| (s, h)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        h.refine_random(&mut rng, 8);
        assert_eq!(space.total_pieces(), 3);
    }
}
