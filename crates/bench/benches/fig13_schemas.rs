//! Fig 13 — more benefits with complex schemas (§5.4): sweep the number of
//! attributes (5–10) under {random, skewed} attribute distributions ×
//! {random, periodic} value patterns; compare PVDC, PVSDC and holistic
//! indexing under all four index-decision strategies W1–W4.
//!
//! Expected shape: holistic's edge grows with the attribute count; all
//! strategies are close, with W4 (random) robust on periodic values.

use holix_bench::{secs, time, BenchEnv};
use holix_core::Strategy;
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::patterns::{AttrDist, Pattern, WorkloadSpec};
use holix_workloads::QuerySpec;

fn run_engine(engine: &dyn QueryEngine, queries: &[QuerySpec]) -> f64 {
    let (_, d) = time(|| {
        for q in queries {
            std::hint::black_box(engine.execute(q));
        }
    });
    secs(d)
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 13: attribute sweep x attribute/value distributions x strategies",
        "csv: attr_dist,value_pattern,attrs,pvdc,pvsdc,hi_w1,hi_w2,hi_w3,hi_w4",
    );
    // This experiment multiplies many configurations; shrink per-config work.
    let n = env.n / 2;
    let n_queries = env.queries / 2;

    println!("attr_dist,value_pattern,attrs,pvdc,pvsdc,hi_w1,hi_w2,hi_w3,hi_w4");
    for attr_dist in [AttrDist::Uniform, AttrDist::Skewed] {
        for pattern in [Pattern::Random, Pattern::Periodic] {
            for attrs in [5usize, 6, 7, 8, 9, 10] {
                let data = Dataset::new(uniform_table(attrs, n, env.domain, 13));
                let queries = WorkloadSpec {
                    pattern,
                    attr_dist,
                    n_attrs: attrs,
                    n_queries,
                    domain: env.domain,
                    seed: 130,
                }
                .generate();

                let pvdc = run_engine(
                    &AdaptiveEngine::new(
                        data.clone(),
                        CrackMode::Pvdc {
                            threads: env.threads,
                        },
                    ),
                    &queries,
                );
                let pvsdc = run_engine(
                    &AdaptiveEngine::new(
                        data.clone(),
                        CrackMode::Pvsdc {
                            threads: env.threads,
                        },
                    ),
                    &queries,
                );
                let mut hi = Vec::new();
                for strategy in Strategy::ALL {
                    let mut cfg = HolisticEngineConfig::split_half(env.threads);
                    cfg.holistic.strategy = strategy;
                    let engine = HolisticEngine::new(data.clone(), cfg);
                    hi.push(run_engine(&engine, &queries));
                    engine.stop();
                }
                let dist = match attr_dist {
                    AttrDist::Uniform => "random_attrs",
                    AttrDist::Skewed => "skewed_attrs",
                };
                println!(
                    "{dist},{},{attrs},{pvdc:.6},{pvsdc:.6},{:.6},{:.6},{:.6},{:.6}",
                    pattern.label(),
                    hi[0],
                    hi[1],
                    hi[2],
                    hi[3]
                );
            }
        }
    }
}
