//! Fig 12 — robustness across workload patterns (§5.3): total processing
//! cost of PVDC, PVSDC and holistic indexing on Random, Skewed, Periodic,
//! Sequential and the synthetic SkyServer trace.
//!
//! Expected shape: PVDC blows up on Sequential/Skewed (big unindexed
//! pieces); PVSDC repairs most of it; holistic wins everywhere because its
//! refinements span the whole domain and keep running.

use holix_bench::{secs, time, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::patterns::{AttrDist, Pattern, WorkloadSpec};
use holix_workloads::skyserver::SkyServerSpec;
use holix_workloads::QuerySpec;

fn run_engine(engine: &dyn QueryEngine, queries: &[QuerySpec]) -> f64 {
    let (_, d) = time(|| {
        for q in queries {
            std::hint::black_box(engine.execute(q));
        }
    });
    secs(d)
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 12: robustness across workload patterns",
        "csv: workload,pvdc,pvsdc,holistic (total seconds)",
    );

    let mut workloads: Vec<(String, usize, Vec<QuerySpec>)> = Pattern::SYNTHETIC
        .iter()
        .map(|&p| {
            let qs = WorkloadSpec {
                pattern: p,
                attr_dist: AttrDist::Uniform,
                n_attrs: env.attrs,
                n_queries: env.queries,
                domain: env.domain,
                seed: 12,
            }
            .generate();
            (p.label().to_string(), env.attrs, qs)
        })
        .collect();
    // SkyServer: one attribute, 10× more queries (paper: 10⁴ vs 10³).
    workloads.push((
        "SkyServer".into(),
        1,
        SkyServerSpec {
            n_queries: env.queries * 4,
            domain: env.domain,
            ..Default::default()
        }
        .generate(),
    ));

    println!("workload,pvdc,pvsdc,holistic");
    for (label, attrs, queries) in &workloads {
        let data = Dataset::new(uniform_table(*attrs, env.n, env.domain, 120));
        let pvdc = run_engine(
            &AdaptiveEngine::new(
                data.clone(),
                CrackMode::Pvdc {
                    threads: env.threads,
                },
            ),
            queries,
        );
        let pvsdc = run_engine(
            &AdaptiveEngine::new(
                data.clone(),
                CrackMode::Pvsdc {
                    threads: env.threads,
                },
            ),
            queries,
        );
        let engine = HolisticEngine::new(data, HolisticEngineConfig::split_half(env.threads));
        let hi = run_engine(&engine, queries);
        engine.stop();
        println!("{label},{pvdc:.6},{pvsdc:.6},{hi:.6}");
    }
}
