//! Fig 6(c) — cumulative number of index partitions across all adaptive
//! indices as the query sequence evolves, adaptive vs holistic (§5.1).
//! Holistic indexing creates more pieces because background refinement keeps
//! cracking while queries run.

use holix_bench::{sample_indices, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 6(c): cumulative index partitions over the query sequence",
        "csv: query,adaptive_pieces,holistic_pieces",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 6));
    let queries = WorkloadSpec::random(env.attrs, env.queries, env.domain, 60).generate();

    let adaptive_engine = AdaptiveEngine::new(
        data.clone(),
        CrackMode::Pvdc {
            threads: env.threads,
        },
    );
    let mut adaptive_pieces = Vec::with_capacity(env.queries);
    for q in &queries {
        adaptive_engine.execute(q);
        adaptive_pieces.push(adaptive_engine.total_pieces());
    }

    let holistic_engine = HolisticEngine::new(data, HolisticEngineConfig::split_half(env.threads));
    let mut holistic_pieces = Vec::with_capacity(env.queries);
    for q in &queries {
        holistic_engine.execute(q);
        holistic_pieces.push(holistic_engine.total_pieces());
    }
    holistic_engine.stop();

    println!("query,adaptive_pieces,holistic_pieces");
    for i in sample_indices(env.queries, 40) {
        println!("{},{},{}", i + 1, adaptive_pieces[i], holistic_pieces[i]);
    }
    println!(
        "# final: adaptive={} holistic={}",
        adaptive_pieces.last().unwrap_or(&0),
        holistic_pieces.last().unwrap_or(&0)
    );
}
