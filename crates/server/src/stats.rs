//! Service-level latency and throughput accounting.
//!
//! The dispatcher records one end-to-end latency sample (enqueue →
//! completion) per query plus counters for admission decisions and engine
//! executions; [`StatsSummary`] condenses them into the sustained-QPS and
//! tail-latency numbers the service harnesses print.
//!
//! ## Per-window reporting
//!
//! Harnesses interleave measured repetitions across service beds, so a
//! summary must cover *one rep window*, not the service's lifetime —
//! cumulative containment/snapshot counters would make later reps look
//! better than earlier ones. [`ServiceStats::reset_window`] snapshots every
//! counter as the new baseline and clears the latency reservoir;
//! [`ServiceStats::summary`] reports counters relative to that baseline.
//! Lifetime totals stay available through the individual accessors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latency samples kept for percentile estimation. Beyond this, reservoir
/// sampling (Vitter's algorithm R) keeps a uniform sample of the whole
/// history so a long-lived service's memory stays bounded.
const MAX_SAMPLES: usize = 1 << 16;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// One full set of service counters (live values or a window
        /// baseline).
        #[derive(Debug, Default)]
        struct Counters {
            $($(#[$doc])* $name: AtomicU64,)*
        }

        impl Counters {
            /// Copies every live value into `base` (starts a new window).
            /// Release stores pair with the Acquire loads in
            /// [`ServiceStats::summary`]'s `windowed` closure: a summary
            /// that observes the new baseline also observes every live
            /// increment the baseline covered.
            fn store_into(&self, base: &Counters) {
                $(base.$name.store(self.$name.load(Ordering::Acquire), Ordering::Release);)*
            }
        }
    };
}

counters! {
    submitted,
    completed,
    rejected,
    /// Engine executions performed. Crack-aware batching coalesces
    /// duplicate predicates inside a batch, so this can be below
    /// `completed`.
    executed,
    /// Queries answered by post-filtering a batched superset's values
    /// (containment coalescing) — strict subsets only.
    containment,
    /// Containment runs served through the engine's lock-free snapshot
    /// collect path instead of the shard-locking collect.
    snapshot_runs,
    /// Whole read-only queries the dispatcher routed through
    /// `execute_snapshot` because the cost model's snapshot/locked
    /// cutover said the snapshot's edge pieces beat the locked crack.
    snapshot_cutover,
    /// Spanning queries cut into per-shard sub-queries (each counts once,
    /// however many parts it produced).
    decomposed,
    /// Per-shard sub-queries produced by decomposition.
    decomposed_parts,
    /// Decomposed parts a full queue pushed back onto the submitting
    /// client (inline execution — decomposition's backpressure).
    decomp_inline,
    /// Cheap (exact-hit / near-optimal) queries admitted past a full
    /// queue — the "never shed" guarantee, via overflow slack or inline
    /// execution.
    admitted_cheap,
    /// Filter-screened point probes executed inline at submission: the
    /// membership filter priced them near-free, so they never spend a
    /// queue slot even under overload.
    screened_inline,
    /// Expensive queries served inline from the lock-free snapshot path
    /// instead of being shed (cost-based admission's downgrade).
    downgraded_snapshot,
    /// Rejections whose query priced Expensive at shed time.
    shed_expensive,
    /// Rejections whose query priced Cheap at shed time. Cost-aware
    /// admission keeps this at zero by construction; FIFO shedding does
    /// not.
    shed_cheap,
}

/// Shared counters + latency samples for one service instance.
#[derive(Debug, Default)]
pub struct ServiceStats {
    live: Counters,
    /// Live values at the last [`ServiceStats::reset_window`].
    window: Counters,
    latencies: Mutex<Reservoir>,
}

/// Bounded uniform sample over an unbounded stream.
#[derive(Debug, Default)]
struct Reservoir {
    samples: Vec<Duration>,
    /// Stream length so far.
    seen: u64,
    /// xorshift64* state for replacement indices (seeded on first overflow;
    /// statistical sampling only, determinism not required).
    rng: u64,
}

impl Reservoir {
    fn push(&mut self, d: Duration) {
        self.seen += 1;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(d);
            return;
        }
        if self.rng == 0 {
            self.rng = 0x9E37_79B9_7F4A_7C15 ^ self.seen;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let r = self.rng % self.seen;
        if (r as usize) < MAX_SAMPLES {
            self.samples[r as usize] = d;
        }
    }
}

/// The outcome classes of one plan-priced admission or routing decision
/// (traced per outcome into [`ServiceStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// A cheap query admitted past a full queue (overflow slack or
    /// inline execution) — never shed.
    CheapAdmitted,
    /// A filter-screened point probe executed inline at submission
    /// (near-free: the membership filter proves the typical probe empty).
    ScreenedInline,
    /// An expensive query served inline from the snapshot path instead of
    /// being shed.
    DowngradedSnapshot,
    /// An expensive query shed under overload.
    ShedExpensive,
    /// A cheap query shed (cost-blind policies only).
    ShedCheap,
    /// A whole read-only query routed through `execute_snapshot` by the
    /// cost cutover.
    SnapshotCutover,
}

impl ServiceStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a query accepted into the queue.
    pub fn record_submitted(&self) {
        self.live.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query turned away by admission control.
    pub fn record_rejected(&self) {
        self.live.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one engine execution (which may answer several queries).
    pub fn record_executed(&self) {
        self.live.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query answered by post-filtering a superset's result.
    pub fn record_containment(&self) {
        self.live.containment.fetch_add(1, Ordering::Relaxed);
    }

    /// Containment-coalesced queries over the service lifetime.
    pub fn containment(&self) -> u64 {
        self.live.containment.load(Ordering::Relaxed)
    }

    /// Records a containment run answered from a snapshot (lock-free) read.
    pub fn record_snapshot_run(&self) {
        self.live.snapshot_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot-served containment runs over the service lifetime.
    pub fn snapshot_runs(&self) -> u64 {
        self.live.snapshot_runs.load(Ordering::Relaxed)
    }

    /// Records a spanning query cut into `parts` per-shard sub-queries.
    pub fn record_decomposed(&self, parts: usize) {
        self.live.decomposed.fetch_add(1, Ordering::Relaxed);
        self.live
            .decomposed_parts
            .fetch_add(parts as u64, Ordering::Relaxed);
    }

    /// Records a decomposed part executed inline on the submitting client.
    pub fn record_decomp_inline(&self) {
        self.live.decomp_inline.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one plan-priced decision outcome.
    pub fn record_decision(&self, decision: PlanDecision) {
        let counter = match decision {
            PlanDecision::CheapAdmitted => &self.live.admitted_cheap,
            PlanDecision::ScreenedInline => &self.live.screened_inline,
            PlanDecision::DowngradedSnapshot => &self.live.downgraded_snapshot,
            PlanDecision::ShedExpensive => &self.live.shed_expensive,
            PlanDecision::ShedCheap => &self.live.shed_cheap,
            PlanDecision::SnapshotCutover => &self.live.snapshot_cutover,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a fresh measurement window: every counter's current value
    /// becomes the new baseline and the latency reservoir clears, so the
    /// next [`ServiceStats::summary`] covers only what happened after this
    /// call. Harnesses call it per interleaved rep (and after warmup) so
    /// per-bed comparisons are never cumulative.
    pub fn reset_window(&self) {
        self.live.store_into(&self.window);
        let mut r = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        r.samples.clear();
        r.seen = 0;
        r.rng = 0;
    }

    /// Records a completed query with its enqueue-to-completion latency.
    pub fn record_completed(&self, latency: Duration) {
        self.live.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(latency);
    }

    /// Queries accepted over the service lifetime.
    pub fn submitted(&self) -> u64 {
        self.live.submitted.load(Ordering::Relaxed)
    }

    /// Queries rejected over the service lifetime.
    pub fn rejected(&self) -> u64 {
        self.live.rejected.load(Ordering::Relaxed)
    }

    /// Queries completed over the service lifetime.
    pub fn completed(&self) -> u64 {
        self.live.completed.load(Ordering::Relaxed)
    }

    /// Summarises the current window (since the last
    /// [`ServiceStats::reset_window`], or service start) over `wall`
    /// elapsed time.
    pub fn summary(&self, wall: Duration) -> StatsSummary {
        let mut lat = self
            .latencies
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .samples
            .clone();
        lat.sort_unstable();
        // Baseline FIRST, live second: live counters only grow, and any
        // baseline is a past value of its live counter, so this order
        // guarantees `live >= base` even when a `reset_window` races the
        // two loads — the other order let a racing reset store a *newer,
        // larger* baseline between them, and the subtraction (saturating
        // today, wrapping originally) collapsed the window to zero or to
        // garbage. The `saturating_sub` stays as a belt for the one case
        // order cannot fix: two resets racing each other mid-summary.
        let windowed = |live: &AtomicU64, base: &AtomicU64| {
            let base = base.load(Ordering::Acquire);
            live.load(Ordering::Acquire).saturating_sub(base)
        };
        let completed = windowed(&self.live.completed, &self.window.completed);
        StatsSummary {
            submitted: windowed(&self.live.submitted, &self.window.submitted),
            completed,
            rejected: windowed(&self.live.rejected, &self.window.rejected),
            executed: windowed(&self.live.executed, &self.window.executed),
            containment: windowed(&self.live.containment, &self.window.containment),
            snapshot_runs: windowed(&self.live.snapshot_runs, &self.window.snapshot_runs),
            snapshot_cutover: windowed(&self.live.snapshot_cutover, &self.window.snapshot_cutover),
            decomposed: windowed(&self.live.decomposed, &self.window.decomposed),
            decomposed_parts: windowed(&self.live.decomposed_parts, &self.window.decomposed_parts),
            decomp_inline: windowed(&self.live.decomp_inline, &self.window.decomp_inline),
            admitted_cheap: windowed(&self.live.admitted_cheap, &self.window.admitted_cheap),
            screened_inline: windowed(&self.live.screened_inline, &self.window.screened_inline),
            downgraded_snapshot: windowed(
                &self.live.downgraded_snapshot,
                &self.window.downgraded_snapshot,
            ),
            shed_expensive: windowed(&self.live.shed_expensive, &self.window.shed_expensive),
            shed_cheap: windowed(&self.live.shed_cheap, &self.window.shed_cheap),
            wall,
            qps: if wall.is_zero() {
                0.0
            } else {
                completed as f64 / wall.as_secs_f64()
            },
            p50: percentile(&lat, 0.50),
            p95: percentile(&lat, 0.95),
            p99: percentile(&lat, 0.99),
            max: lat.last().copied().unwrap_or(Duration::ZERO),
        }
    }
}

/// Condensed service metrics for one measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries answered.
    pub completed: u64,
    /// Queries turned away by admission control.
    pub rejected: u64,
    /// Engine executions (≤ completed when batching coalesces duplicates).
    pub executed: u64,
    /// Queries answered from a batched superset's post-filtered values.
    pub containment: u64,
    /// Containment runs whose superset was materialised through the
    /// engine's lock-free snapshot read path.
    pub snapshot_runs: u64,
    /// Whole read-only queries routed through `execute_snapshot` by the
    /// cost model's snapshot/locked cutover.
    pub snapshot_cutover: u64,
    /// Spanning queries cut into per-shard sub-queries.
    pub decomposed: u64,
    /// Per-shard sub-queries produced by decomposition.
    pub decomposed_parts: u64,
    /// Decomposed parts executed inline on the submitting client.
    pub decomp_inline: u64,
    /// Cheap queries admitted past a full queue (never shed).
    pub admitted_cheap: u64,
    /// Filter-screened point probes executed inline at submission.
    pub screened_inline: u64,
    /// Expensive queries downgraded to an inline snapshot read.
    pub downgraded_snapshot: u64,
    /// Rejections priced Expensive at shed time.
    pub shed_expensive: u64,
    /// Rejections priced Cheap at shed time (zero under cost-aware
    /// admission).
    pub shed_cheap: u64,
    /// Wall time the summary covers.
    pub wall: Duration,
    /// Sustained completions per second over `wall`.
    pub qps: f64,
    /// Median end-to-end latency.
    pub p50: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99: Duration,
    /// Worst observed end-to-end latency.
    pub max: Duration,
}

/// Nearest-rank percentile over an ascending-sorted sample set; zero when
/// empty. `q` is a fraction in `[0, 1]`.
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&s, 0.50), ms(50));
        assert_eq!(percentile(&s, 0.95), ms(95));
        assert_eq!(percentile(&s, 0.99), ms(99));
        assert_eq!(percentile(&s, 1.0), ms(100));
        assert_eq!(percentile(&s, 0.0), ms(1)); // clamps to the first rank
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 0.99), ms(7));
    }

    #[test]
    fn summary_counts_and_qps() {
        let stats = ServiceStats::new();
        for i in 1..=10 {
            stats.record_submitted();
            stats.record_executed();
            stats.record_completed(ms(i));
        }
        stats.record_rejected();
        stats.record_containment();
        let s = stats.summary(Duration::from_secs(2));
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.executed, 10);
        assert_eq!(s.containment, 1);
        assert!((s.qps - 5.0).abs() < 1e-9);
        assert_eq!(s.p50, ms(5));
        assert_eq!(s.max, ms(10));
    }

    #[test]
    fn summary_on_empty_stats() {
        let s = ServiceStats::new().summary(Duration::ZERO);
        assert_eq!(s.completed, 0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn window_reset_rebases_every_counter() {
        let stats = ServiceStats::new();
        stats.record_submitted();
        stats.record_executed();
        stats.record_completed(ms(3));
        stats.record_containment();
        stats.record_snapshot_run();
        stats.record_decomposed(4);
        stats.record_decomp_inline();
        stats.record_decision(PlanDecision::CheapAdmitted);
        stats.record_decision(PlanDecision::DowngradedSnapshot);
        stats.record_decision(PlanDecision::ShedExpensive);
        stats.record_decision(PlanDecision::ShedCheap);
        stats.record_decision(PlanDecision::SnapshotCutover);
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!(
            (
                s.containment,
                s.snapshot_runs,
                s.decomposed,
                s.decomposed_parts
            ),
            (1, 1, 1, 4)
        );
        assert_eq!((s.admitted_cheap, s.downgraded_snapshot), (1, 1));
        assert_eq!(
            (s.shed_expensive, s.shed_cheap, s.snapshot_cutover),
            (1, 1, 1)
        );

        // Rep boundary: the next window starts at zero for EVERY counter
        // (and the reservoir), while lifetime accessors keep the totals.
        stats.reset_window();
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!(s.completed, 0);
        assert_eq!(s.containment, 0);
        assert_eq!(s.snapshot_runs, 0);
        assert_eq!(s.decomposed, 0);
        assert_eq!(s.admitted_cheap, 0);
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(stats.completed(), 1, "lifetime totals survive the reset");
        assert_eq!(stats.containment(), 1);

        // Work in the new window counts from the fresh baseline.
        stats.record_completed(ms(7));
        stats.record_containment();
        let s = stats.summary(Duration::from_secs(1));
        assert_eq!((s.completed, s.containment), (1, 1));
        assert_eq!(s.p50, ms(7));
    }

    #[test]
    fn summary_racing_reset_never_wraps_or_overshoots() {
        // Regression for the summary/reset window race: `windowed` used to
        // load the live counter BEFORE the baseline, so a reset storing a
        // newer, larger baseline between the two loads made the window
        // subtraction wrap (or, saturated, collapse spuriously). Loading
        // the baseline first keeps `live >= base` under any interleaving;
        // the hammer asserts every windowed count stays within the
        // lifetime total — a wrapped subtraction lands near `u64::MAX`
        // and trips the bound immediately.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let stats = Arc::new(ServiceStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        const TOTAL: u64 = 200_000;

        let writer = {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                for _ in 0..TOTAL {
                    stats.record_submitted();
                    stats.record_executed();
                }
            })
        };
        let resetter = {
            let (stats, stop) = (Arc::clone(&stats), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    stats.reset_window();
                }
            })
        };
        let mut summaries = 0u64;
        while !writer.is_finished() {
            let s = stats.summary(Duration::from_secs(1));
            assert!(
                s.submitted <= TOTAL && s.executed <= TOTAL,
                "windowed count exceeds lifetime total (wrapped subtraction): {s:?}"
            );
            summaries += 1;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        resetter.join().unwrap();
        assert!(summaries > 0, "hammer produced no concurrent summaries");
        assert_eq!(stats.submitted(), TOTAL, "lifetime totals stay exact");
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_representative() {
        let mut r = Reservoir::default();
        // 4x the capacity of identical samples: size stays capped and every
        // retained sample is from the stream.
        for _ in 0..(MAX_SAMPLES * 4) {
            r.push(ms(5));
        }
        assert_eq!(r.samples.len(), MAX_SAMPLES);
        assert_eq!(r.seen, (MAX_SAMPLES * 4) as u64);
        assert!(r.samples.iter().all(|&d| d == ms(5)));
        // A second value fed after overflow must be able to displace old
        // samples (replacement actually happens).
        for _ in 0..(MAX_SAMPLES * 4) {
            r.push(ms(9));
        }
        assert!(r.samples.iter().any(|&d| d == ms(9)));
    }
}
