//! Query-pattern generators (Fig 10(a)–(d) and the §5.4 schema sweeps).
//!
//! Each workload is a sequence of single-attribute range selects. The
//! *pattern* governs how predicate values walk the value domain; the
//! *attribute distribution* governs which attribute each query touches.

use rand::prelude::*;

/// The value patterns of Fig 10 (SkyServer lives in [`crate::skyserver`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniformly random ranges — both bounds drawn uniformly (the §5.1
    /// microbenchmark: "the value range requested by each query (and thus
    /// the selectivity) is random").
    Random,
    /// Queries confined to the top fifth of the domain (Fig 10(b): "from
    /// 800 million to 2³⁰").
    Skewed,
    /// Repeated ascending sweeps across the domain (Fig 10(c)).
    Periodic,
    /// One monotone sweep in small steps (Fig 10(d)).
    Sequential,
}

impl Pattern {
    /// Patterns used in the robustness experiments (Fig 12/15) excluding
    /// SkyServer.
    pub const SYNTHETIC: [Pattern; 4] = [
        Pattern::Random,
        Pattern::Skewed,
        Pattern::Periodic,
        Pattern::Sequential,
    ];

    /// Label used in benchmark CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::Random => "Random",
            Pattern::Skewed => "Skewed",
            Pattern::Periodic => "Periodic",
            Pattern::Sequential => "Sequential",
        }
    }
}

/// How queries choose attributes in a multi-attribute schema (§5.4: "we run
/// both a random workload where every attribute is evenly queried as well as
/// a skewed workload where some attributes are queried more than others").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttrDist {
    /// Every attribute equally likely.
    #[default]
    Uniform,
    /// Zipf-like: attribute `k` is queried proportionally to `1/(k+1)`.
    Skewed,
}

/// One range-select query over one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Which attribute the query touches.
    pub attr: usize,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

/// Full description of a synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Value pattern.
    pub pattern: Pattern,
    /// Attribute-selection distribution.
    pub attr_dist: AttrDist,
    /// Attributes in the schema.
    pub n_attrs: usize,
    /// Queries to generate.
    pub n_queries: usize,
    /// Value domain `[0, domain)`.
    pub domain: i64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A §5.1-style workload: random ranges, uniform attributes.
    pub fn random(n_attrs: usize, n_queries: usize, domain: i64, seed: u64) -> Self {
        WorkloadSpec {
            pattern: Pattern::Random,
            attr_dist: AttrDist::Uniform,
            n_attrs,
            n_queries,
            domain,
            seed,
        }
    }

    /// Generates the query sequence.
    pub fn generate(&self) -> Vec<QuerySpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let domain = self.domain.max(2);
        // Non-random patterns query a window of ~1% of the domain around the
        // pattern-driven position, so selectivity stays comparable across
        // patterns.
        let window = (domain / 100).max(1);
        // Periodic pattern: a handful of full sweeps across the workload.
        let period = (self.n_queries / 8).max(2);

        (0..self.n_queries)
            .map(|i| {
                let attr = self.pick_attr(&mut rng);
                let (lo, hi) = match self.pattern {
                    Pattern::Random => {
                        let a = rng.random_range(0..domain);
                        let b = rng.random_range(0..domain);
                        (a.min(b), a.max(b).max(a.min(b) + 1))
                    }
                    Pattern::Skewed => {
                        let base = domain * 4 / 5;
                        let pos = base + rng.random_range(0..(domain - base).max(1));
                        clamp_window(pos, window, domain)
                    }
                    Pattern::Periodic => {
                        let frac = (i % period) as f64 / period as f64;
                        let pos =
                            (frac * domain as f64) as i64 + rng.random_range(0..window.max(1));
                        clamp_window(pos, window, domain)
                    }
                    Pattern::Sequential => {
                        let frac = i as f64 / self.n_queries.max(1) as f64;
                        let pos =
                            (frac * domain as f64) as i64 + rng.random_range(0..window.max(1));
                        clamp_window(pos, window, domain)
                    }
                };
                QuerySpec { attr, lo, hi }
            })
            .collect()
    }

    fn pick_attr(&self, rng: &mut StdRng) -> usize {
        match self.attr_dist {
            AttrDist::Uniform => rng.random_range(0..self.n_attrs.max(1)),
            AttrDist::Skewed => {
                // Zipf(1) over n_attrs by inverse-CDF on harmonic weights.
                let n = self.n_attrs.max(1);
                let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
                let target = rng.random_range(0.0..h);
                let mut acc = 0.0;
                for k in 0..n {
                    acc += 1.0 / (k + 1) as f64;
                    if target < acc {
                        return k;
                    }
                }
                n - 1
            }
        }
    }
}

fn clamp_window(pos: i64, window: i64, domain: i64) -> (i64, i64) {
    let lo = pos.clamp(0, domain - 1);
    let hi = (lo + window).clamp(lo + 1, domain);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pattern: Pattern) -> WorkloadSpec {
        WorkloadSpec {
            pattern,
            attr_dist: AttrDist::Uniform,
            n_attrs: 10,
            n_queries: 1_000,
            domain: 1 << 30,
            seed: 42,
        }
    }

    #[test]
    fn all_patterns_produce_valid_ranges() {
        for p in Pattern::SYNTHETIC {
            let qs = spec(p).generate();
            assert_eq!(qs.len(), 1_000, "{p:?}");
            for q in &qs {
                assert!(q.lo < q.hi, "{p:?} {q:?}");
                assert!(q.lo >= 0 && q.hi <= 1 << 30);
                assert!(q.attr < 10);
            }
        }
    }

    #[test]
    fn skewed_pattern_stays_in_upper_fifth() {
        let qs = spec(Pattern::Skewed).generate();
        let cutoff = (1i64 << 30) * 4 / 5;
        assert!(qs.iter().all(|q| q.lo >= cutoff));
    }

    #[test]
    fn sequential_is_monotone() {
        let qs = spec(Pattern::Sequential).generate();
        // Position trend must ascend: compare decile means.
        let decile = |k: usize| -> f64 {
            qs[k * 100..(k + 1) * 100]
                .iter()
                .map(|q| q.lo as f64)
                .sum::<f64>()
                / 100.0
        };
        for k in 0..9 {
            assert!(decile(k) < decile(k + 1), "decile {k}");
        }
    }

    #[test]
    fn periodic_revisits_low_values() {
        let qs = spec(Pattern::Periodic).generate();
        let low_count = qs.iter().filter(|q| q.lo < (1 << 27)).count();
        // Each sweep restarts at the bottom: low values appear throughout.
        assert!(low_count > 50, "{low_count}");
        let late_low = qs[800..].iter().filter(|q| q.lo < (1 << 27)).count();
        assert!(late_low > 5, "no late sweep restart");
    }

    #[test]
    fn uniform_attrs_spread_evenly() {
        let qs = spec(Pattern::Random).generate();
        let mut counts = vec![0usize; 10];
        for q in &qs {
            counts[q.attr] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }

    #[test]
    fn skewed_attrs_prefer_low_indices() {
        let mut s = spec(Pattern::Random);
        s.attr_dist = AttrDist::Skewed;
        let qs = s.generate();
        let mut counts = vec![0usize; 10];
        for q in &qs {
            counts[q.attr] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            spec(Pattern::Random).generate(),
            spec(Pattern::Random).generate()
        );
    }
}
