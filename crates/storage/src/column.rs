//! Dense, fixed-width columns — the storage unit of the column store.

use crate::types::CrackValue;

/// A named, dense array of fixed-width values.
///
/// Columns are append-only at this layer; in-place reorganisation (cracking)
/// happens on *copies* managed by the adaptive-indexing crates, never on base
/// columns, exactly as in the paper (`ACRK` is a copy of base column `A`).
#[derive(Debug, Clone)]
pub struct Column<V> {
    name: String,
    data: Vec<V>,
}

impl<V: CrackValue> Column<V> {
    /// Creates an empty column.
    pub fn new(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            data: Vec::new(),
        }
    }

    /// Creates a column from existing data, taking ownership.
    pub fn from_vec(name: impl Into<String>, data: Vec<V>) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Creates an empty column with room for `cap` values.
    pub fn with_capacity(name: impl Into<String>, cap: usize) -> Self {
        Column {
            name: name.into(),
            data: Vec::with_capacity(cap),
        }
    }

    /// The column's name in the catalog.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the raw values. All bulk operators work on this slice.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.data
    }

    /// Value at position `pos`; panics if out of bounds (positions are
    /// produced by operators over the same column, so a miss is a logic bug).
    #[inline]
    pub fn get(&self, pos: usize) -> V {
        self.data[pos]
    }

    /// Appends a single value.
    pub fn push(&mut self, v: V) {
        self.data.push(v);
    }

    /// Appends many values.
    pub fn extend_from_slice(&mut self, vs: &[V]) {
        self.data.extend_from_slice(vs);
    }

    /// Smallest and largest stored value, or `None` for an empty column.
    ///
    /// One tight pass; used to establish the pivot domain for holistic
    /// refinement when a cracker column is created.
    pub fn min_max(&self) -> Option<(V, V)> {
        let mut it = self.data.iter();
        let first = *it.next()?;
        let (mut lo, mut hi) = (first, first);
        for &v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Heap bytes consumed by the value payload (for storage budgeting).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * V::width()
    }

    /// Consumes the column, returning the raw data.
    pub fn into_vec(self) -> Vec<V> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let mut c = Column::<i64>::new("a");
        assert!(c.is_empty());
        c.push(5);
        c.extend_from_slice(&[2, 9, -1]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.values(), &[5, 2, 9, -1]);
        assert_eq!(c.get(2), 9);
        assert_eq!(c.name(), "a");
    }

    #[test]
    fn min_max_full_and_empty() {
        let c = Column::from_vec("a", vec![3i32, -7, 11, 0]);
        assert_eq!(c.min_max(), Some((-7, 11)));
        let e = Column::<i32>::new("e");
        assert_eq!(e.min_max(), None);
    }

    #[test]
    fn min_max_single_value() {
        let c = Column::from_vec("a", vec![42i64]);
        assert_eq!(c.min_max(), Some((42, 42)));
    }

    #[test]
    fn payload_bytes_tracks_width() {
        let c = Column::from_vec("a", vec![1i64, 2, 3]);
        assert_eq!(c.payload_bytes(), 24);
        let c = Column::from_vec("b", vec![1i32, 2, 3]);
        assert_eq!(c.payload_bytes(), 12);
    }

    #[test]
    fn into_vec_round_trips() {
        let c = Column::from_vec("a", vec![1i64, 2]);
        assert_eq!(c.into_vec(), vec![1, 2]);
    }
}
