//! Log-bucketed (HDR-style) latency histogram with windowed snapshots.
//!
//! Layout: values below 128 get one bucket each (exact); every higher
//! power-of-two octave is split into 64 sub-buckets, so the bucket width
//! is always ≤ 1/64 of the value and the midpoint representative is within
//! ~0.8% of any sample in the bucket — comfortably inside the ≤2% relative
//! error the telemetry spec allows, at ~30 KiB per histogram.
//!
//! Windowing mirrors the counter discipline in `holix-server::stats`: a
//! `base` bucket array is (re)stamped from `live` at `reset_window`, and a
//! snapshot reads `base` *first* (acquire) then `live`, so every windowed
//! bucket count `live - base` is non-negative up to benign races, which a
//! saturating subtraction absorbs. The window maximum is a raw `fetch_max`
//! cell reset destructively at window start — maxima stay *exact*, not
//! bucketized.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^6 = 64 buckets per octave.
const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS;
/// Values below 2 * SUB are recorded exactly.
const EXACT: u64 = (2 * SUB) as u64;
/// Octaves 7..=63 each contribute SUB buckets after the exact region.
pub const BUCKETS: usize = EXACT as usize + (63 - SUB_BITS as usize) * SUB;

/// Bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        EXACT as usize + ((msb - SUB_BITS - 1) as usize) * SUB + ((v >> shift) as usize - SUB)
    }
}

/// Midpoint representative of a bucket (exact in the exact region).
#[inline]
fn representative(index: usize) -> u64 {
    if index < EXACT as usize {
        index as u64
    } else {
        let rel = index - EXACT as usize;
        let octave = (rel / SUB) as u32 + SUB_BITS + 1;
        let sub = (rel % SUB) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        let lo = (SUB as u64 + sub) << (octave - SUB_BITS);
        lo + width / 2
    }
}

/// Lock-free log-bucketed histogram.
pub struct Histogram {
    live: Box<[AtomicU64]>,
    base: Box<[AtomicU64]>,
    sum_live: AtomicU64,
    sum_base: AtomicU64,
    max_window: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn zeroed(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            live: zeroed(BUCKETS),
            base: zeroed(BUCKETS),
            sum_live: AtomicU64::new(0),
            sum_base: AtomicU64::new(0),
            max_window: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: one `fetch_add` on the bucket, one on
    /// the running sum, one `fetch_max` on the window maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.live[bucket_of(v)].fetch_add(1, Ordering::Release);
        self.sum_live.fetch_add(v, Ordering::Relaxed);
        self.max_window.fetch_max(v, Ordering::Relaxed);
    }

    /// Starts a new observation window: the baseline is stamped from the
    /// live array and the exact maximum resets. Concurrent `record`s during
    /// the stamping land on one side or the other of the window boundary —
    /// the same semantics the windowed counters already have.
    pub fn reset_window(&self) {
        for (b, l) in self.base.iter().zip(self.live.iter()) {
            b.store(l.load(Ordering::Acquire), Ordering::Release);
        }
        self.sum_base
            .store(self.sum_live.load(Ordering::Acquire), Ordering::Release);
        self.max_window.store(0, Ordering::Relaxed);
    }

    /// Windowed snapshot (samples since the last [`Histogram::reset_window`]).
    /// Baseline is loaded *first*: a racing reset can only make the window
    /// look shorter, never negative (and saturation absorbs the remainder).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut total = 0u64;
        let sum_base = self.sum_base.load(Ordering::Acquire);
        for (out, (b, l)) in counts
            .iter_mut()
            .zip(self.base.iter().zip(self.live.iter()))
        {
            let base = b.load(Ordering::Acquire);
            let live = l.load(Ordering::Acquire);
            *out = live.saturating_sub(base);
            total += *out;
        }
        let sum = self
            .sum_live
            .load(Ordering::Acquire)
            .saturating_sub(sum_base);
        HistogramSnapshot {
            count: total,
            sum,
            max: self.max_window.load(Ordering::Relaxed),
            counts,
        }
    }

    /// Total samples ever recorded (ignores the window).
    pub fn lifetime_count(&self) -> u64 {
        self.live
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .fold(0, u64::wrapping_add)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("max", &s.max)
            .finish()
    }
}

/// Materialised window: bucket counts plus exact count/sum/max.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Samples in the window.
    pub count: u64,
    /// Sum of sample values in the window.
    pub sum: u64,
    /// Exact (un-bucketed) maximum sample in the window.
    pub max: u64,
    counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile (`q` in `[0, 1]`) over the windowed buckets;
    /// returns the matched bucket's midpoint representative (exact for
    /// values < 128). Returns 0 for an empty window — same convention as
    /// the old reservoir summary.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return representative(i);
            }
        }
        // Unreachable unless counts raced below `count`; fall back to max.
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Deterministic xorshift so tests need no external RNG crate.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn bucket_math_round_trips_within_bound() {
        // Every representative must land back in its own bucket, and the
        // relative error of the representative vs any value in the bucket
        // must stay under 2%.
        for i in 0..BUCKETS {
            let rep = representative(i);
            assert_eq!(bucket_of(rep), i, "rep {rep} escaped bucket {i}");
        }
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for _ in 0..200_000 {
            let v = rng.next() >> (rng.next() % 60);
            let rep = representative(bucket_of(v));
            let err = (rep as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.02, "v={v} rep={rep} err={err}");
        }
        // Boundary values.
        for v in [0u64, 1, 127, 128, 129, 255, 256, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "v={v} bucket {b} out of range");
        }
    }

    fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    }

    fn assert_percentiles_close(samples: &mut [u64], name: &str) {
        let h = Histogram::new();
        for &s in samples.iter() {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, samples.len() as u64, "{name}: count");
        assert_eq!(snap.max, *samples.last().unwrap(), "{name}: exact max");
        for q in [0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_percentile(samples, q);
            let est = snap.percentile(q);
            let err = (est as f64 - exact as f64).abs() / (exact.max(1) as f64);
            assert!(
                err <= 0.02,
                "{name}: q={q} exact={exact} est={est} err={err}"
            );
        }
    }

    #[test]
    fn percentiles_match_oracle_constant() {
        let mut samples = vec![5_000_000u64; 10_000];
        assert_percentiles_close(&mut samples, "constant");
    }

    #[test]
    fn percentiles_match_oracle_bimodal() {
        // Fast mode around 10µs, slow mode around 80ms — the classic
        // cached-vs-cold split that defeats mean-based summaries.
        let mut rng = Rng(42);
        let mut samples: Vec<u64> = (0..40_000)
            .map(|i| {
                if i % 10 < 7 {
                    10_000 + rng.next() % 2_000
                } else {
                    80_000_000 + rng.next() % 4_000_000
                }
            })
            .collect();
        assert_percentiles_close(&mut samples, "bimodal");
    }

    #[test]
    fn percentiles_match_oracle_heavy_tail() {
        // Pareto-ish: most samples tiny, rare samples enormous (shifted by
        // a random bit width).
        let mut rng = Rng(7);
        let mut samples: Vec<u64> = (0..50_000)
            .map(|_| 1 + (rng.next() >> (rng.next() % 50)))
            .collect();
        assert_percentiles_close(&mut samples, "heavy-tail");
    }

    #[test]
    fn concurrent_recorders_equal_single_thread() {
        // The same multiset recorded by 8 threads must produce the exact
        // same snapshot as one thread recording it all.
        let mut rng = Rng(123);
        let samples: Vec<u64> = (0..80_000).map(|_| rng.next() % 10_000_000).collect();
        let serial = Histogram::new();
        for &s in &samples {
            serial.record(s);
        }
        let parallel = Arc::new(Histogram::new());
        let chunk = samples.len() / 8;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&parallel);
                let part = samples[t * chunk..(t + 1) * chunk].to_vec();
                std::thread::spawn(move || {
                    for s in part {
                        h.record(s);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let a = serial.snapshot();
        let b = parallel.snapshot();
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum, b.sum);
        assert_eq!(a.max, b.max);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.percentile(q), b.percentile(q));
        }
    }

    #[test]
    fn windowed_reset_race_never_overshoots() {
        // Recorders hammer while a resetter restamps the window: every
        // snapshot's windowed count must stay ≤ the lifetime count at the
        // time of the snapshot, and percentile() must never panic.
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let recorders: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = Rng(0xABCD + t as u64);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(rng.next() % 1_000_000);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while std::time::Instant::now() < deadline {
            h.reset_window();
            let snap = h.snapshot();
            let lifetime = h.lifetime_count();
            assert!(
                snap.count <= lifetime,
                "window {} overshot lifetime {lifetime}",
                snap.count
            );
            let _ = snap.percentile(0.99);
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = recorders.into_iter().map(|t| t.join().unwrap()).sum();
        // After quiescing, a fresh window from a fresh reset must be empty
        // and the lifetime count exact.
        assert_eq!(h.lifetime_count(), total);
        h.reset_window();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn window_isolates_epochs() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1_000);
        }
        h.reset_window();
        for _ in 0..50 {
            h.record(9_000_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 50);
        assert_eq!(snap.max, 9_000_000);
        let p50 = snap.percentile(0.5);
        let err = (p50 as f64 - 9_000_000.0).abs() / 9_000_000.0;
        assert!(err <= 0.02, "p50 {p50} leaked the pre-reset epoch");
    }
}
