//! The multi-core baselines (PVDC, PVSDC, mP-CCGI) against oracles across
//! thread counts and workload patterns.

use holix::cracking::CrackScratch;
use holix::parallel::ccgi::ChunkedCrackerColumn;
use holix::parallel::pvdc::pvdc_column;
use holix::parallel::pvsdc::{pvsdc_column, select_pvsdc};
use holix::storage::select::{scan_stats, Predicate};
use holix::workloads::data::uniform_column;
use holix::workloads::patterns::{AttrDist, Pattern, WorkloadSpec};
use rand::prelude::*;

const N: usize = 120_000;
const DOMAIN: i64 = 1 << 20;

#[test]
fn pvdc_all_patterns_all_thread_counts() {
    let base = uniform_column(N, DOMAIN, 71);
    for pattern in Pattern::SYNTHETIC {
        let queries = WorkloadSpec {
            pattern,
            attr_dist: AttrDist::Uniform,
            n_attrs: 1,
            n_queries: 40,
            domain: DOMAIN,
            seed: 710,
        }
        .generate();
        for threads in [1usize, 2, 4] {
            let col = pvdc_column("a", &base, threads);
            let mut scratch = CrackScratch::new();
            for q in &queries {
                let pred = Predicate::range(q.lo, q.hi);
                let sel = col.select(pred, &mut scratch);
                assert_eq!(
                    sel.count(),
                    scan_stats(&base, pred).count,
                    "{pattern:?} t={threads}"
                );
            }
            col.check_invariants(Some(&base));
        }
    }
}

#[test]
fn pvsdc_robust_on_sequential_without_wrong_answers() {
    let base = uniform_column(N, DOMAIN, 72);
    let queries = WorkloadSpec {
        pattern: Pattern::Sequential,
        attr_dist: AttrDist::Uniform,
        n_attrs: 1,
        n_queries: 60,
        domain: DOMAIN,
        seed: 720,
    }
    .generate();
    let col = pvsdc_column("a", &base, 2);
    let mut scratch = CrackScratch::new();
    let mut rng = StdRng::seed_from_u64(7_200);
    for q in &queries {
        let pred = Predicate::range(q.lo, q.hi);
        let sel = select_pvsdc(&col, pred, &mut rng, &mut scratch);
        assert_eq!(sel.count(), scan_stats(&base, pred).count);
    }
    // The stochastic component must have cracked beyond the query bounds.
    assert!(col.piece_count() > queries.len(), "{}", col.piece_count());
}

#[test]
fn ccgi_matches_oracle_across_chunkings() {
    let base = uniform_column(N, DOMAIN, 73);
    let queries = WorkloadSpec::random(1, 30, DOMAIN, 730).generate();
    for chunks in [1usize, 2, 4, 7] {
        let col = ChunkedCrackerColumn::build("a", &base, chunks, 4);
        for q in &queries {
            let pred = Predicate::range(q.lo, q.hi);
            assert_eq!(
                col.select(pred).count,
                scan_stats(&base, pred).count,
                "chunks={chunks}"
            );
        }
    }
}

#[test]
fn ccgi_consolidation_converges_to_full_coverage() {
    let base = uniform_column(50_000, 1 << 16, 74);
    let col = ChunkedCrackerColumn::build("a", &base, 4, 4);
    // Sweep the domain; eventually everything is consolidated exactly once.
    let step = (1 << 16) / 16;
    let mut copied = 0usize;
    for k in 0..16 {
        let sel = col.select(Predicate::range(k * step, (k + 1) * step));
        copied += sel.consolidated_now;
    }
    assert_eq!(copied, 50_000, "every tuple consolidated exactly once");
    // Re-sweeping copies nothing.
    for k in 0..16 {
        let sel = col.select(Predicate::range(k * step, (k + 1) * step));
        assert_eq!(sel.consolidated_now, 0);
    }
}

#[test]
fn concurrent_pvdc_queries_on_one_column() {
    let base = uniform_column(N, DOMAIN, 75);
    let col = pvdc_column("a", &base, 2);
    let queries = WorkloadSpec::random(1, 64, DOMAIN, 750).generate();
    let oracles: Vec<u64> = queries
        .iter()
        .map(|q| scan_stats(&base, Predicate::range(q.lo, q.hi)).count)
        .collect();
    crossbeam::thread::scope(|s| {
        for c in 0..4usize {
            let col = &col;
            let queries = &queries;
            let oracles = &oracles;
            s.spawn(move |_| {
                let mut scratch = CrackScratch::new();
                for (i, q) in queries.iter().enumerate().skip(c).step_by(4) {
                    let sel = col.select(Predicate::range(q.lo, q.hi), &mut scratch);
                    assert_eq!(sel.count(), oracles[i]);
                }
            });
        }
    })
    .unwrap();
    col.check_invariants(Some(&base));
}
