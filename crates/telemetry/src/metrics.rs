//! Striped counters and gauges.
//!
//! A counter is the hot instrument: every completion, crack, merge and
//! morph increments one. A single `AtomicU64` would serialise all
//! recorders on one cache line, so the counter is striped — each thread
//! hashes to one of [`STRIPES`] cache-line-padded slots and only readers
//! (exposition, windowed summaries) touch them all. Each stripe is
//! monotone non-decreasing, so a sum read *after* another sum (with the
//! acquire/release pairing below) can only be larger — the property the
//! windowed `live - base` discipline in `holix-server` relies on.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripe count; power of two, sized for small machines (the container is
/// often 1–4 cores) while still spreading a 16-thread service.
pub const STRIPES: usize = 16;

/// One cache line per stripe so neighbouring stripes never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

#[inline]
fn stripe_index() -> usize {
    // Cheap thread-affine stripe pick: each thread gets a sticky index from
    // a global round-robin at first use.
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MINE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    MINE.with(|m| *m)
}

/// Monotone striped counter.
#[derive(Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to this thread's stripe. Release so that a reader whose
    /// acquire load observes this increment also observes everything the
    /// recorder did before it (the windowed-baseline handshake).
    #[inline]
    pub fn add(&self, v: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(v, Ordering::Release);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sums all stripes (acquire loads). Because every stripe is monotone,
    /// two `get`s ordered by a happens-before edge are themselves ordered.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Acquire))
            .fold(0u64, u64::wrapping_add)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// Last-value signed gauge (queue depth, active workers).
#[derive(Default, Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raises the gauge to `v` if larger (peak tracking).
    #[inline]
    pub fn max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-value float gauge (EWMA channels, residuals, busy fractions) —
/// an `f64` stored as bits in an `AtomicU64`.
#[derive(Default, Debug)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn counter_add_batches() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_tracks_last_value_and_peak() {
        let g = Gauge::new();
        g.set(3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 3);
        g.max(10);
        g.max(4);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn float_gauge_round_trips() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(25.75);
        assert_eq!(g.get(), 25.75);
        g.set(-0.125);
        assert_eq!(g.get(), -0.125);
    }
}
