//! Fig 10 — the five workload patterns: predicate value against query
//! sequence for Random, Skewed, Periodic, Sequential and the (synthetic)
//! SkyServer trace (§5.3).

use holix_bench::{sample_indices, BenchEnv};
use holix_workloads::patterns::{AttrDist, Pattern, WorkloadSpec};
use holix_workloads::skyserver::SkyServerSpec;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 10: workload patterns (predicate value vs query sequence)",
        "csv: workload,query,predicate_lo",
    );
    println!("workload,query,predicate_lo");
    let n = env.queries.min(200);
    for p in Pattern::SYNTHETIC {
        let spec = WorkloadSpec {
            pattern: p,
            attr_dist: AttrDist::Uniform,
            n_attrs: 1,
            n_queries: n,
            domain: env.domain,
            seed: 10,
        };
        for (i, q) in spec.generate().iter().enumerate() {
            println!("{},{},{}", p.label(), i + 1, q.lo);
        }
    }
    let sky = SkyServerSpec {
        n_queries: env.queries.max(1_000),
        domain: env.domain,
        ..Default::default()
    }
    .generate();
    for i in sample_indices(sky.len(), 200) {
        println!("SkyServer,{},{}", i + 1, sky[i].lo);
    }
}
