//! Fig 6(a) — cumulative response time of the five indexing approaches over
//! a random range-select workload with zero workload knowledge and zero idle
//! time (§5.1).
//!
//! Expected shape (paper): scans grow linearly and end highest; offline pays
//! a huge first query then stays flat; online pays at query N/10+1; adaptive
//! improves continuously; holistic tracks adaptive but converges ~2× lower.

use holix_bench::{cumulative, run_per_query, sample_indices, secs, BenchEnv};
use holix_engine::api::Dataset;
use holix_engine::{
    AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig, OfflineEngine, OnlineEngine,
    ScanEngine,
};
use holix_workloads::data::uniform_table;
use holix_workloads::WorkloadSpec;

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 6(a): cumulative response time, 5 engines, random workload",
        "csv: query,scan,offline,online,adaptive,holistic (cumulative seconds)",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 6));
    let queries = WorkloadSpec::random(env.attrs, env.queries, env.domain, 60).generate();

    let series: Vec<(&str, Vec<f64>)> = vec![
        (
            "scan",
            cumulative(&run_per_query(
                &ScanEngine::new(data.clone(), env.threads),
                &queries,
            ))
            .iter()
            .map(|&d| secs(d))
            .collect(),
        ),
        (
            "offline",
            cumulative(&run_per_query(
                &OfflineEngine::new(data.clone(), env.threads),
                &queries,
            ))
            .iter()
            .map(|&d| secs(d))
            .collect(),
        ),
        (
            "online",
            cumulative(&run_per_query(
                &OnlineEngine::new(data.clone(), env.threads, env.queries / 10),
                &queries,
            ))
            .iter()
            .map(|&d| secs(d))
            .collect(),
        ),
        (
            "adaptive",
            cumulative(&run_per_query(
                &AdaptiveEngine::new(
                    data.clone(),
                    CrackMode::Pvdc {
                        threads: env.threads,
                    },
                ),
                &queries,
            ))
            .iter()
            .map(|&d| secs(d))
            .collect(),
        ),
        ("holistic", {
            let engine = HolisticEngine::new(data, HolisticEngineConfig::split_half(env.threads));
            let times = run_per_query(&engine, &queries);
            engine.stop();
            cumulative(&times).iter().map(|&d| secs(d)).collect()
        }),
    ];

    println!("query,scan,offline,online,adaptive,holistic");
    for i in sample_indices(env.queries, 40) {
        print!("{}", i + 1);
        for (_, s) in &series {
            print!(",{:.6}", s[i]);
        }
        println!();
    }
    println!("# totals:");
    for (name, s) in &series {
        println!("# total,{name},{:.6}", s.last().copied().unwrap_or(0.0));
    }
}
