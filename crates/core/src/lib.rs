//! # holix-core — holistic indexing
//!
//! The primary contribution of the paper (§4): an always-on, self-organising
//! tuning layer that monitors the workload and CPU utilisation and spends
//! idle CPU cycles on incremental refinement of adaptive indices.
//!
//! - [`config`] — tuning knobs: |L1|, refinements per worker (`x`), monitor
//!   interval, storage budget, strategy.
//! - [`stats`] — per-index workload statistics (`f_I`, `f_Ih`, refinement
//!   counters) collected by the select operator.
//! - [`weight_heap`] — the updatable "heap structure (one node per index)"
//!   that orders candidate indices by weight.
//! - [`strategy`] — the four index-decision strategies W1–W4.
//! - [`handle`] — type-erased [`handle::RefinableIndex`] adapter so one
//!   index space can hold cracker columns of any value type.
//! - [`index_space`] — `C_actual` / `C_potential` / `C_optimal` membership,
//!   weight maintenance, storage budget with LFU eviction.
//! - [`cpu`] — CPU-utilisation monitors: deterministic load accounting and a
//!   `/proc/stat` reader.
//! - [`worker`] — the IdleFunction a holistic worker runs (Fig 2).
//! - [`daemon`] — the holistic indexing thread: monitor → activate workers →
//!   wait → repeat, with per-cycle records (Fig 6d).

pub mod config;
pub mod cpu;
pub mod daemon;
pub mod handle;
pub mod index_space;
pub mod stats;
pub mod strategy;
pub mod weight_heap;
pub mod worker;

pub use config::HolisticConfig;
pub use cpu::{CpuMonitor, LoadAccountant, ProcStatMonitor};
pub use daemon::{CycleRecord, HolisticDaemon};
pub use handle::{CrackerHandle, RefinableIndex, RefineResult};
pub use index_space::{IndexId, IndexSpace, Membership};
pub use stats::IndexStats;
pub use strategy::Strategy;
