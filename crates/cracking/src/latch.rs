//! Piece-level latches (the concurrency-control scheme of [16, 17] adopted by
//! §4.2 of the paper).
//!
//! Each piece of a cracker column owns one latch. Cracking a piece takes its
//! write latch; reading a piece (e.g. verification scans) takes read latches.
//! The behavioural difference the paper highlights:
//!
//! - **user queries block** until the piece they must crack is free,
//! - **holistic workers `try_lock`**: if the piece is busy they pick another
//!   random pivot instead of waiting (Fig 3(d)–(e)).
//!
//! Latches are `Arc`-owned so a guard can outlive the short critical section
//! on the cracker-index lock that located the piece.

use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{RawRwLock, RwLock};
use std::sync::Arc;

/// Owned write guard on a piece.
pub type PieceWriteGuard = ArcRwLockWriteGuard<RawRwLock, ()>;
/// Owned read guard on a piece.
pub type PieceReadGuard = ArcRwLockReadGuard<RawRwLock, ()>;

/// One latch per piece of a cracker column.
#[derive(Debug)]
pub struct PieceLatch {
    lock: Arc<RwLock<()>>,
}

impl Clone for PieceLatch {
    fn clone(&self) -> Self {
        PieceLatch {
            lock: Arc::clone(&self.lock),
        }
    }
}

impl Default for PieceLatch {
    fn default() -> Self {
        Self::new()
    }
}

impl PieceLatch {
    /// Creates a free latch.
    pub fn new() -> Self {
        PieceLatch {
            lock: Arc::new(RwLock::new(())),
        }
    }

    /// Blocking exclusive acquisition — the user-query path.
    pub fn lock_write(&self) -> PieceWriteGuard {
        self.lock.write_arc()
    }

    /// Non-blocking exclusive acquisition — the holistic-worker path.
    /// `None` means "piece busy, pick another pivot".
    pub fn try_lock_write(&self) -> Option<PieceWriteGuard> {
        self.lock.try_write_arc()
    }

    /// Blocking shared acquisition (verification reads).
    pub fn lock_read(&self) -> PieceReadGuard {
        self.lock.read_arc()
    }

    /// Two handles latch the same piece iff they share the lock allocation.
    pub fn same_as(&self, other: &PieceLatch) -> bool {
        Arc::ptr_eq(&self.lock, &other.lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn try_lock_fails_while_held() {
        let l = PieceLatch::new();
        let g = l.lock_write();
        assert!(l.try_lock_write().is_none());
        drop(g);
        assert!(l.try_lock_write().is_some());
    }

    #[test]
    fn clone_shares_the_lock() {
        let a = PieceLatch::new();
        let b = a.clone();
        assert!(a.same_as(&b));
        let g = a.lock_write();
        assert!(b.try_lock_write().is_none());
        drop(g);
        assert!(b.try_lock_write().is_some());

        let c = PieceLatch::new();
        assert!(!a.same_as(&c));
    }

    #[test]
    fn readers_share_writers_exclude() {
        let l = PieceLatch::new();
        let r1 = l.lock_read();
        let r2 = l.lock_read();
        assert!(l.try_lock_write().is_none());
        drop((r1, r2));
        assert!(l.try_lock_write().is_some());
    }

    #[test]
    fn blocking_writer_eventually_acquires() {
        let l = PieceLatch::new();
        let g = l.lock_write();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            let _g = l2.lock_write(); // blocks until main drops
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished());
        drop(g);
        assert!(h.join().unwrap());
    }
}
