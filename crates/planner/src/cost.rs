//! The crack-aware cost model: price a predicate against a shard's
//! published [`PieceStats`] without touching any lock.
//!
//! The unit of cost is *one value touched element-wise*. The locked path
//! pays the edge pieces it must partition (two cracks, or zero on an exact
//! hit) plus a Ripple-merge term for the pending backlog its select would
//! drain; the snapshot path pays the snapshot's edge-piece filter (interior
//! pieces answer O(1) from precomputed aggregates) and can never crack.
//! These are the same quantities the paper's §4 statistics track per index
//! (`f_Ih` exact hits, piece sizes feeding `d(I, I_opt)`) — read at plan
//! time instead of maintenance time.

use holix_cracking::PieceStats;
use holix_storage::select::Predicate;
use holix_storage::types::CrackValue;

/// Cost-model constants. One merged pending update moves a boundary element
/// per downstream piece (Ripple), so it is weighted well above a scanned
/// value; the fixed snapshot term covers the epoch pin + overlay fold.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Touched-value equivalents charged per pending update the locked
    /// path may merge before answering.
    pub merge_weight: u64,
    /// Fixed touched-value equivalents per snapshot read (pin + overlay).
    pub snapshot_fixed: u64,
    /// Touched-value budget below which a query is *cheap* — never worth
    /// shedding (an exact hit, or edge pieces already near-optimal).
    pub cheap_budget: u64,
    /// Snapshot edge-filter budget above which a downgrade-to-snapshot
    /// stops paying (the inline filter would itself be the overload).
    pub downgrade_budget: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            merge_weight: 8,
            snapshot_fixed: 64,
            cheap_budget: 1 << 12,
            downgrade_budget: 1 << 15,
        }
    }
}

/// Plan-time price of one query, merged over every shard its predicate
/// intersects. All numbers are conservative touched-value estimates derived
/// from (possibly sampled) published statistics — over-estimates, never
/// under-estimates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCost {
    /// Values the locked path would partition: the sizes of the edge
    /// pieces each non-exact bound falls into.
    pub crack_values: u64,
    /// Conservative qualifying-row estimate (positional span between the
    /// bracketing pieces) — sizes collects and decomposition decisions.
    pub scan_rows: u64,
    /// Pending Ripple updates the locked path may merge first.
    pub merge_backlog: u64,
    /// Values a snapshot read would filter in its edge pieces; `None`
    /// when some touched shard has no published snapshot (the first
    /// reader would pay an O(shard) build).
    pub snapshot_filter: Option<u64>,
    /// Every bound was already a piece boundary in every touched shard
    /// (the paper's `f_Ih` exact hit — zero crack work).
    pub exact_hit: bool,
    /// Shards the predicate fans out to.
    pub shards_touched: u32,
}

impl PlanCost {
    /// A cost for a shard (or whole attribute) with no published
    /// statistics: a cold column of `len` rows — everything is expensive,
    /// nothing is known about snapshots.
    pub fn cold(len: usize) -> Self {
        PlanCost {
            crack_values: len as u64,
            scan_rows: len as u64,
            merge_backlog: 0,
            snapshot_filter: None,
            exact_hit: false,
            shards_touched: 1,
        }
    }

    /// Folds another shard's cost into this one (fan-out merge).
    pub fn merge(&mut self, other: PlanCost) {
        if self.shards_touched == 0 {
            *self = other;
            return;
        }
        self.crack_values += other.crack_values;
        self.scan_rows += other.scan_rows;
        self.merge_backlog += other.merge_backlog;
        self.snapshot_filter = match (self.snapshot_filter, other.snapshot_filter) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        self.exact_hit &= other.exact_hit;
        self.shards_touched += other.shards_touched;
    }

    /// Touched-value cost of answering through the locked crack path.
    pub fn locked_cost(&self, model: &CostModel) -> u64 {
        self.crack_values + self.merge_backlog * model.merge_weight
    }

    /// Touched-value cost of answering through the snapshot path (`None`
    /// when a touched shard has never published a snapshot).
    pub fn snapshot_cost(&self, model: &CostModel) -> Option<u64> {
        self.snapshot_filter
            .map(|f| f + model.snapshot_fixed * self.shards_touched as u64)
    }

    /// The route the model prefers for a read-only query: snapshot exactly
    /// when its edge pieces are fresh enough to beat the locked crack
    /// (strict `<`, so a fresh exact hit keeps the locked path and its
    /// `f_Ih` statistics).
    pub fn preferred_route(&self, model: &CostModel) -> Route {
        match self.snapshot_cost(model) {
            Some(snap) if snap < self.locked_cost(model) => Route::Snapshot,
            _ => Route::Locked,
        }
    }

    /// Admission price class (see [`QueryPrice`]).
    pub fn price(&self, model: &CostModel) -> QueryPrice {
        if self.exact_hit || self.locked_cost(model) <= model.cheap_budget {
            QueryPrice::Cheap
        } else {
            QueryPrice::Expensive
        }
    }

    /// Under overload, can this query be served inline from the snapshot
    /// path instead of being shed? Requires a published snapshot whose
    /// edge filter both beats the locked cost and fits the downgrade
    /// budget (an unbounded inline filter would itself be the overload).
    pub fn downgradable(&self, model: &CostModel) -> bool {
        match self.snapshot_cost(model) {
            Some(snap) => snap < self.locked_cost(model) && snap <= model.downgrade_budget,
            None => false,
        }
    }
}

/// Access path chosen by the cost cutover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Query-driven cracking under the structure lock (refines the index).
    Locked,
    /// Lock-free epoch-pinned snapshot read (never cracks).
    Snapshot,
}

/// Admission price class of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPrice {
    /// Exact hit or near-optimal edges: admission must never shed it.
    Cheap,
    /// A cold or wide crack: sheddable (or downgradable to the snapshot
    /// path) under overload.
    Expensive,
}

/// Prices `pred` against one shard's published statistics. Pure function
/// of the immutable summary — callable while every column lock is held by
/// someone else.
pub fn estimate<V: CrackValue>(stats: &PieceStats<V>, pred: Predicate<V>) -> PlanCost {
    if pred.is_empty() {
        return PlanCost {
            exact_hit: true,
            shards_touched: 1,
            ..PlanCost::default()
        };
    }
    let (lo_edge, lo_exact) = stats.edge(pred.lo);
    let (hi_edge, hi_exact) = stats.edge(pred.hi);
    PlanCost {
        crack_values: (lo_edge + hi_edge) as u64,
        scan_rows: stats.range_rows(pred.lo, pred.hi),
        merge_backlog: stats.pending as u64,
        snapshot_filter: stats
            .snapshot_edge_filter(pred.lo, pred.hi)
            .map(|f| f as u64),
        exact_hit: lo_exact && hi_exact,
        shards_touched: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_cracking::piece_stats::PieceStats;

    fn stats(
        len: usize,
        bounds: Vec<(i64, usize)>,
        pending: usize,
        snap: Option<Vec<(Option<i64>, usize)>>,
    ) -> PieceStats<i64> {
        PieceStats {
            len,
            piece_count: bounds.len() + 1,
            bounds,
            pending,
            snap_pieces: snap,
        }
    }

    #[test]
    fn exact_hits_are_cheap_and_stay_locked() {
        let model = CostModel::default();
        let s = stats(100_000, vec![(10, 25_000), (20, 60_000)], 0, None);
        let c = estimate(&s, Predicate::range(10, 20));
        assert!(c.exact_hit);
        assert_eq!(c.crack_values, 0);
        assert_eq!(c.locked_cost(&model), 0);
        assert_eq!(c.price(&model), QueryPrice::Cheap);
        assert_eq!(c.preferred_route(&model), Route::Locked);
        assert_eq!(c.scan_rows, 35_000);
    }

    #[test]
    fn cold_cracks_are_expensive() {
        let model = CostModel::default();
        let s = stats(1_000_000, vec![], 0, None);
        let c = estimate(&s, Predicate::range(10, 20));
        assert!(!c.exact_hit);
        assert_eq!(c.crack_values, 2_000_000);
        assert_eq!(c.price(&model), QueryPrice::Expensive);
        assert!(
            !c.downgradable(&model),
            "no snapshot: nothing to downgrade to"
        );
    }

    #[test]
    fn fresh_snapshot_wins_the_cutover() {
        let model = CostModel::default();
        // Live index coarse around the bounds (big crack), snapshot fine
        // (small filter): the cutover must pick the snapshot.
        let s = stats(
            100_000,
            vec![(50, 50_000)],
            0,
            Some(vec![
                (Some(10), 128),
                (Some(20), 128),
                (Some(50), 49_744),
                (None, 50_000),
            ]),
        );
        let c = estimate(&s, Predicate::range(10, 20));
        assert_eq!(c.snapshot_filter, Some(0), "snapshot boundaries are exact");
        assert_eq!(c.preferred_route(&model), Route::Snapshot);
        assert!(c.price(&model) == QueryPrice::Expensive);
        assert!(c.downgradable(&model));
    }

    #[test]
    fn merge_folds_shards_conservatively() {
        let model = CostModel::default();
        let s1 = stats(1_000, vec![(10, 500)], 3, Some(vec![(None, 1_000)]));
        let s2 = stats(2_000, vec![], 0, None);
        let mut c = PlanCost::default();
        c.merge(estimate(&s1, Predicate::at_least(20)));
        assert!(c.snapshot_filter.is_some());
        c.merge(estimate(&s2, Predicate::less_than(30)));
        assert_eq!(c.shards_touched, 2);
        assert_eq!(c.merge_backlog, 3);
        assert!(
            c.snapshot_cost(&model).is_none(),
            "one snapshot-less shard poisons the snapshot route"
        );
        assert_eq!(c.preferred_route(&model), Route::Locked);
    }

    #[test]
    fn pending_backlog_prices_the_locked_path() {
        let model = CostModel::default();
        let s = stats(100_000, vec![(10, 25_000), (20, 60_000)], 1_000, None);
        let c = estimate(&s, Predicate::range(10, 20));
        assert!(c.exact_hit, "bounds still exact");
        assert_eq!(c.locked_cost(&model), 1_000 * model.merge_weight);
        assert_eq!(c.price(&model), QueryPrice::Cheap, "exact hits stay cheap");
    }
}
