//! Fast smoke test: every engine kind answers a handful of range queries on
//! a tiny dataset with exactly the counts a naive filter produces. This is
//! the first suite to consult when a refactor breaks something — it runs in
//! well under a second and points at the offending engine by name.

use holix::engine::{
    AdaptiveEngine, CrackMode, Dataset, HolisticEngine, HolisticEngineConfig, OfflineEngine,
    OnlineEngine, QueryEngine, ScanEngine,
};
use holix::workloads::data::uniform_table;
use holix::workloads::{QuerySpec, WorkloadSpec};

const ATTRS: usize = 2;
const ROWS: usize = 2_000;
const DOMAIN: i64 = 5_000;

/// The oracle: a plain iterator filter, independent of every library
/// operator the engines themselves use.
fn naive_count(data: &Dataset, q: &QuerySpec) -> u64 {
    data.column(q.attr)
        .iter()
        .filter(|&&v| q.lo <= v && v < q.hi)
        .count() as u64
}

fn smoke_queries() -> Vec<QuerySpec> {
    let mut qs = WorkloadSpec::random(ATTRS, 20, DOMAIN, 17).generate();
    // Edge windows the random generator is unlikely to produce.
    qs.push(QuerySpec {
        attr: 0,
        lo: 0,
        hi: DOMAIN + 1,
    });
    qs.push(QuerySpec {
        attr: 1,
        lo: 42,
        hi: 43,
    });
    qs.push(QuerySpec {
        attr: 1,
        lo: DOMAIN + 10,
        hi: DOMAIN + 20,
    });
    qs
}

fn check_engine(engine: &dyn QueryEngine, data: &Dataset) {
    for (qi, q) in smoke_queries().iter().enumerate() {
        assert_eq!(
            engine.execute(q),
            naive_count(data, q),
            "{} disagrees with the naive filter on query {qi} ({q:?})",
            engine.name()
        );
    }
}

#[test]
fn scan_engine_smoke() {
    let data = Dataset::new(uniform_table(ATTRS, ROWS, DOMAIN, 11));
    check_engine(&ScanEngine::new(data.clone(), 2), &data);
}

#[test]
fn offline_engine_smoke() {
    let data = Dataset::new(uniform_table(ATTRS, ROWS, DOMAIN, 12));
    check_engine(&OfflineEngine::new(data.clone(), 2), &data);
}

#[test]
fn online_engine_smoke() {
    let data = Dataset::new(uniform_table(ATTRS, ROWS, DOMAIN, 13));
    // Monitor window shorter than the query list so the sort kicks in
    // mid-suite and both phases are exercised.
    check_engine(&OnlineEngine::new(data.clone(), 2, 5), &data);
}

#[test]
fn adaptive_engine_smoke() {
    for mode in [
        CrackMode::Sequential,
        CrackMode::Pvdc { threads: 2 },
        CrackMode::Pvsdc { threads: 2 },
    ] {
        let data = Dataset::new(uniform_table(ATTRS, ROWS, DOMAIN, 14));
        check_engine(&AdaptiveEngine::new(data.clone(), mode), &data);
    }
}

#[test]
fn holistic_engine_smoke() {
    let data = Dataset::new(uniform_table(ATTRS, ROWS, DOMAIN, 15));
    let engine = HolisticEngine::new(data.clone(), HolisticEngineConfig::split_half(2));
    check_engine(&engine, &data);
    engine.stop();
}
