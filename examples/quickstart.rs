//! Quickstart: build a table, fire ad-hoc range queries, watch holistic
//! indexing refine the physical design in the background.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use holix::engine::{Dataset, HolisticEngine, HolisticEngineConfig, QueryEngine};
use holix::workloads::{data::uniform_table, WorkloadSpec};
use std::time::Instant;

fn main() {
    // A 4-attribute table of 1M uniform integers per attribute.
    let attrs = 4;
    let rows = 1 << 20;
    let domain = 1 << 20;
    println!("building table: {attrs} attributes x {rows} rows");
    let data = Dataset::new(uniform_table(attrs, rows, domain, 42));

    // Holistic indexing with half the contexts for queries, half for
    // background workers.
    let contexts = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);
    let engine = HolisticEngine::new(data, HolisticEngineConfig::split_half(contexts));

    // An ad-hoc workload: random ranges over random attributes — the
    // "future is unknown" scenario the paper targets.
    let queries = WorkloadSpec::random(attrs, 200, domain, 7).generate();

    let mut first_ten = 0.0;
    let mut last_ten = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let t0 = Instant::now();
        let count = engine.execute(q);
        let dt = t0.elapsed().as_secs_f64();
        if i < 10 {
            first_ten += dt;
        }
        if i >= queries.len() - 10 {
            last_ten += dt;
        }
        if i % 50 == 0 {
            println!(
                "query {i:>3}: attr={} range=[{}, {}) -> {count} rows in {:.2} ms \
                 ({} pieces across all indices)",
                q.attr,
                q.lo,
                q.hi,
                dt * 1e3,
                engine.total_pieces()
            );
        }
    }

    let cycles = engine.stop();
    let refinements: u64 = cycles.iter().map(|c| c.refinements).sum();
    println!("---");
    println!("first 10 queries: {:.2} ms", first_ten * 1e3);
    println!("last 10 queries:  {:.2} ms", last_ten * 1e3);
    println!(
        "tuning cycles: {} | background refinements: {refinements} | final pieces: {}",
        cycles.len(),
        engine.total_pieces()
    );
    println!(
        "the last queries are cheap because queries AND idle-cycle workers kept \
         cracking the indices"
    );
}
