//! Update streams against a live oracle: interleaved queries, insertions,
//! deletions and background refinement must always agree with a naive
//! re-scanned model of the column.

use holix::cracking::{CrackScratch, CrackerColumn};
use holix::storage::select::Predicate;
use holix::workloads::data::uniform_column;
use holix::workloads::updates::{update_stream, Op, UpdateScenario};
use rand::prelude::*;

/// Naive model: a plain Vec of (value) rows.
fn oracle_count(model: &[i64], lo: i64, hi: i64) -> u64 {
    model.iter().filter(|&&v| lo <= v && v < hi).count() as u64
}

#[test]
fn hflv_and_lfhv_streams_match_oracle() {
    for scenario in [
        UpdateScenario::HighFrequencyLowVolume,
        UpdateScenario::LowFrequencyHighVolume,
    ] {
        let base = uniform_column(40_000, 1 << 16, 51);
        let col = CrackerColumn::from_base("a", &base);
        let mut model = base.clone();
        let mut scratch = CrackScratch::new();
        let mut next_row = base.len() as u32;

        for op in update_stream(scenario, 200, 200, 1 << 16, 510) {
            match op {
                Op::Query(q) => {
                    let sel = col.select(Predicate::range(q.lo, q.hi), &mut scratch);
                    assert_eq!(
                        sel.count(),
                        oracle_count(&model, q.lo, q.hi),
                        "{scenario:?}"
                    );
                }
                Op::InsertBatch(vals) => {
                    for v in vals {
                        col.queue_insert(v, next_row);
                        model.push(v);
                        next_row += 1;
                    }
                }
            }
        }
        col.check_invariants(None);
    }
}

#[test]
fn background_refinement_merges_pending_updates() {
    let base = uniform_column(50_000, 1 << 16, 52);
    let col = CrackerColumn::from_base("a", &base);
    let mut scratch = CrackScratch::new();
    let mut rng = StdRng::seed_from_u64(520);

    // Crack a little so pieces exist, then queue inserts everywhere.
    col.select(Predicate::range(10_000, 50_000), &mut scratch);
    let first_row = base.len() as u32;
    for next_row in first_row..first_row + 500 {
        col.queue_insert(rng.random_range(0..1 << 16), next_row);
    }
    assert_eq!(col.pending_len(), 500);

    // Pure background refinement (no queries) must drain pending inserts as
    // it touches their pieces.
    for _ in 0..2_000 {
        col.refine_random(&mut rng, &mut scratch, 8);
        if col.pending_len() == 0 {
            break;
        }
    }
    assert!(
        col.pending_len() < 500,
        "workers merged nothing: {} still pending",
        col.pending_len()
    );
    col.check_invariants(None);

    // Total content is intact: every value answered exactly once.
    let sel = col.select(Predicate::range(i64::MIN + 1, i64::MAX), &mut scratch);
    assert_eq!(sel.count() as usize + col.pending_len(), 50_000 + 500);
}

#[test]
fn deletes_and_inserts_interleaved_with_refinement() {
    let base = uniform_column(30_000, 10_000, 53);
    let col = CrackerColumn::from_base("a", &base);
    let mut model: Vec<(i64, u32)> = base
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut scratch = CrackScratch::new();
    let mut rng = StdRng::seed_from_u64(530);
    let mut next_row = base.len() as u32;

    for step in 0..300 {
        match step % 4 {
            0 => {
                let v = rng.random_range(0..10_000);
                col.queue_insert(v, next_row);
                model.push((v, next_row));
                next_row += 1;
            }
            1 => {
                if let Some(idx) = (0..model.len()).choose(&mut rng) {
                    let (v, r) = model.swap_remove(idx);
                    col.queue_delete(v, r);
                }
            }
            2 => {
                col.refine_random(&mut rng, &mut scratch, 4);
            }
            _ => {
                let a = rng.random_range(0..10_000);
                let b = rng.random_range(0..10_000);
                let (lo, hi) = (a.min(b), a.max(b) + 1);
                let sel = col.select(Predicate::range(lo, hi), &mut scratch);
                let expect = model.iter().filter(|&&(v, _)| lo <= v && v < hi).count();
                assert_eq!(sel.count() as usize, expect, "step {step}");
            }
        }
    }
    col.check_invariants(None);
}
