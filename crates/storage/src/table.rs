//! Tables and the minimal catalog: named collections of positionally aligned
//! columns with dynamic (per-column) value types.

use crate::column::Column;
use crate::error::StorageError;

/// A column of any supported concrete type.
///
/// The enum keeps dynamic dispatch out of hot operator loops: engines match
/// once, then run monomorphised kernels on the inner slices.
#[derive(Debug, Clone)]
pub enum AnyColumn {
    I8(Column<i8>),
    I16(Column<i16>),
    I32(Column<i32>),
    I64(Column<i64>),
}

impl AnyColumn {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            AnyColumn::I8(c) => c.len(),
            AnyColumn::I16(c) => c.len(),
            AnyColumn::I32(c) => c.len(),
            AnyColumn::I64(c) => c.len(),
        }
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column name.
    pub fn name(&self) -> &str {
        match self {
            AnyColumn::I8(c) => c.name(),
            AnyColumn::I16(c) => c.name(),
            AnyColumn::I32(c) => c.name(),
            AnyColumn::I64(c) => c.name(),
        }
    }

    /// Name of the concrete value type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            AnyColumn::I8(_) => "i8",
            AnyColumn::I16(_) => "i16",
            AnyColumn::I32(_) => "i32",
            AnyColumn::I64(_) => "i64",
        }
    }

    /// Heap bytes of the value payload.
    pub fn payload_bytes(&self) -> usize {
        match self {
            AnyColumn::I8(c) => c.payload_bytes(),
            AnyColumn::I16(c) => c.payload_bytes(),
            AnyColumn::I32(c) => c.payload_bytes(),
            AnyColumn::I64(c) => c.payload_bytes(),
        }
    }
}

impl From<Column<i8>> for AnyColumn {
    fn from(c: Column<i8>) -> Self {
        AnyColumn::I8(c)
    }
}
impl From<Column<i16>> for AnyColumn {
    fn from(c: Column<i16>) -> Self {
        AnyColumn::I16(c)
    }
}
impl From<Column<i32>> for AnyColumn {
    fn from(c: Column<i32>) -> Self {
        AnyColumn::I32(c)
    }
}
impl From<Column<i64>> for AnyColumn {
    fn from(c: Column<i64>) -> Self {
        AnyColumn::I64(c)
    }
}

/// A vertically fragmented relational table: equal-height columns aligned by
/// position.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: Vec<AnyColumn>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tuples (the shared column height); 0 for a table with no
    /// columns.
    pub fn height(&self) -> usize {
        self.columns.first().map_or(0, AnyColumn::len)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// All columns in insertion order.
    pub fn columns(&self) -> &[AnyColumn] {
        &self.columns
    }

    /// Adds a column; its length must match the table height (unless this is
    /// the first column) and its name must be fresh.
    pub fn add_column(&mut self, col: impl Into<AnyColumn>) -> Result<(), StorageError> {
        let col = col.into();
        if !self.columns.is_empty() && col.len() != self.height() {
            return Err(StorageError::LengthMismatch {
                table: self.name.clone(),
                expected: self.height(),
                actual: col.len(),
            });
        }
        if self.columns.iter().any(|c| c.name() == col.name()) {
            return Err(StorageError::DuplicateColumn {
                table: self.name.clone(),
                column: col.name().to_string(),
            });
        }
        self.columns.push(col);
        Ok(())
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Result<&AnyColumn, StorageError> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| StorageError::ColumnNotFound {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Typed accessor for an `i64` column.
    pub fn col_i64(&self, name: &str) -> Result<&Column<i64>, StorageError> {
        match self.column(name)? {
            AnyColumn::I64(c) => Ok(c),
            other => Err(StorageError::TypeMismatch {
                column: name.to_string(),
                expected: "i64",
                actual: other.type_name(),
            }),
        }
    }

    /// Typed accessor for an `i32` column.
    pub fn col_i32(&self, name: &str) -> Result<&Column<i32>, StorageError> {
        match self.column(name)? {
            AnyColumn::I32(c) => Ok(c),
            other => Err(StorageError::TypeMismatch {
                column: name.to_string(),
                expected: "i32",
                actual: other.type_name(),
            }),
        }
    }

    /// Typed accessor for an `i8` column.
    pub fn col_i8(&self, name: &str) -> Result<&Column<i8>, StorageError> {
        match self.column(name)? {
            AnyColumn::I8(c) => Ok(c),
            other => Err(StorageError::TypeMismatch {
                column: name.to_string(),
                expected: "i8",
                actual: other.type_name(),
            }),
        }
    }

    /// Total payload bytes across all columns.
    pub fn payload_bytes(&self) -> usize {
        self.columns.iter().map(AnyColumn::payload_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table() -> Table {
        let mut t = Table::new("r");
        t.add_column(Column::from_vec("a", vec![1i64, 2, 3]))
            .unwrap();
        t.add_column(Column::from_vec("b", vec![10i32, 20, 30]))
            .unwrap();
        t
    }

    #[test]
    fn height_and_width() {
        let t = two_col_table();
        assert_eq!(t.height(), 3);
        assert_eq!(t.width(), 2);
        assert_eq!(t.name(), "r");
    }

    #[test]
    fn typed_accessors() {
        let t = two_col_table();
        assert_eq!(t.col_i64("a").unwrap().values(), &[1, 2, 3]);
        assert_eq!(t.col_i32("b").unwrap().values(), &[10, 20, 30]);
        assert!(matches!(
            t.col_i64("b"),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.col_i64("zzz"),
            Err(StorageError::ColumnNotFound { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut t = two_col_table();
        let err = t
            .add_column(Column::from_vec("c", vec![1i64, 2]))
            .unwrap_err();
        assert!(matches!(
            err,
            StorageError::LengthMismatch {
                expected: 3,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut t = two_col_table();
        let err = t
            .add_column(Column::from_vec("a", vec![0i64, 0, 0]))
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn { .. }));
    }

    #[test]
    fn payload_bytes_sums_columns() {
        let t = two_col_table();
        assert_eq!(t.payload_bytes(), 3 * 8 + 3 * 4);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty");
        assert_eq!(t.height(), 0);
        assert_eq!(t.width(), 0);
        assert_eq!(t.payload_bytes(), 0);
    }
}
