//! Per-shard point-membership filters — the equality fast path.
//!
//! A [`PointFilter`] is a plain blocked-free Bloom filter over a shard's
//! value multiset: `contains(v) == false` proves `v` is absent, so an
//! equality or IN-list probe on a non-containing shard returns an empty
//! result **without cracking anything** — no structure lock, no piece
//! latch, no boundary insertion. The paper's exact-hit statistic `f_Ih`
//! (§4) counts queries whose bounds are already boundaries; the filter
//! extends that to point probes whose *value* provably is not there,
//! which for cold or non-containing shards is the common case under
//! point-heavy mixes.
//!
//! Concurrency contract:
//!
//! - Bits only ever get **set** ([`PointFilter::insert`] uses `fetch_or`),
//!   never cleared, so concurrent inserts cannot introduce a false
//!   negative. A racing `contains` may miss an in-flight insert; callers
//!   order inserts against publication (the column ORs pending inserts in
//!   under the same `pending` mutex that serialises queue/merge).
//! - Deletes are ignored: a deleted value stays "maybe present", which
//!   only raises the false-positive rate, never breaks soundness. Filter
//!   rebuild under heavy deletes is a ROADMAP follow-up.
//!
//! Sizing is ~[`BITS_PER_KEY`] bits per expected key rounded up to a
//! power of two, probed with [`HASHES`] derived hashes (double hashing
//! from one splitmix64 pass) — false-positive rate ≲ 1% at design load.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Filter bits provisioned per expected key (before power-of-two round-up).
pub const BITS_PER_KEY: usize = 10;

/// Derived hash probes per key.
pub const HASHES: usize = 6;

/// 64-bit finaliser (splitmix64): every input bit affects every output bit,
/// so one pass yields two independent 32-ish-bit hashes for double hashing.
#[inline(always)]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Lock-free Bloom filter over `i64` keys (values are probed through
/// `CrackValue::as_i64`, which is injective for every supported width).
pub struct PointFilter {
    bits: Box<[AtomicU64]>,
    /// `bits.len() * 64 - 1`; bit indexing masks with this (power of two).
    mask: u64,
}

impl PointFilter {
    /// Builds an empty filter sized for `expected` keys (plus slack the
    /// caller provisions for pending inserts). Never allocates fewer than
    /// one word, so degenerate empty shards still probe safely.
    pub fn with_capacity(expected: usize) -> Self {
        let want_bits = expected.saturating_mul(BITS_PER_KEY).max(64);
        let words = (want_bits.div_ceil(64)).next_power_of_two();
        let bits = (0..words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        PointFilter {
            bits: bits.into_boxed_slice(),
            mask: (words as u64 * 64) - 1,
        }
    }

    /// Total bits provisioned.
    pub fn nbits(&self) -> usize {
        self.bits.len() * 64
    }

    #[inline(always)]
    fn probes(&self, key: i64) -> impl Iterator<Item = u64> + '_ {
        let h = mix64(key as u64);
        let h1 = h & 0xffff_ffff;
        // Force h2 odd so successive probes cycle through distinct bits
        // even in tiny filters.
        let h2 = (h >> 32) | 1;
        (0..HASHES as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2))) & self.mask)
    }

    /// Marks `key` present. Safe under arbitrary concurrency: bits only
    /// grow, so a racing reader can never be told a present key is absent.
    pub fn insert(&self, key: i64) {
        for bit in self.probes(key) {
            self.bits[(bit / 64) as usize].fetch_or(1 << (bit % 64), Relaxed);
        }
    }

    /// `false` proves `key` was never inserted; `true` means "maybe".
    pub fn contains(&self, key: i64) -> bool {
        self.probes(key)
            .all(|bit| self.bits[(bit / 64) as usize].load(Relaxed) & (1 << (bit % 64)) != 0)
    }
}

impl std::fmt::Debug for PointFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointFilter")
            .field("nbits", &self.nbits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let f = PointFilter::with_capacity(1000);
        for v in (0..1000).map(|i| i * 7 - 350) {
            f.insert(v);
        }
        for v in (0..1000).map(|i| i * 7 - 350) {
            assert!(f.contains(v), "inserted key {v} reported absent");
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let f = PointFilter::with_capacity(10_000);
        for v in 0..10_000i64 {
            f.insert(v * 2); // evens only
        }
        let mut fp = 0usize;
        let trials = 20_000usize;
        for i in 0..trials {
            if f.contains(i as i64 * 2 + 1) {
                fp += 1; // odd key can only be a false positive
            }
        }
        let rate = fp as f64 / trials as f64;
        assert!(
            rate < 0.02,
            "false-positive rate {rate} exceeds 2% at design load"
        );
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = PointFilter::with_capacity(0);
        assert!(f.nbits() >= 64);
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert!(!f.contains(v));
        }
    }

    #[test]
    fn concurrent_inserts_never_drop_keys() {
        use std::sync::Arc;
        let f = Arc::new(PointFilter::with_capacity(8_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..2000i64 {
                        f.insert(t * 2000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for v in 0..8000i64 {
            assert!(f.contains(v));
        }
    }
}
