//! Offline indexing baseline: all columns fully sorted, binary-search
//! selects.
//!
//! §5.1 evaluates the "zero idle time" scenario, so the sorting cost of all
//! columns lands on the very first query ("the sorting cost is added to the
//! execution time of the very first query in Figure 6(a)").

use crate::api::{Capabilities, Dataset, QueryEngine};
use holix_storage::psort::parallel_sort;
use holix_storage::select::Predicate;
use holix_storage::sort::SortedColumn;
use holix_workloads::QuerySpec;
use parking_lot::RwLock;

/// Fully sorted engine.
pub struct OfflineEngine {
    data: Dataset,
    threads: usize,
    sorted: RwLock<Option<Vec<SortedColumn<i64>>>>,
}

impl OfflineEngine {
    /// Offline engine sorting with `threads` threads (lazily, on the first
    /// query).
    pub fn new(data: Dataset, threads: usize) -> Self {
        OfflineEngine {
            data,
            threads: threads.max(1),
            sorted: RwLock::new(None),
        }
    }

    /// Sorts all columns now (used when a harness wants to exclude the
    /// indexing cost from per-query times, e.g. Fig 14's "pre-sorted" rows).
    pub fn prepare(&self) {
        let mut guard = self.sorted.write();
        if guard.is_none() {
            let cols = (0..self.data.attrs())
                .map(|a| parallel_sort(self.data.column(a), self.threads))
                .collect();
            *guard = Some(cols);
        }
    }

    fn with_sorted<R>(&self, attr: usize, f: impl FnOnce(&SortedColumn<i64>) -> R) -> R {
        {
            let guard = self.sorted.read();
            if let Some(cols) = guard.as_ref() {
                return f(&cols[attr]);
            }
        }
        self.prepare();
        let guard = self.sorted.read();
        f(&guard.as_ref().expect("prepared")[attr])
    }
}

impl QueryEngine for OfflineEngine {
    fn name(&self) -> &'static str {
        "offline"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            workload_analysis: true,
            idle_before_queries: true,
            idle_during_queries: false,
            full_materialization: true,
            high_update_cost: true,
            dynamic: false,
            point_screening: false,
        }
    }

    fn execute(&self, q: &QuerySpec) -> u64 {
        self.with_sorted(q.attr, |s| {
            let (a, b) = s.locate(Predicate::range(q.lo, q.hi));
            (b - a) as u64
        })
    }

    fn execute_verified(&self, q: &QuerySpec) -> (u64, i128) {
        self.with_sorted(q.attr, |s| {
            let st = s.select_stats(Predicate::range(q.lo, q.hi));
            (st.count, st.sum)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_query_pays_for_sorting_then_all_match() {
        let data = Dataset::new(vec![(0..10_000).rev().collect(), (0..10_000).collect()]);
        let e = OfflineEngine::new(data, 2);
        assert!(e.sorted.read().is_none());
        let q = QuerySpec {
            attr: 0,
            lo: 10,
            hi: 30,
        };
        assert_eq!(e.execute(&q), 20);
        assert!(e.sorted.read().is_some());
        let (c, s) = e.execute_verified(&q);
        assert_eq!(c, 20);
        assert_eq!(s, (10..30).sum::<i64>() as i128);
    }

    #[test]
    fn prepare_is_idempotent() {
        let data = Dataset::new(vec![(0..100).collect()]);
        let e = OfflineEngine::new(data, 1);
        e.prepare();
        e.prepare();
        assert_eq!(
            e.execute(&QuerySpec {
                attr: 0,
                lo: 0,
                hi: 100
            }),
            100
        );
    }
}
