//! mP-CCGI — modified Parallel Chunked Coarse-Granular Index.
//!
//! The original P-CCGI ([8]) splits a column into as many position-chunks as
//! threads; the first query range-partitions every chunk into coarse buckets
//! (the "coarse granular index") and cracks it, each chunk carrying its own
//! cracker index; later queries crack all chunks in parallel. Because one
//! value range is then scattered across all chunks, §5.2 extends the
//! algorithm with *consolidation* (after [31]): the qualifying value ranges
//! are copied into one contiguous array the first time a query needs them,
//! each range paid for exactly once.

use holix_cracking::{CrackScratch, CrackerColumn};
use holix_storage::select::{Predicate, RangeStats};
use holix_storage::types::{CrackValue, RowId};
use parking_lot::Mutex;

/// Outcome of one mP-CCGI select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkedSelection {
    /// Qualifying tuples across all chunks.
    pub count: u64,
    /// Values copied into the consolidated array by this query.
    pub consolidated_now: usize,
}

/// Tracks which value ranges have been consolidated, as a sorted list of
/// disjoint half-open intervals.
#[derive(Debug)]
struct Coverage<V> {
    covered: Vec<(V, V)>,
}

impl<V> Default for Coverage<V> {
    fn default() -> Self {
        Coverage {
            covered: Vec::new(),
        }
    }
}

impl<V: CrackValue> Coverage<V> {
    /// Parts of `[lo, hi)` not yet covered.
    fn uncovered(&self, lo: V, hi: V) -> Vec<(V, V)> {
        let mut out = Vec::new();
        let mut cur = lo;
        for &(a, b) in &self.covered {
            if b <= cur {
                continue;
            }
            if a >= hi {
                break;
            }
            if a > cur {
                out.push((cur, a.min(hi)));
            }
            cur = if b > cur { b } else { cur };
            if cur >= hi {
                return out;
            }
        }
        if cur < hi {
            out.push((cur, hi));
        }
        out
    }

    /// Marks `[lo, hi)` covered, merging adjacent intervals.
    fn cover(&mut self, lo: V, hi: V) {
        if lo >= hi {
            return;
        }
        self.covered.push((lo, hi));
        self.covered.sort_unstable_by_key(|&(a, _)| a);
        let mut merged: Vec<(V, V)> = Vec::with_capacity(self.covered.len());
        for &(a, b) in &self.covered {
            match merged.last_mut() {
                Some((_, pb)) if a <= *pb => {
                    if b > *pb {
                        *pb = b;
                    }
                }
                _ => merged.push((a, b)),
            }
        }
        self.covered = merged;
    }
}

/// A column split into position-chunks, each with its own cracker index.
pub struct ChunkedCrackerColumn<V> {
    chunks: Vec<CrackerColumn<V>>,
    /// Consolidated storage: value ranges copied out of the chunks.
    consolidated: Mutex<(Coverage<V>, Vec<V>)>,
    /// Equi-width pivots pre-cracked by the first query (the coarse
    /// granular index).
    coarse_pivots: Vec<V>,
    first_query_done: Mutex<bool>,
}

impl<V: CrackValue> ChunkedCrackerColumn<V> {
    /// Splits `base` into `chunks` position-chunks and prepares `2^coarse_bits`
    /// coarse buckets (built by the first query).
    pub fn build(name: &str, base: &[V], chunks: usize, coarse_bits: u32) -> Self {
        let chunks = chunks.max(1);
        let chunk_len = base.len().div_ceil(chunks).max(1);
        let mut cols = Vec::with_capacity(chunks);
        let mut off = 0usize;
        while off < base.len() {
            let end = (off + chunk_len).min(base.len());
            cols.push(CrackerColumn::from_base_offset(
                format!("{name}#{}", cols.len()),
                &base[off..end],
                off as RowId,
            ));
            off = end;
        }
        if cols.is_empty() {
            cols.push(CrackerColumn::from_base_offset(format!("{name}#0"), &[], 0));
        }

        // Equi-width pivots over the global domain.
        let mut coarse_pivots = Vec::new();
        let mut lo_hi: Option<(i64, i64)> = None;
        for c in &cols {
            if let Some((lo, hi)) = c.domain() {
                let (l, h) = (lo.as_i64(), hi.as_i64());
                lo_hi = Some(match lo_hi {
                    None => (l, h),
                    Some((a, b)) => (a.min(l), b.max(h)),
                });
            }
        }
        if let Some((lo, hi)) = lo_hi {
            let buckets = 1i64 << coarse_bits;
            let width = ((hi - lo) / buckets).max(1);
            for k in 1..buckets {
                let p = lo + k * width;
                if p > lo && p <= hi {
                    coarse_pivots.push(V::from_i64(p));
                }
            }
        }

        ChunkedCrackerColumn {
            chunks: cols,
            consolidated: Mutex::new((Coverage::default(), Vec::new())),
            coarse_pivots,
            first_query_done: Mutex::new(false),
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total pieces across all chunk indices.
    pub fn piece_count(&self) -> usize {
        self.chunks.iter().map(|c| c.piece_count()).sum()
    }

    /// Values currently held in the consolidated array.
    pub fn consolidated_len(&self) -> usize {
        self.consolidated.lock().1.len()
    }

    /// Range select: cracks every chunk in parallel, consolidates any part of
    /// the requested value range not yet consolidated, and returns the
    /// qualifying count.
    pub fn select(&self, pred: Predicate<V>) -> ChunkedSelection {
        self.ensure_coarse_partitioned();
        let per_chunk = self.crack_all_chunks(pred);
        let count: u64 = per_chunk.iter().map(|s| s.count).sum();

        // Consolidation: copy the not-yet-covered parts of [lo, hi).
        let mut consolidated_now = 0usize;
        let mut guard = self.consolidated.lock();
        let missing = guard.0.uncovered(pred.lo, pred.hi);
        for (mlo, mhi) in missing {
            let sub = Predicate::range(mlo, mhi);
            let mut scratch = CrackScratch::new();
            for chunk in &self.chunks {
                let (sel, stats) = chunk.select_verified(sub, &mut scratch);
                let _ = stats;
                // Copy the contiguous qualifying range out of the chunk.
                let vals = chunk.snapshot_range(sel.start, sel.end);
                consolidated_now += vals.len();
                guard.1.extend_from_slice(&vals);
            }
            guard.0.cover(mlo, mhi);
        }

        ChunkedSelection {
            count,
            consolidated_now,
        }
    }

    /// Count + checksum, verified against the chunk contents.
    pub fn select_stats(&self, pred: Predicate<V>) -> RangeStats {
        self.ensure_coarse_partitioned();
        let mut scratch = CrackScratch::new();
        let mut total = RangeStats::default();
        for chunk in &self.chunks {
            let (_, stats) = chunk.select_verified(pred, &mut scratch);
            total.merge(stats);
        }
        total
    }

    fn crack_all_chunks(&self, pred: Predicate<V>) -> Vec<RangeStats> {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = self
                .chunks
                .iter()
                .map(|chunk| {
                    s.spawn(move |_| {
                        let mut scratch = CrackScratch::new();
                        let sel = chunk.select(pred, &mut scratch);
                        RangeStats {
                            count: sel.count(),
                            sum: 0,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("chunk worker panicked"))
                .collect()
        })
        .expect("chunk scope panicked")
    }

    /// The first query performs the coarse range partition of each chunk in
    /// parallel (the "pre-index step" whose cost §5.2 notes "penalizes the
    /// first set of queries").
    fn ensure_coarse_partitioned(&self) {
        let mut done = self.first_query_done.lock();
        if *done {
            return;
        }
        crossbeam::thread::scope(|s| {
            for chunk in &self.chunks {
                let pivots = &self.coarse_pivots;
                s.spawn(move |_| {
                    let mut scratch = CrackScratch::new();
                    for &p in pivots {
                        chunk.refine_at_blocking(p, &mut scratch);
                    }
                });
            }
        })
        .expect("coarse partition scope panicked");
        *done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_storage::select::scan_stats;
    use rand::prelude::*;

    #[test]
    fn coverage_tracks_intervals() {
        let mut c = Coverage::<i64>::default();
        assert_eq!(c.uncovered(0, 10), vec![(0, 10)]);
        c.cover(2, 5);
        assert_eq!(c.uncovered(0, 10), vec![(0, 2), (5, 10)]);
        c.cover(5, 7);
        assert_eq!(c.uncovered(0, 10), vec![(0, 2), (7, 10)]);
        c.cover(0, 10);
        assert!(c.uncovered(0, 10).is_empty());
        assert_eq!(c.covered.len(), 1);
    }

    #[test]
    fn coverage_edge_cases() {
        let mut c = Coverage::<i64>::default();
        c.cover(5, 5); // empty
        assert_eq!(c.uncovered(0, 10), vec![(0, 10)]);
        c.cover(0, 3);
        c.cover(8, 12);
        assert_eq!(c.uncovered(2, 9), vec![(3, 8)]);
        assert_eq!(c.uncovered(0, 3), vec![]);
        assert_eq!(c.uncovered(10, 12), vec![]);
    }

    #[test]
    fn chunked_select_matches_scan() {
        let mut rng = StdRng::seed_from_u64(5);
        let base: Vec<i64> = (0..100_000).map(|_| rng.random_range(0..10_000)).collect();
        let col = ChunkedCrackerColumn::build("a", &base, 4, 4);
        assert_eq!(col.chunk_count(), 4);
        for _ in 0..20 {
            let a = rng.random_range(0..10_000);
            let b = rng.random_range(0..10_000);
            let pred = Predicate::range(a.min(b), a.max(b));
            let sel = col.select(pred);
            assert_eq!(sel.count, scan_stats(&base, pred).count);
            assert_eq!(col.select_stats(pred), scan_stats(&base, pred));
        }
    }

    #[test]
    fn first_query_builds_coarse_buckets() {
        let base: Vec<i64> = (0..50_000).map(|i| i % 1_000).collect();
        let col = ChunkedCrackerColumn::build("a", &base, 2, 4);
        // Before any query, each chunk is a single piece.
        assert_eq!(col.piece_count(), 2);
        col.select(Predicate::range(100, 200));
        // 2 chunks × (15 coarse pivots + 2 query bounds) pieces-ish.
        assert!(col.piece_count() >= 2 * 16);
    }

    #[test]
    fn consolidation_pays_each_range_once() {
        let mut rng = StdRng::seed_from_u64(6);
        let base: Vec<i64> = (0..50_000).map(|_| rng.random_range(0..10_000)).collect();
        let col = ChunkedCrackerColumn::build("a", &base, 4, 2);
        let pred = Predicate::range(1_000, 2_000);
        let first = col.select(pred);
        assert!(first.consolidated_now > 0);
        let second = col.select(pred);
        assert_eq!(second.consolidated_now, 0, "range already consolidated");
        // Overlapping query only pays for the new part.
        let third = col.select(Predicate::range(1_500, 2_500));
        let expect = scan_stats(&base, Predicate::range(2_000, 2_500)).count as usize;
        assert_eq!(third.consolidated_now, expect);
        assert_eq!(
            col.consolidated_len(),
            scan_stats(&base, Predicate::range(1_000, 2_500)).count as usize
        );
    }

    #[test]
    fn rowids_are_global() {
        let base: Vec<i64> = (0..1_000).rev().collect();
        let col = ChunkedCrackerColumn::build("a", &base, 4, 0);
        let pred = Predicate::range(0, 10);
        assert_eq!(col.select(pred).count, 10);
        // Chunk row ids must map back into the global base.
        // (Checked indirectly: select_stats sums the right values.)
        assert_eq!(col.select_stats(pred), scan_stats(&base, pred));
    }

    #[test]
    fn empty_base() {
        let col = ChunkedCrackerColumn::build("e", &[] as &[i64], 4, 4);
        let sel = col.select(Predicate::range(0, 10));
        assert_eq!(sel.count, 0);
    }
}
