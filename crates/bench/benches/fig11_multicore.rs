//! Fig 11 — holistic indexing vs multi-core adaptive-indexing baselines
//! (PVDC, PVSDC, mP-CCGI) while varying the number of cores (§5.2).
//!
//! Expected shape: everything improves with more cores; holistic improves
//! most because it stays active between and during queries. Core counts are
//! modelled logically; on machines with fewer physical cores the high end
//! oversubscribes (noted in the banner).

use holix_bench::{secs, time, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig};
use holix_parallel::ccgi::ChunkedCrackerColumn;
use holix_storage::select::Predicate;
use holix_workloads::data::uniform_table;
use holix_workloads::{QuerySpec, WorkloadSpec};

fn run_engine(engine: &dyn QueryEngine, queries: &[QuerySpec]) -> f64 {
    let (_, d) = time(|| {
        for q in queries {
            std::hint::black_box(engine.execute(q));
        }
    });
    secs(d)
}

fn run_ccgi(data: &Dataset, queries: &[QuerySpec], chunks: usize) -> f64 {
    let cols: Vec<ChunkedCrackerColumn<i64>> = (0..data.attrs())
        .map(|a| ChunkedCrackerColumn::build(&format!("a{a}"), data.column(a), chunks, 6))
        .collect();
    let (_, d) = time(|| {
        for q in queries {
            std::hint::black_box(cols[q.attr].select(Predicate::range(q.lo, q.hi)));
        }
    });
    secs(d)
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig 11: holistic vs multi-core adaptive indexing, varying cores",
        "csv: cores,mp_ccgi,pvdc,pvsdc,holistic,holistic_sharded (total seconds; cores modelled logically; sharded = HOLIX_SHARDS range shards per attribute)",
    );
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 11));
    let queries = WorkloadSpec::random(env.attrs, env.queries, env.domain, 110).generate();

    let mut cores = vec![2usize, 4];
    if env.threads >= 8 {
        cores.push(8);
    }
    if env.threads >= 16 {
        cores.push(16);
    }
    if env.threads >= 32 {
        cores.push(32);
    }

    println!("cores,mp_ccgi,pvdc,pvsdc,holistic,holistic_sharded,hi_label");
    for &c in &cores {
        let ccgi = run_ccgi(&data, &queries, c);
        let pvdc = run_engine(
            &AdaptiveEngine::new(data.clone(), CrackMode::Pvdc { threads: c }),
            &queries,
        );
        let pvsdc = run_engine(
            &AdaptiveEngine::new(data.clone(), CrackMode::Pvsdc { threads: c }),
            &queries,
        );
        // Holistic: half the cores to user queries, half to workers (the
        // best split per §5.2).
        let user = (c / 2).max(1);
        let workers = (c - user).max(1);
        let mut cfg = HolisticEngineConfig::split_half(c);
        cfg.user_threads = user;
        cfg.holistic.max_workers = Some(workers);
        let engine = HolisticEngine::new(data.clone(), cfg.clone());
        let hi = run_engine(&engine, &queries);
        engine.stop();
        drop(engine);
        // Shard-count sweep point: the same split over S range shards per
        // attribute — per-shard structure locks and latches, so concurrent
        // cracks on one attribute stop serialising on one column.
        let mut sharded_cfg = cfg;
        sharded_cfg.shards = env.shards;
        let engine = HolisticEngine::new(data.clone(), sharded_cfg);
        let hi_sharded = run_engine(&engine, &queries);
        engine.stop();
        println!(
            "{c},{ccgi:.6},{pvdc:.6},{pvsdc:.6},{hi:.6},{hi_sharded:.6},u{user}w{workers}s{}",
            env.shards
        );
    }
}
