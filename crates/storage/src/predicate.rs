//! Richer value predicates on top of the range kernel: equality, IN-lists
//! and their normalisation down to half-open ranges.
//!
//! The range form `lo <= v < hi` stays the *wire* representation everywhere
//! (cracked selects, snapshot scans, the service protocol): an equality
//! probe `v == x` lowers to the unit range `[x, succ(x))` and an IN-list to
//! one unit range per distinct member. This module owns that lowering plus
//! direct scan kernels for the un-lowered forms, so the scan baseline and
//! the oracle tests can evaluate point predicates without first converting
//! them. Multi-attribute conjunctions live one layer up (in `holix-engine`,
//! where per-attribute indexes can be intersected); a single column only
//! ever sees the per-attribute forms defined here.

use crate::select::{scan_stats, Predicate, RangeStats};
use crate::types::CrackValue;

/// A single-attribute predicate in its richest form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValuePredicate<V> {
    /// Half-open range `lo <= v < hi`.
    Range(Predicate<V>),
    /// Equality probe `v == x`.
    Eq(V),
    /// Membership probe `v ∈ set` (members need not be sorted or unique).
    In(Vec<V>),
}

impl<V: CrackValue> ValuePredicate<V> {
    /// Does `v` satisfy the predicate?
    pub fn matches(&self, v: V) -> bool {
        match self {
            ValuePredicate::Range(p) => p.matches(v),
            ValuePredicate::Eq(x) => v == *x,
            ValuePredicate::In(set) => set.contains(&v),
        }
    }

    /// `true` when no value can qualify.
    pub fn is_empty(&self) -> bool {
        match self {
            ValuePredicate::Range(p) => p.is_empty(),
            ValuePredicate::Eq(_) => false,
            ValuePredicate::In(set) => set.is_empty(),
        }
    }

    /// The distinct point values of a point-shaped predicate (`Eq`, `In`,
    /// or a `Range` that covers exactly one value), sorted ascending —
    /// `None` for genuine ranges. This is what fans out to the per-shard
    /// membership filters: each returned value probes exactly one shard.
    pub fn points(&self) -> Option<Vec<V>> {
        match self {
            ValuePredicate::Eq(x) => Some(vec![*x]),
            ValuePredicate::In(set) => {
                let mut points = set.clone();
                points.sort_unstable();
                points.dedup();
                Some(points)
            }
            ValuePredicate::Range(p) => p.as_point().map(|v| vec![v]),
        }
    }

    /// Normalises to the half-open ranges the cracked kernels execute:
    /// one range for `Range`, one unit range per distinct member for
    /// `Eq`/`In` (empty members and the unprobeable `MAX_VALUE` sentinel
    /// drop out). The ranges are disjoint and sorted ascending.
    pub fn to_ranges(&self) -> Vec<Predicate<V>> {
        let ranges: Vec<Predicate<V>> = match self {
            ValuePredicate::Range(p) => vec![*p],
            ValuePredicate::Eq(x) => vec![Predicate::point(*x)],
            ValuePredicate::In(_) => self
                .points()
                .unwrap_or_default()
                .into_iter()
                .map(Predicate::point)
                .collect(),
        };
        ranges.into_iter().filter(|r| !r.is_empty()).collect()
    }
}

/// Scans `values` under any predicate form — the "no indexing support"
/// baseline and the oracle the adaptive paths are verified against. `In`
/// membership is evaluated via binary search over a sorted copy of the set,
/// so wide IN-lists stay O(N log m) instead of O(N·m).
pub fn scan_stats_value<V: CrackValue>(values: &[V], pred: &ValuePredicate<V>) -> RangeStats {
    match pred {
        ValuePredicate::Range(p) => scan_stats(values, *p),
        ValuePredicate::Eq(x) => {
            let mut stats = RangeStats::default();
            for &v in values {
                if v == *x {
                    stats.count += 1;
                    stats.sum += v.as_i64() as i128;
                }
            }
            stats
        }
        ValuePredicate::In(set) => {
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let mut stats = RangeStats::default();
            for &v in values {
                if sorted.binary_search(&v).is_ok() {
                    stats.count += 1;
                    stats.sum += v.as_i64() as i128;
                }
            }
            stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_lowers_to_unit_range() {
        let p = ValuePredicate::Eq(7i64);
        assert_eq!(p.to_ranges(), vec![Predicate::range(7, 8)]);
        assert_eq!(p.points(), Some(vec![7]));
        assert!(p.matches(7) && !p.matches(8));
    }

    #[test]
    fn in_list_dedupes_and_sorts() {
        let p = ValuePredicate::In(vec![9i64, 3, 9, 5]);
        assert_eq!(p.points(), Some(vec![3, 5, 9]));
        assert_eq!(
            p.to_ranges(),
            vec![
                Predicate::range(3, 4),
                Predicate::range(5, 6),
                Predicate::range(9, 10)
            ]
        );
        assert!(p.matches(5) && !p.matches(4));
        assert!(ValuePredicate::In(Vec::<i64>::new()).is_empty());
    }

    #[test]
    fn unit_range_is_a_point() {
        let p = ValuePredicate::Range(Predicate::range(4i64, 5));
        assert_eq!(p.points(), Some(vec![4]));
        let wide = ValuePredicate::Range(Predicate::range(4i64, 6));
        assert_eq!(wide.points(), None);
    }

    #[test]
    fn sentinel_point_drops_out() {
        let p = ValuePredicate::Eq(i64::MAX);
        assert!(p.to_ranges().is_empty(), "MAX_VALUE cannot be probed");
    }

    #[test]
    fn scan_matches_lowered_ranges() {
        let vals = [1i64, 5, 3, 9, 5, 0, 9];
        for pred in [
            ValuePredicate::Eq(5),
            ValuePredicate::In(vec![9, 0, 9]),
            ValuePredicate::Range(Predicate::range(2, 6)),
        ] {
            let direct = scan_stats_value(&vals, &pred);
            let mut lowered = RangeStats::default();
            for r in pred.to_ranges() {
                lowered.merge(scan_stats(&vals, r));
            }
            assert_eq!(direct, lowered, "{pred:?}");
        }
    }
}
