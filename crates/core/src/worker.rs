//! The IdleFunction a holistic worker executes (Fig 2 of the paper).
//!
//! "Each worker thread executes an instance of the IdleFunction, which picks
//! an index from the Index Space IS and performs x partial index refinement
//! actions on it. Every time an index is refined, the respective statistics
//! […] are updated. When an index reaches the optimal status, it is moved
//! into the optimal configuration."

use crate::handle::RefineResult;
use crate::index_space::{IndexSpace, Membership};
use rand::RngCore;
use std::time::{Duration, Instant};

/// What one worker activation accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Successful piece splits.
    pub refinements: u64,
    /// Attempts that found every tried piece latched.
    pub busy: u64,
    /// Pivots that already were boundaries.
    pub already_bound: u64,
    /// Stale snapshot pieces refreshed to live granularity in the
    /// background (snapshot follow-up (b)).
    pub snapshot_refreshes: u64,
    /// Point membership filters rebuilt after delete churn degraded
    /// their false-positive rate.
    pub filter_rebuilds: u64,
    /// Stable plain snapshot pieces re-encoded (FOR / delta / RLE) in the
    /// background to shrink `snapshot_bytes`.
    pub segment_morphs: u64,
    /// Wall time spent in the IdleFunction.
    pub duration: Duration,
    /// Whether an index was available to work on.
    pub picked: bool,
}

/// Runs one IdleFunction instance: pick an index, refine it `x` times with
/// random pivots, update statistics, stop early once it turns optimal.
pub fn idle_function(
    space: &IndexSpace,
    refinements_per_worker: usize,
    latch_attempts: usize,
    rng: &mut dyn RngCore,
) -> WorkerReport {
    let start = Instant::now();
    let mut report = WorkerReport::default();

    let Some((id, handle)) = space.pick(rng) else {
        report.duration = start.elapsed();
        return report;
    };
    report.picked = true;

    for _ in 0..refinements_per_worker {
        let result = handle.refine_random(rng, latch_attempts);
        space.record_worker_outcome(id, result);
        match result {
            RefineResult::Refined { .. } => report.refinements += 1,
            RefineResult::Busy => report.busy += 1,
            RefineResult::AlreadyBound => report.already_bound += 1,
        }
        if space.membership(id) == Some(Membership::Optimal) {
            break;
        }
    }
    // End-of-activation maintenance: refresh one stale snapshot piece (so
    // the first unlucky reader stops paying the copy), rebuild the point
    // membership filter if delete churn degraded it, re-encode one stable
    // plain snapshot piece (refresh-before-morph: a refresh would re-copy
    // a freshly morphed piece plain again), and republish the plan-time
    // statistics the refinements invalidated.
    if handle.refresh_snapshot() {
        report.snapshot_refreshes += 1;
    }
    if handle.maybe_rebuild_filter() {
        report.filter_rebuilds += 1;
    }
    if handle.morph_cold_segments() {
        report.segment_morphs += 1;
    }
    handle.publish_plan_stats();
    report.duration = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HolisticConfig;
    use crate::handle::CrackerHandle;
    use holix_cracking::CrackerColumn;
    use rand::prelude::*;
    use std::sync::Arc;

    fn space_with_column(n: usize) -> IndexSpace {
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..n as i64).rev().collect();
        let handle = Arc::new(CrackerHandle::new(Arc::new(CrackerColumn::from_base(
            "a", &base,
        ))));
        space.register_actual(handle);
        space
    }

    #[test]
    fn empty_space_reports_nothing_picked() {
        let space = IndexSpace::new(HolisticConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let r = idle_function(&space, 16, 8, &mut rng);
        assert!(!r.picked);
        assert_eq!(r.refinements, 0);
    }

    #[test]
    fn performs_x_refinements() {
        let space = space_with_column(100_000);
        let mut rng = StdRng::seed_from_u64(2);
        let r = idle_function(&space, 16, 8, &mut rng);
        assert!(r.picked);
        // On an unlatched fresh column almost every pivot splits a piece.
        assert!(r.refinements + r.already_bound == 16, "{r:?}");
        assert!(r.refinements >= 12);
    }

    #[test]
    fn stops_at_optimal() {
        // Column small enough that a handful of cracks reaches |L1| pieces.
        let space = space_with_column(8_192);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0;
        for _ in 0..50 {
            let r = idle_function(&space, 16, 8, &mut rng);
            total += r.refinements;
            if !r.picked {
                break;
            }
        }
        // 8192 i64 values: optimal at avg piece ≤ 4096 values → 1 split.
        assert!(total >= 1);
        let (_, _, optimal, _) = space.membership_counts();
        assert_eq!(optimal, 1);
        // Once optimal, nothing remains pickable.
        let r = idle_function(&space, 16, 8, &mut rng);
        assert!(!r.picked);
    }

    #[test]
    fn idle_function_refreshes_stale_snapshots() {
        // A coarse published snapshot over a column the workers keep
        // cracking finer: end-of-activation maintenance must refresh the
        // snapshot's piece table in the background, so the first reader
        // stops paying the copy.
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..100_000i64).rev().collect();
        let col = std::sync::Arc::new(CrackerColumn::from_base("a", &base));
        let mut scratch = holix_cracking::CrackScratch::new();
        col.snapshot_scan(
            holix_storage::select::Predicate::range(0, 100_000),
            &mut scratch,
        );
        let coarse = col.snapshot_piece_count();
        space.register_actual(Arc::new(CrackerHandle::new(Arc::clone(&col))));
        let mut rng = StdRng::seed_from_u64(9);
        let mut refreshes = 0;
        for _ in 0..50 {
            let r = idle_function(&space, 8, 8, &mut rng);
            refreshes += r.snapshot_refreshes;
            if !r.picked {
                break;
            }
        }
        assert!(refreshes > 0, "workers never refreshed the snapshot");
        assert!(
            col.snapshot_piece_count() > coarse,
            "snapshot piece table did not chase the refinements \
             ({} vs coarse {coarse})",
            col.snapshot_piece_count()
        );
    }

    #[test]
    fn idle_function_rebuilds_a_churned_point_filter() {
        // A published point filter over a column that then absorbs heavy
        // delete churn: end-of-activation maintenance must rebuild the
        // filter (deleted keys never leave a Bloom filter) and reset the
        // churn accounting.
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..100_000i64).rev().collect();
        let col = Arc::new(CrackerColumn::from_base("a", &base));
        col.ensure_point_filter();
        for v in 0..30_000i64 {
            col.queue_delete(v, v as u32);
        }
        assert!(col.point_filter_staleness() >= 30_000);
        space.register_actual(Arc::new(CrackerHandle::new(Arc::clone(&col))));
        let mut rng = StdRng::seed_from_u64(11);
        let mut rebuilds = 0;
        for _ in 0..50 {
            let r = idle_function(&space, 8, 8, &mut rng);
            rebuilds += r.filter_rebuilds;
            if !r.picked {
                break;
            }
        }
        assert!(rebuilds > 0, "workers never rebuilt the churned filter");
        assert_eq!(
            col.point_filter_staleness(),
            0,
            "rebuild did not reset the churn accounting"
        );
        // The fresh filter still proves absence for never-inserted values.
        assert_eq!(col.probe_point(-5), Some(false));
    }

    #[test]
    fn idle_function_morphs_cold_segments() {
        // A snapshot full of big plain pieces over a narrow domain: idle
        // workers must re-encode them in the background, shrinking
        // `snapshot_bytes` without any reader paying for it.
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..100_000i64).map(|i| i % 1_000).collect();
        let col = Arc::new(CrackerColumn::from_base("a", &base));
        let mut scratch = holix_cracking::CrackScratch::new();
        col.snapshot_scan(
            holix_storage::select::Predicate::range(0, 1_000),
            &mut scratch,
        );
        let plain_bytes = col.snapshot_bytes();
        space.register_actual(Arc::new(CrackerHandle::new(Arc::clone(&col))));
        let mut rng = StdRng::seed_from_u64(13);
        let mut morphs = 0;
        for _ in 0..200 {
            let r = idle_function(&space, 8, 8, &mut rng);
            morphs += r.segment_morphs;
            // Stop at the first background morph: each activation's
            // snapshot refresh re-copies the stalest piece *plain* at live
            // granularity (encoded refresh is a seeded follow-up), so
            // running to convergence would let refreshes re-plain what the
            // rarer gated morphs encoded.
            if morphs > 0 || !r.picked {
                break;
            }
        }
        assert!(morphs > 0, "workers never morphed a segment");
        col.snapshot_gc();
        assert!(
            col.snapshot_bytes() < plain_bytes,
            "morphing did not shrink snapshot bytes: {} vs {plain_bytes}",
            col.snapshot_bytes()
        );
        // Scans on the morphed snapshot stay exact.
        let pred = holix_storage::select::Predicate::range(100, 900);
        let scan = col.snapshot_scan(pred, &mut scratch);
        let oracle = holix_storage::select::scan_stats(&base, pred);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
    }

    #[test]
    fn stats_recorded_per_outcome() {
        let space = space_with_column(100_000);
        let mut rng = StdRng::seed_from_u64(4);
        idle_function(&space, 8, 8, &mut rng);
        let id = space.live_ids()[0];
        let (_, stats) = space.get(id).unwrap();
        assert!(stats.worker_refinements() > 0);
        assert_eq!(stats.queries(), 0);
    }
}
