//! Table 1 — qualitative difference among offline, online, adaptive and
//! holistic indexing, derived from the engines' capability metadata.

use holix_bench::BenchEnv;
use holix_engine::api::{Capabilities, Dataset, QueryEngine};
use holix_engine::{
    AdaptiveEngine, CrackMode, HolisticEngine, HolisticEngineConfig, OfflineEngine, OnlineEngine,
};
use holix_workloads::data::uniform_table;

fn row(name: &str, c: Capabilities) {
    let tick = |b: bool| if b { "yes" } else { "no" };
    println!(
        "{name},{},{},{},{},{},{},{}",
        tick(c.workload_analysis),
        tick(c.idle_before_queries),
        tick(c.idle_during_queries),
        if c.full_materialization {
            "full"
        } else {
            "partial"
        },
        if c.high_update_cost { "high" } else { "low" },
        if c.dynamic { "dynamic" } else { "static" },
        tick(c.point_screening),
    );
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Table 1: qualitative comparison of indexing approaches",
        "columns: analysis,idle-before,idle-during,materialization,update-cost,workload,screened-probes",
    );
    let data = Dataset::new(uniform_table(1, 1_000, 1_000, 1));
    println!(
        "indexing,analysis,idle_before,idle_during,materialization,update_cost,workload,screened_probes"
    );
    row(
        "offline",
        OfflineEngine::new(data.clone(), 1).capabilities(),
    );
    row(
        "online",
        OnlineEngine::new(data.clone(), 1, 100).capabilities(),
    );
    row(
        "adaptive",
        AdaptiveEngine::new(data.clone(), CrackMode::Sequential).capabilities(),
    );
    let h = HolisticEngine::new(data, HolisticEngineConfig::split_half(2));
    row("holistic", h.capabilities());
    h.stop();
}
