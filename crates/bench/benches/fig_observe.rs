//! Fig (observe) — telemetry overhead: the full metrics + tracing layer
//! enabled vs compiled-in-but-disabled, on an identical served workload.
//!
//! Two identical service beds (holistic engine, crack-aware batching,
//! online calibration) serve the same skewed closed-loop traffic. One bed
//! runs with `HOLIX_METRICS`-style instrumentation *and* per-query tracing
//! enabled; the other with both disabled (the hot-path cost is then a
//! handful of relaxed flag loads). Beds alternate per measured repetition
//! so machine drift hits both equally, every answer is checked against a
//! sorted-column oracle, and the harness **asserts** the enabled bed
//! sustains at least `0.97×` the disabled bed's pooled QPS — the tax of
//! always-on observability must stay under 3%. A second assertion checks
//! one text exposition from the live service carries metrics from all four
//! instrumented layers (cracking, planner, engine, server).
//!
//! On a 1-core container run-to-run swings exceed the 3% budget, so the
//! comparison retries up to three full measurement rounds and passes if
//! any round meets the bound (a real systematic overhead fails all three).

use holix_bench::{secs, BenchEnv};
use holix_engine::api::{Dataset, QueryEngine};
use holix_engine::{HolisticEngine, HolisticEngineConfig};
use holix_server::{AdmissionPolicy, QueryService, Scheduling, ServiceConfig};
use holix_workloads::data::uniform_table;
use holix_workloads::traffic::{ArrivalProcess, ClientFocus};
use holix_workloads::{QuerySpec, TrafficSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Binary-search count oracle over pre-sorted columns.
fn oracle(sorted: &[Vec<i64>], q: &QuerySpec) -> u64 {
    let col = &sorted[q.attr];
    (col.partition_point(|&v| v < q.hi) - col.partition_point(|&v| v < q.lo)) as u64
}

struct Bed {
    label: &'static str,
    /// Both telemetry knobs (metrics + tracing) set to this before every
    /// repetition the bed runs.
    telemetry_on: bool,
    engine: Arc<HolisticEngine>,
    service: QueryService,
    steady_wall: Duration,
}

impl Bed {
    fn arm(&self) {
        holix_telemetry::set_metrics_enabled(self.telemetry_on);
        holix_telemetry::set_trace_enabled(self.telemetry_on);
    }
}

/// One full oracle-checked traffic repetition against `bed`.
fn run_rep(bed: &Bed, traffic: &TrafficSpec, sorted: &[Vec<i64>]) -> Duration {
    bed.arm();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..traffic.clients {
            let stream = traffic.client_stream(c);
            let session = bed.service.session();
            s.spawn(move || {
                for tq in &stream {
                    if !tq.at.is_zero() {
                        std::thread::sleep(tq.at);
                    }
                    let result = session.execute(tq.spec).expect("submit failed");
                    assert_eq!(
                        result.count,
                        oracle(sorted, &tq.spec),
                        "telemetry bed diverged from scan oracle on {:?}",
                        tq.spec
                    );
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    let env = BenchEnv::from_env();
    env.banner(
        "Fig (observe): telemetry enabled vs disabled on one served workload",
        "csv: mode,completed,executed,qps,p50_ms,p95_ms,p99_ms",
    );
    let clients = env.clients.max(2);
    let queries_per_client = (env.queries * 4 / clients).max(64);
    let data = Dataset::new(uniform_table(env.attrs, env.n, env.domain, 2113));
    let sorted: Vec<Vec<i64>> = (0..env.attrs)
        .map(|a| {
            let mut col = data.column(a).to_vec();
            col.sort_unstable();
            col
        })
        .collect();
    let mut traffic = TrafficSpec::saturating(
        clients,
        queries_per_client,
        env.attrs,
        env.domain,
        env.n as u64 ^ 0x0b5e,
    );
    traffic.focus = ClientFocus::HotRegions {
        regions: 16,
        exact_prob: 0.75,
    };
    traffic.arrival = ArrivalProcess::Closed {
        think: Duration::ZERO,
    };
    let monitor_interval = Duration::from_millis(2);

    let mut beds: Vec<Bed> = [("enabled", true), ("disabled", false)]
        .into_iter()
        .map(|(label, telemetry_on)| {
            let mut cfg = HolisticEngineConfig::split_half_sharded(env.threads, env.shards.max(2));
            cfg.holistic.monitor_interval = monitor_interval;
            let engine = Arc::new(HolisticEngine::new(data.clone(), cfg));
            let service = QueryService::start(
                Arc::clone(&engine) as Arc<dyn QueryEngine>,
                Some(Arc::clone(engine.accountant())),
                ServiceConfig {
                    workers: (env.threads / 2).max(2),
                    queue_capacity: (clients * 4).max(8),
                    admission: AdmissionPolicy::Block,
                    scheduling: Scheduling::CrackAware,
                    batch_max: (clients * 2).max(32),
                    // Calibration on: the planner's residual channels and
                    // republished knobs must show up in the exposition.
                    calibration: true,
                    ..ServiceConfig::default()
                },
            );
            Bed {
                label,
                telemetry_on,
                engine,
                service,
                steady_wall: Duration::ZERO,
            }
        })
        .collect();

    // Warmup: crack the hot regions with each bed's own telemetry setting
    // armed, so the enabled bed's daemon/cracking instrumentation fires at
    // least once before exposition is checked.
    for bed in &beds {
        run_rep(bed, &traffic, &sorted);
    }
    // Daemons off for the measured phase (refine workers must not confound
    // the A/B), fresh measurement windows past the cold start.
    for bed in &beds {
        bed.engine.stop();
        bed.service.reset_window();
    }

    // Measured phase, retried up to three rounds on a noisy machine: beds
    // alternate per repetition so drift cancels; pooled QPS decides.
    let per_round = (clients * queries_per_client * env.reps) as f64;
    let mut ratio = 0.0f64;
    let mut rounds = 0usize;
    while rounds < 3 {
        rounds += 1;
        for bed in &mut beds {
            bed.steady_wall = Duration::ZERO;
        }
        for _ in 0..env.reps {
            for bed in &mut beds {
                bed.steady_wall += run_rep(bed, &traffic, &sorted);
            }
        }
        let qps = |label: &str| {
            let bed = beds.iter().find(|b| b.label == label).unwrap();
            per_round / secs(bed.steady_wall).max(1e-9)
        };
        ratio = ratio.max(qps("enabled") / qps("disabled").max(1e-9));
        if ratio >= 0.97 {
            break;
        }
    }

    // Exposition check while the enabled bed's series are still live: one
    // text dump must carry all four instrumented layers.
    holix_telemetry::set_metrics_enabled(true);
    let exposition = holix_telemetry::registry().expose();
    for layer in ["cracking_", "planner_", "engine_", "server_"] {
        assert!(
            exposition.lines().any(|l| l.starts_with(layer)),
            "exposition is missing the `{layer}` layer:\n{exposition}"
        );
    }
    let trace_records = holix_telemetry::registry().trace().recorded();
    assert!(
        trace_records > 0,
        "tracing was enabled on the enabled bed but recorded nothing"
    );

    println!("mode,completed,executed,qps,p50_ms,p95_ms,p99_ms");
    for bed in beds {
        let wall = bed.steady_wall;
        let summary = bed.service.shutdown();
        println!(
            "{},{},{},{:.1},{:.3},{:.3},{:.3}",
            bed.label,
            summary.completed,
            summary.executed,
            per_round / secs(wall).max(1e-9),
            summary.p50.as_secs_f64() * 1e3,
            summary.p95.as_secs_f64() * 1e3,
            summary.p99.as_secs_f64() * 1e3,
        );
    }
    println!(
        "# overhead_ratio={ratio:.4} (enabled QPS / disabled QPS, best of {rounds} round(s)); \
         exposition carries all 4 layers; {trace_records} trace records"
    );
    holix_telemetry::set_metrics_enabled(true);
    holix_telemetry::set_trace_enabled(false);
    assert!(
        ratio >= 0.97,
        "telemetry overhead exceeds 3%: enabled/disabled QPS ratio {ratio:.4} after {rounds} rounds"
    );
    println!("# OK: enabled bed >= 0.97x disabled bed");
}
