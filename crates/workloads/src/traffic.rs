//! Multi-client traffic generators for the service layer (§5.8 scaled to
//! "heavy traffic": many sessions, arrival distributions, per-client skew).
//!
//! A [`TrafficSpec`] describes a fleet of client sessions. Each client gets
//! its own deterministic query stream ([`TrafficSpec::client_stream`]):
//! open-loop streams carry absolute arrival offsets (the client fires at
//! those times regardless of completions), closed-loop streams carry think
//! times (the client waits that long after each answer). Per-client skew
//! models real fleets where every client hammers its own slice of the data
//! — the regime where crack-aware batching pays off.

use crate::patterns::QuerySpec;
use rand::prelude::*;
use std::time::Duration;

/// How a client paces its submissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: wait for the answer, think, submit the next query.
    Closed {
        /// Think time between completion and next submission.
        think: Duration,
    },
    /// Open loop, deterministic spacing at `qps` per client.
    OpenUniform {
        /// Offered queries per second, per client.
        qps: f64,
    },
    /// Open loop, Poisson process: exponential inter-arrivals at `qps`.
    OpenPoisson {
        /// Mean offered queries per second, per client.
        qps: f64,
    },
    /// Open loop, bursty: `burst` back-to-back queries, then a gap sized so
    /// the long-run rate is `qps`.
    OpenBursty {
        /// Mean offered queries per second, per client.
        qps: f64,
        /// Queries per burst.
        burst: usize,
    },
}

/// Which slice of the data each client focuses on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientFocus {
    /// All clients draw uniformly over all attributes and the full domain.
    Shared,
    /// Client `c` only queries attribute `c % n_attrs` (per-client column
    /// affinity).
    PerClientAttr,
    /// Clients draw from a fixed set of hot predicate windows with a
    /// Zipf-like preference rotated per client, so every client has its own
    /// favourite windows but the fleet shares the hot set. Produces many
    /// repeated predicates — the skewed regime of the service experiments.
    HotWindows {
        /// Number of distinct hot windows in the fleet-wide set.
        windows: usize,
    },
    /// Like [`ClientFocus::HotWindows`], but each hot entry is a *region*:
    /// with probability `exact_prob` a query repeats the region's canonical
    /// window verbatim (a cached dashboard query), otherwise its bounds are
    /// jittered inside the region (a parameterised variant). Sustains fresh
    /// cracking work concentrated on the hot regions.
    HotRegions {
        /// Number of distinct hot regions in the fleet-wide set.
        regions: usize,
        /// Probability of an exact repeat of the canonical window.
        exact_prob: f64,
    },
    /// The planner harness's serving mix: [`ClientFocus::HotRegions`]
    /// traffic (cheap narrow repeats + jittered variants) interleaved
    /// with *wide spanning scans* — with probability `wide_prob` a query
    /// covers at least half the domain at a fresh random offset, so it
    /// crosses every shard plan's cuts (exercising decomposition) and its
    /// cold bounds price Expensive (exercising cost-based shedding).
    SpanningMix {
        /// Number of distinct hot regions in the fleet-wide set.
        regions: usize,
        /// Probability of an exact repeat of a region's canonical window.
        exact_prob: f64,
        /// Probability that a query is a wide spanning scan instead.
        wide_prob: f64,
    },
    /// The point-filter harness's serving mix: with probability
    /// `point_prob` a query is a unit-range equality probe on a
    /// Zipf-ranked hot key (key-value-style exact-match lookups — the
    /// traffic the per-shard membership filters screen), the remainder
    /// is [`ClientFocus::HotRegions`]-style range traffic over the same
    /// hot set. Probes repeat heavily across the fleet, so duplicate
    /// coalescing and filter screening both engage.
    PointHeavy {
        /// Number of distinct hot keys (and regions) in the fleet-wide
        /// set.
        points: usize,
        /// Probability that a query is an equality probe.
        point_prob: f64,
    },
}

/// One entry of a client's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedQuery {
    /// Open loop: offset of the arrival from stream start. Closed loop:
    /// think time to wait before submitting this query.
    pub at: Duration,
    /// The query itself.
    pub spec: QuerySpec,
}

/// Description of a multi-client traffic mix.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Queries each client submits.
    pub queries_per_client: usize,
    /// Attributes in the schema.
    pub n_attrs: usize,
    /// Value domain `[0, domain)`.
    pub domain: i64,
    /// Pacing model.
    pub arrival: ArrivalProcess,
    /// Data skew model.
    pub focus: ClientFocus,
    /// Window width for focused queries, as a fraction denominator of the
    /// domain (width = `domain / window_denom`).
    pub window_denom: i64,
    /// RNG seed; streams are deterministic per `(seed, client)`.
    pub seed: u64,
}

impl TrafficSpec {
    /// A zero-think closed-loop spec — maximum sustained pressure, the
    /// saturation scenario of the service harness.
    pub fn saturating(
        clients: usize,
        queries_per_client: usize,
        n_attrs: usize,
        domain: i64,
        seed: u64,
    ) -> Self {
        TrafficSpec {
            clients,
            queries_per_client,
            n_attrs,
            domain,
            arrival: ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            focus: ClientFocus::HotRegions {
                regions: 24,
                exact_prob: 0.5,
            },
            window_denom: 100,
            seed,
        }
    }

    /// The fleet-wide hot-window (or hot-region canonical-window) set for
    /// [`ClientFocus::HotWindows`] / [`ClientFocus::HotRegions`] — shared by
    /// all clients; depends only on the spec's seed and shape.
    pub fn hot_windows(&self) -> Vec<QuerySpec> {
        let n = match self.focus {
            ClientFocus::HotWindows { windows } => windows,
            ClientFocus::HotRegions { regions, .. } | ClientFocus::SpanningMix { regions, .. } => {
                regions
            }
            ClientFocus::PointHeavy { points, .. } => points,
            _ => return Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9077_F00D);
        let domain = self.domain.max(2);
        let width = (domain / self.window_denom.max(1)).max(1);
        (0..n.max(1))
            .map(|_| {
                let attr = rng.random_range(0..self.n_attrs.max(1));
                let lo = rng.random_range(0..(domain - width).max(1));
                QuerySpec {
                    attr,
                    lo,
                    hi: (lo + width).min(domain),
                }
            })
            .collect()
    }

    /// Client `c`'s deterministic stream.
    pub fn client_stream(&self, client: usize) -> Vec<TimedQuery> {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(client as u64),
        );
        let hot = self.hot_windows();
        // Harmonic normaliser for the Zipf draws, hoisted out of the
        // per-query loop (it only depends on the hot-set size).
        let harmonic = |n: usize| -> f64 { (1..=n.max(1)).map(|k| 1.0 / k as f64).sum() };
        let hot_h = match self.focus {
            ClientFocus::HotWindows { windows } => harmonic(windows),
            ClientFocus::HotRegions { regions, .. } | ClientFocus::SpanningMix { regions, .. } => {
                harmonic(regions)
            }
            ClientFocus::PointHeavy { points, .. } => harmonic(points),
            _ => 0.0,
        };
        let domain = self.domain.max(2);
        let width = (domain / self.window_denom.max(1)).max(1);
        let mut clock = Duration::ZERO;
        (0..self.queries_per_client)
            .map(|i| {
                let spec = match self.focus {
                    ClientFocus::Shared => {
                        let attr = rng.random_range(0..self.n_attrs.max(1));
                        let a = rng.random_range(0..domain);
                        let b = rng.random_range(0..domain);
                        QuerySpec {
                            attr,
                            lo: a.min(b),
                            hi: a.max(b).max(a.min(b) + 1),
                        }
                    }
                    ClientFocus::PerClientAttr => {
                        let attr = client % self.n_attrs.max(1);
                        let lo = rng.random_range(0..(domain - width).max(1));
                        QuerySpec {
                            attr,
                            lo,
                            hi: (lo + width).min(domain),
                        }
                    }
                    ClientFocus::HotWindows { windows } => {
                        // Zipf-like rank preference, rotated so client c's
                        // hottest window is window c mod |set|.
                        let n = windows.max(1);
                        let rank = zipf_rank(&mut rng, n, hot_h);
                        hot[(rank + client) % n]
                    }
                    ClientFocus::HotRegions {
                        regions,
                        exact_prob,
                    } => region_query(&mut rng, &hot, client, regions, exact_prob, hot_h, domain),
                    ClientFocus::SpanningMix {
                        regions,
                        exact_prob,
                        wide_prob,
                    } => {
                        if rng.random_range(0.0..1.0) < wide_prob {
                            // Wide spanning scan: at least half the domain
                            // at a fresh random offset — crosses every
                            // shard plan's cuts and never repeats exactly.
                            let width = domain / 2 + rng.random_range(0..(domain / 4).max(1));
                            let lo = rng.random_range(0..(domain - width).max(1));
                            QuerySpec {
                                attr: rng.random_range(0..self.n_attrs.max(1)),
                                lo,
                                hi: (lo + width).min(domain),
                            }
                        } else {
                            region_query(&mut rng, &hot, client, regions, exact_prob, hot_h, domain)
                        }
                    }
                    ClientFocus::PointHeavy { points, point_prob } => {
                        if rng.random_range(0.0..1.0) < point_prob {
                            // Equality probe on a Zipf-ranked hot key
                            // (the canonical window's low bound), lowered
                            // to the unit range the engine screens.
                            let n = points.max(1);
                            let rank = zipf_rank(&mut rng, n, hot_h);
                            let w = hot[(rank + client) % n];
                            QuerySpec {
                                attr: w.attr,
                                lo: w.lo,
                                hi: w.lo + 1,
                            }
                        } else {
                            region_query(&mut rng, &hot, client, points, 0.5, hot_h, domain)
                        }
                    }
                };
                let at = match self.arrival {
                    ArrivalProcess::Closed { think } => think,
                    ArrivalProcess::OpenUniform { qps } => {
                        clock += secs_f64(1.0 / qps.max(f64::MIN_POSITIVE));
                        clock
                    }
                    ArrivalProcess::OpenPoisson { qps } => {
                        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                        clock += secs_f64(-u.ln() / qps.max(f64::MIN_POSITIVE));
                        clock
                    }
                    ArrivalProcess::OpenBursty { qps, burst } => {
                        let burst = burst.max(1);
                        if i % burst == 0 && i > 0 {
                            clock += secs_f64(burst as f64 / qps.max(f64::MIN_POSITIVE));
                        }
                        clock
                    }
                };
                TimedQuery { at, spec }
            })
            .collect()
    }

    /// Every client's queries flattened (oracle precomputation).
    pub fn all_queries(&self) -> Vec<QuerySpec> {
        (0..self.clients)
            .flat_map(|c| self.client_stream(c).into_iter().map(|t| t.spec))
            .collect()
    }
}

/// One [`ClientFocus::HotRegions`]-style draw: a Zipf-ranked region,
/// repeated exactly with probability `exact_prob`, otherwise jittered
/// inside a region spanning a few window widths around the canonical
/// window.
fn region_query(
    rng: &mut StdRng,
    hot: &[QuerySpec],
    client: usize,
    regions: usize,
    exact_prob: f64,
    h: f64,
    domain: i64,
) -> QuerySpec {
    let n = regions.max(1);
    let rank = zipf_rank(rng, n, h);
    let canonical = hot[(rank + client) % n];
    if rng.random_range(0.0..1.0) < exact_prob {
        canonical
    } else {
        let span = (canonical.hi - canonical.lo).max(1);
        let base = (canonical.lo - span).max(0);
        let ceil = (canonical.hi + span).min(domain);
        let lo = rng.random_range(base..ceil.max(base + 1));
        let hi = rng.random_range(lo..ceil.max(lo + 1)).max(lo + 1);
        QuerySpec {
            attr: canonical.attr,
            lo,
            hi,
        }
    }
}

/// Draws a rank in `[0, n)` with probability ∝ `1/(rank+1)` (Zipf(1));
/// `h` is the precomputed harmonic sum `H(n)`.
fn zipf_rank(rng: &mut StdRng, n: usize, h: f64) -> usize {
    let target = rng.random_range(0.0..h);
    let mut acc = 0.0;
    for k in 0..n {
        acc += 1.0 / (k + 1) as f64;
        if target < acc {
            return k;
        }
    }
    n - 1
}

fn secs_f64(s: f64) -> Duration {
    Duration::from_secs_f64(s.clamp(0.0, 3600.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrival: ArrivalProcess, focus: ClientFocus) -> TrafficSpec {
        TrafficSpec {
            clients: 4,
            queries_per_client: 200,
            n_attrs: 3,
            domain: 1 << 20,
            arrival,
            focus,
            window_denom: 100,
            seed: 7,
        }
    }

    #[test]
    fn streams_are_deterministic_and_valid() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            ClientFocus::Shared,
        );
        assert_eq!(s.client_stream(2), s.client_stream(2));
        for c in 0..s.clients {
            let stream = s.client_stream(c);
            assert_eq!(stream.len(), 200);
            for t in &stream {
                assert!(t.spec.lo < t.spec.hi);
                assert!(t.spec.lo >= 0 && t.spec.hi <= 1 << 20);
                assert!(t.spec.attr < 3);
            }
        }
        assert_eq!(s.all_queries().len(), 800);
    }

    #[test]
    fn per_client_attr_pins_each_client_to_one_column() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            ClientFocus::PerClientAttr,
        );
        for c in 0..s.clients {
            let stream = s.client_stream(c);
            assert!(stream.iter().all(|t| t.spec.attr == c % 3), "client {c}");
        }
    }

    #[test]
    fn hot_windows_repeat_predicates_and_skew_per_client() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            ClientFocus::HotWindows { windows: 8 },
        );
        let hot = s.hot_windows();
        assert_eq!(hot.len(), 8);
        let stream = s.client_stream(0);
        // Every query is one of the hot windows.
        assert!(stream.iter().all(|t| hot.contains(&t.spec)));
        // With 200 draws over 8 windows, duplicates are guaranteed.
        let mut uniq: Vec<QuerySpec> = stream.iter().map(|t| t.spec).collect();
        uniq.sort_by_key(|q| (q.attr, q.lo, q.hi));
        uniq.dedup();
        assert!(uniq.len() <= 8);
        // Zipf rotation: client 0's modal window differs from client 1's.
        let modal = |c: usize| -> QuerySpec {
            let stream = s.client_stream(c);
            let mut best = (0usize, stream[0].spec);
            for w in &hot {
                let n = stream.iter().filter(|t| t.spec == *w).count();
                if n > best.0 {
                    best = (n, *w);
                }
            }
            best.1
        };
        assert_ne!(modal(0), modal(1));
    }

    #[test]
    fn hot_regions_mix_exact_repeats_and_jittered_variants() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            ClientFocus::HotRegions {
                regions: 8,
                exact_prob: 0.5,
            },
        );
        let hot = s.hot_windows();
        assert_eq!(hot.len(), 8);
        let stream = s.client_stream(0);
        let exact = stream.iter().filter(|t| hot.contains(&t.spec)).count();
        // ~half exact repeats (loose band over 200 draws).
        assert!((60..=140).contains(&exact), "exact repeats: {exact}");
        // Jittered variants stay inside their region's attr set and domain.
        for t in &stream {
            assert!(t.spec.lo < t.spec.hi);
            assert!(t.spec.lo >= 0 && t.spec.hi <= s.domain);
            assert!(hot.iter().any(|w| w.attr == t.spec.attr));
        }
        // Jitter keeps queries near some canonical region.
        let span = (s.domain / s.window_denom).max(1) * 3;
        for t in &stream {
            assert!(
                hot.iter()
                    .any(|w| w.attr == t.spec.attr && (t.spec.lo - w.lo).abs() <= span),
                "{:?} far from every region",
                t.spec
            );
        }
    }

    #[test]
    fn spanning_mix_interleaves_wide_scans_with_hot_regions() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            ClientFocus::SpanningMix {
                regions: 8,
                exact_prob: 0.6,
                wide_prob: 0.25,
            },
        );
        let stream = s.client_stream(0);
        let wide: Vec<_> = stream
            .iter()
            .filter(|t| t.spec.hi - t.spec.lo >= s.domain / 2)
            .collect();
        // ~a quarter wide scans (loose band over 200 draws).
        assert!(
            (20..=90).contains(&wide.len()),
            "wide scans: {}",
            wide.len()
        );
        // Wide scans are fresh (distinct offsets), valid, and at least
        // half-domain — guaranteed to cross any equi-depth shard plan.
        let mut lows: Vec<i64> = wide.iter().map(|t| t.spec.lo).collect();
        lows.sort_unstable();
        lows.dedup();
        assert!(lows.len() > wide.len() / 2, "wide scans repeat too much");
        for t in &stream {
            assert!(t.spec.lo < t.spec.hi);
            assert!(t.spec.lo >= 0 && t.spec.hi <= s.domain);
        }
        // The narrow remainder still repeats hot windows (cheap traffic).
        let hot = s.hot_windows();
        let exact = stream.iter().filter(|t| hot.contains(&t.spec)).count();
        assert!(exact > 40, "exact hot repeats: {exact}");
    }

    #[test]
    fn point_heavy_mixes_repeated_unit_probes_with_ranges() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::ZERO,
            },
            ClientFocus::PointHeavy {
                points: 8,
                point_prob: 0.6,
            },
        );
        let hot = s.hot_windows();
        assert_eq!(hot.len(), 8);
        let stream = s.client_stream(0);
        let probes: Vec<_> = stream
            .iter()
            .filter(|t| t.spec.hi == t.spec.lo + 1)
            .collect();
        // ~60% equality probes (loose band over 200 draws).
        assert!(
            (80..=160).contains(&probes.len()),
            "probes: {}",
            probes.len()
        );
        // Every probe hits one of the 8 hot keys, so duplicates abound.
        for t in &probes {
            assert!(
                hot.iter()
                    .any(|w| w.attr == t.spec.attr && w.lo == t.spec.lo),
                "{:?} not a hot key",
                t.spec
            );
        }
        let mut uniq: Vec<QuerySpec> = probes.iter().map(|t| t.spec).collect();
        uniq.sort_by_key(|q| (q.attr, q.lo));
        uniq.dedup();
        assert!(uniq.len() <= 8);
        // The range remainder is valid HotRegions-style traffic.
        for t in &stream {
            assert!(t.spec.lo < t.spec.hi);
            assert!(t.spec.lo >= 0 && t.spec.hi <= s.domain);
        }
    }

    #[test]
    fn open_uniform_spacing_is_monotone_and_even() {
        let s = spec(
            ArrivalProcess::OpenUniform { qps: 100.0 },
            ClientFocus::Shared,
        );
        let stream = s.client_stream(0);
        for w in stream.windows(2) {
            let gap = w[1].at - w[0].at;
            assert_eq!(gap, Duration::from_millis(10));
        }
    }

    #[test]
    fn open_poisson_arrivals_are_monotone_with_right_mean() {
        let s = spec(
            ArrivalProcess::OpenPoisson { qps: 1000.0 },
            ClientFocus::Shared,
        );
        let stream = s.client_stream(1);
        for w in stream.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        let total = stream.last().unwrap().at.as_secs_f64();
        let mean_gap = total / stream.len() as f64;
        // 200 exponential draws at 1 ms mean: loose 3x band.
        assert!((0.0003..0.003).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn open_bursty_groups_arrivals() {
        let s = spec(
            ArrivalProcess::OpenBursty {
                qps: 100.0,
                burst: 10,
            },
            ClientFocus::Shared,
        );
        let stream = s.client_stream(0);
        // Queries inside one burst share a timestamp; bursts are spaced.
        assert_eq!(stream[0].at, stream[9].at);
        assert!(stream[10].at > stream[9].at);
        assert_eq!(stream[10].at, stream[19].at);
    }

    #[test]
    fn closed_loop_carries_think_time() {
        let s = spec(
            ArrivalProcess::Closed {
                think: Duration::from_millis(5),
            },
            ClientFocus::Shared,
        );
        assert!(s
            .client_stream(0)
            .iter()
            .all(|t| t.at == Duration::from_millis(5)));
    }
}
