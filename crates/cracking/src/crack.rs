//! In-place crack kernels: partition a piece of a cracker column around one
//! or two pivots, permuting values and row ids in lockstep.
//!
//! `crack_in_two` is the classic Hoare-style swap loop from the original
//! database-cracking paper; `crack_in_three` handles the case where both
//! bounds of a range query fall into the same piece, saving a second pass.

use holix_storage::types::{CrackValue, RowId};

/// Which partition kernel a column uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrackKernel {
    /// Branching, in-place swap loop (original cracking).
    Branchy,
    /// Branch-free, out-of-place "vectorized" kernel from [44]
    /// (see [`crate::vectorized`]); the CPU-efficient choice.
    #[default]
    Vectorized,
}

/// Partitions `vals` (with `rows` permuted identically) so that everything
/// `< pivot` precedes everything `>= pivot`. Returns the split point: the
/// number of elements `< pivot`.
pub fn crack_in_two<V: CrackValue>(vals: &mut [V], rows: &mut [RowId], pivot: V) -> usize {
    debug_assert_eq!(vals.len(), rows.len());
    let mut i = 0usize;
    let mut j = vals.len();
    while i < j {
        if vals[i] < pivot {
            i += 1;
        } else {
            j -= 1;
            vals.swap(i, j);
            rows.swap(i, j);
        }
    }
    i
}

/// Partitions `vals`/`rows` into three regions `[< lo | lo <= v < hi | >= hi]`
/// in one pass (Dutch-national-flag). Returns `(a, b)` such that the middle
/// (qualifying) region is `vals[a..b]`. Requires `lo <= hi`.
pub fn crack_in_three<V: CrackValue>(
    vals: &mut [V],
    rows: &mut [RowId],
    lo: V,
    hi: V,
) -> (usize, usize) {
    debug_assert_eq!(vals.len(), rows.len());
    debug_assert!(lo <= hi);
    let mut lt = 0usize;
    let mut gt = vals.len();
    let mut i = 0usize;
    while i < gt {
        if vals[i] < lo {
            vals.swap(i, lt);
            rows.swap(i, lt);
            lt += 1;
            i += 1;
        } else if vals[i] >= hi {
            gt -= 1;
            vals.swap(i, gt);
            rows.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// Checks the two-way partition invariant (test/debug helper).
pub fn is_partitioned<V: CrackValue>(vals: &[V], split: usize, pivot: V) -> bool {
    vals[..split].iter().all(|&v| v < pivot) && vals[split..].iter().all(|&v| v >= pivot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn aligned(vals: &[i64], rows: &[RowId], base: &[i64]) -> bool {
        vals.iter().zip(rows).all(|(&v, &r)| base[r as usize] == v)
    }

    #[test]
    fn crack_in_two_basic() {
        let base = vec![5i64, 1, 9, 3, 7, 3];
        let mut vals = base.clone();
        let mut rows: Vec<RowId> = (0..6).collect();
        let split = crack_in_two(&mut vals, &mut rows, 5);
        assert_eq!(split, 3);
        assert!(is_partitioned(&vals, split, 5));
        assert!(aligned(&vals, &rows, &base));
    }

    #[test]
    fn crack_in_two_extremes() {
        let mut vals = vec![1i64, 2, 3];
        let mut rows = vec![0, 1, 2];
        assert_eq!(crack_in_two(&mut vals, &mut rows, 0), 0);
        assert_eq!(crack_in_two(&mut vals, &mut rows, 100), 3);
        let mut empty: Vec<i64> = vec![];
        let mut erows: Vec<RowId> = vec![];
        assert_eq!(crack_in_two(&mut empty, &mut erows, 5), 0);
    }

    #[test]
    fn crack_in_three_basic() {
        let base = vec![8i64, 2, 5, 1, 9, 5, 4];
        let mut vals = base.clone();
        let mut rows: Vec<RowId> = (0..7).collect();
        let (a, b) = crack_in_three(&mut vals, &mut rows, 4, 8);
        assert!(vals[..a].iter().all(|&v| v < 4));
        assert!(vals[a..b].iter().all(|&v| (4..8).contains(&v)));
        assert!(vals[b..].iter().all(|&v| v >= 8));
        assert_eq!(b - a, 3); // 5, 5, 4
        assert!(aligned(&vals, &rows, &base));
    }

    #[test]
    fn crack_in_three_equal_bounds_degenerates_to_two() {
        let base = vec![3i64, 7, 1, 7, 0];
        let mut vals = base.clone();
        let mut rows: Vec<RowId> = (0..5).collect();
        let (a, b) = crack_in_three(&mut vals, &mut rows, 5, 5);
        assert_eq!(a, b);
        assert!(is_partitioned(&vals, a, 5));
    }

    proptest! {
        #[test]
        fn prop_crack_in_two_preserves_multiset(
            base in proptest::collection::vec(-50i64..50, 0..200),
            pivot in -60i64..60,
        ) {
            let mut vals = base.clone();
            let mut rows: Vec<RowId> = (0..base.len() as u32).collect();
            let split = crack_in_two(&mut vals, &mut rows, pivot);
            prop_assert!(is_partitioned(&vals, split, pivot));
            prop_assert!(aligned(&vals, &rows, &base));
            let mut sorted_in = base.clone();
            let mut sorted_out = vals.clone();
            sorted_in.sort_unstable();
            sorted_out.sort_unstable();
            prop_assert_eq!(sorted_in, sorted_out);
        }

        #[test]
        fn prop_crack_in_three_regions(
            base in proptest::collection::vec(-50i64..50, 0..200),
            p1 in -60i64..60,
            p2 in -60i64..60,
        ) {
            let (lo, hi) = (p1.min(p2), p1.max(p2));
            let mut vals = base.clone();
            let mut rows: Vec<RowId> = (0..base.len() as u32).collect();
            let (a, b) = crack_in_three(&mut vals, &mut rows, lo, hi);
            prop_assert!(a <= b && b <= vals.len());
            prop_assert!(vals[..a].iter().all(|&v| v < lo));
            prop_assert!(vals[a..b].iter().all(|&v| lo <= v && v < hi));
            prop_assert!(vals[b..].iter().all(|&v| v >= hi));
            prop_assert!(aligned(&vals, &rows, &base));
        }
    }
}
