//! # holix-storage — main-memory column-store substrate
//!
//! This crate is the MonetDB stand-in for the holistic-indexing reproduction:
//! a minimal but complete main-memory column-store kernel following the
//! Decomposition Storage Model. Relational tables are vertically fragmented
//! into dense, fixed-width arrays ([`Column`]); values of one tuple share the
//! same position across all columns, which enables late tuple reconstruction
//! through positional [`project`] operators.
//!
//! Operators are implemented in an array-processing, bulk style with tight
//! loops over slices:
//!
//! - [`select`] / [`pscan`] — (parallel) range selection over a column,
//! - [`project`] — positional gather for late tuple reconstruction,
//! - [`aggregate`] — scalar and grouped aggregation,
//! - [`join`] — hash join on integer keys,
//! - [`sort`] / [`psort`] — (parallel) order-preserving sort with row ids,
//!   plus binary-search selection over sorted columns (the "full indexing"
//!   baseline of the paper).
//!
//! The adaptive-indexing crates build on these primitives; nothing in this
//! crate knows about cracking or holistic tuning.

pub mod aggregate;
pub mod column;
pub mod error;
pub mod hash;
pub mod join;
pub mod predicate;
pub mod project;
pub mod pscan;
pub mod psort;
pub mod select;
pub mod sort;
pub mod table;
pub mod types;

pub use column::Column;
pub use error::StorageError;
pub use predicate::ValuePredicate;
pub use select::{Predicate, RangeStats};
pub use sort::SortedColumn;
pub use table::{AnyColumn, Table};
pub use types::{CrackValue, RowId};
