//! The IdleFunction a holistic worker executes (Fig 2 of the paper).
//!
//! "Each worker thread executes an instance of the IdleFunction, which picks
//! an index from the Index Space IS and performs x partial index refinement
//! actions on it. Every time an index is refined, the respective statistics
//! […] are updated. When an index reaches the optimal status, it is moved
//! into the optimal configuration."

use crate::handle::RefineResult;
use crate::index_space::{IndexSpace, Membership};
use rand::RngCore;
use std::time::{Duration, Instant};

/// What one worker activation accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Successful piece splits.
    pub refinements: u64,
    /// Attempts that found every tried piece latched.
    pub busy: u64,
    /// Pivots that already were boundaries.
    pub already_bound: u64,
    /// Stale snapshot pieces refreshed to live granularity in the
    /// background (snapshot follow-up (b)).
    pub snapshot_refreshes: u64,
    /// Point membership filters rebuilt after delete churn degraded
    /// their false-positive rate.
    pub filter_rebuilds: u64,
    /// Stable plain snapshot pieces re-encoded (FOR / delta / RLE) in the
    /// background to shrink `snapshot_bytes`.
    pub segment_morphs: u64,
    /// Wall time spent in the IdleFunction.
    pub duration: Duration,
    /// Whether an index was available to work on.
    pub picked: bool,
}

/// Charged-bytes fraction of the storage budget above which segment
/// morphing retargets the imminent-eviction indices (ROADMAP compression
/// follow-up (d)).
const BUDGET_PRESSURE_MORPH: f64 = 0.9;

/// How many LFU eviction candidates a pressured activation tries to morph
/// (stops at the first success — one encode per activation, like the
/// unpressured path).
const EVICTION_MORPH_CANDIDATES: usize = 2;

/// Runs one IdleFunction instance: pick an index, refine it `x` times with
/// random pivots, update statistics, stop early once it turns optimal.
pub fn idle_function(
    space: &IndexSpace,
    refinements_per_worker: usize,
    latch_attempts: usize,
    rng: &mut dyn RngCore,
) -> WorkerReport {
    let start = Instant::now();
    let mut report = WorkerReport::default();

    let Some((id, handle)) = space.pick(rng) else {
        report.duration = start.elapsed();
        return report;
    };
    report.picked = true;

    for _ in 0..refinements_per_worker {
        let result = handle.refine_random(rng, latch_attempts);
        space.record_worker_outcome(id, result);
        match result {
            RefineResult::Refined { .. } => report.refinements += 1,
            RefineResult::Busy => report.busy += 1,
            RefineResult::AlreadyBound => report.already_bound += 1,
        }
        if space.membership(id) == Some(Membership::Optimal) {
            break;
        }
    }
    // End-of-activation maintenance: refresh one stale snapshot piece (so
    // the first unlucky reader stops paying the copy), rebuild the point
    // membership filter if delete churn degraded it, re-encode one stable
    // plain snapshot piece, and republish the plan-time statistics the
    // refinements invalidated.
    let refreshed = handle.refresh_snapshot();
    if refreshed {
        report.snapshot_refreshes += 1;
    }
    if handle.maybe_rebuild_filter() {
        report.filter_rebuilds += 1;
    }
    // Segment morphing is budget-pressure-aware: near the storage budget
    // the coldest indices are about to be evicted, and shrinking *their*
    // footprint (not the picked — usually hottest — index's) is what can
    // still save them, so the morph retargets the LFU eviction order and
    // skips the usual every-Nth-activation pacing. Below the threshold it
    // stays the picked handle's paced coldness-order morph.
    if space.budget_pressure() >= BUDGET_PRESSURE_MORPH {
        for (_, victim) in space.eviction_candidates(EVICTION_MORPH_CANDIDATES) {
            if victim.morph_cold_segments_now() {
                report.segment_morphs += 1;
                break;
            }
        }
    } else if !refreshed && handle.morph_cold_segments() {
        // One snapshot reorganisation per activation: a refresh already
        // lands its copies in encoded form (so nothing it produced is
        // waiting on the morpher), and refresh + morph in the same tick
        // would pay two full sort+encode passes — during heavy refinement
        // that doubles the cycle wall time for pieces the next crack will
        // split again anyway. Morphing waits for a granularity-quiet tick.
        report.segment_morphs += 1;
    }
    handle.publish_plan_stats();
    report.duration = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HolisticConfig;
    use crate::handle::CrackerHandle;
    use holix_cracking::CrackerColumn;
    use rand::prelude::*;
    use std::sync::Arc;

    fn space_with_column(n: usize) -> IndexSpace {
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..n as i64).rev().collect();
        let handle = Arc::new(CrackerHandle::new(Arc::new(CrackerColumn::from_base(
            "a", &base,
        ))));
        space.register_actual(handle);
        space
    }

    #[test]
    fn empty_space_reports_nothing_picked() {
        let space = IndexSpace::new(HolisticConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let r = idle_function(&space, 16, 8, &mut rng);
        assert!(!r.picked);
        assert_eq!(r.refinements, 0);
    }

    #[test]
    fn performs_x_refinements() {
        let space = space_with_column(100_000);
        let mut rng = StdRng::seed_from_u64(2);
        let r = idle_function(&space, 16, 8, &mut rng);
        assert!(r.picked);
        // On an unlatched fresh column almost every pivot splits a piece.
        assert!(r.refinements + r.already_bound == 16, "{r:?}");
        assert!(r.refinements >= 12);
    }

    #[test]
    fn stops_at_optimal() {
        // Column small enough that a handful of cracks reaches |L1| pieces.
        let space = space_with_column(8_192);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0;
        for _ in 0..50 {
            let r = idle_function(&space, 16, 8, &mut rng);
            total += r.refinements;
            if !r.picked {
                break;
            }
        }
        // 8192 i64 values: optimal at avg piece ≤ 4096 values → 1 split.
        assert!(total >= 1);
        let (_, _, optimal, _) = space.membership_counts();
        assert_eq!(optimal, 1);
        // Once optimal, nothing remains pickable.
        let r = idle_function(&space, 16, 8, &mut rng);
        assert!(!r.picked);
    }

    #[test]
    fn idle_function_refreshes_stale_snapshots() {
        // A coarse published snapshot over a column the workers keep
        // cracking finer: end-of-activation maintenance must refresh the
        // snapshot's piece table in the background, so the first reader
        // stops paying the copy.
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..100_000i64).rev().collect();
        let col = std::sync::Arc::new(CrackerColumn::from_base("a", &base));
        let mut scratch = holix_cracking::CrackScratch::new();
        col.snapshot_scan(
            holix_storage::select::Predicate::range(0, 100_000),
            &mut scratch,
        );
        let coarse = col.snapshot_piece_count();
        space.register_actual(Arc::new(CrackerHandle::new(Arc::clone(&col))));
        let mut rng = StdRng::seed_from_u64(9);
        let mut refreshes = 0;
        for _ in 0..50 {
            let r = idle_function(&space, 8, 8, &mut rng);
            refreshes += r.snapshot_refreshes;
            if !r.picked {
                break;
            }
        }
        assert!(refreshes > 0, "workers never refreshed the snapshot");
        assert!(
            col.snapshot_piece_count() > coarse,
            "snapshot piece table did not chase the refinements \
             ({} vs coarse {coarse})",
            col.snapshot_piece_count()
        );
    }

    #[test]
    fn idle_function_rebuilds_a_churned_point_filter() {
        // A published point filter over a column that then absorbs heavy
        // delete churn: end-of-activation maintenance must rebuild the
        // filter (deleted keys never leave a Bloom filter) and reset the
        // churn accounting.
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..100_000i64).rev().collect();
        let col = Arc::new(CrackerColumn::from_base("a", &base));
        col.ensure_point_filter();
        for v in 0..30_000i64 {
            col.queue_delete(v, v as u32);
        }
        assert!(col.point_filter_staleness() >= 30_000);
        space.register_actual(Arc::new(CrackerHandle::new(Arc::clone(&col))));
        let mut rng = StdRng::seed_from_u64(11);
        let mut rebuilds = 0;
        for _ in 0..50 {
            let r = idle_function(&space, 8, 8, &mut rng);
            rebuilds += r.filter_rebuilds;
            if !r.picked {
                break;
            }
        }
        assert!(rebuilds > 0, "workers never rebuilt the churned filter");
        assert_eq!(
            col.point_filter_staleness(),
            0,
            "rebuild did not reset the churn accounting"
        );
        // The fresh filter still proves absence for never-inserted values.
        assert_eq!(col.probe_point(-5), Some(false));
    }

    #[test]
    fn idle_function_morphs_cold_segments() {
        // A snapshot full of big plain pieces over a narrow domain: idle
        // workers must re-encode them in the background, shrinking
        // `snapshot_bytes` without any reader paying for it.
        let space = IndexSpace::new(HolisticConfig::default());
        let base: Vec<i64> = (0..100_000i64).map(|i| i % 1_000).collect();
        let col = Arc::new(CrackerColumn::from_base("a", &base));
        let mut scratch = holix_cracking::CrackScratch::new();
        col.snapshot_scan(
            holix_storage::select::Predicate::range(0, 1_000),
            &mut scratch,
        );
        let plain_bytes = col.snapshot_bytes();
        space.register_actual(Arc::new(CrackerHandle::new(Arc::clone(&col))));
        let mut rng = StdRng::seed_from_u64(13);
        let mut morphs = 0;
        for _ in 0..200 {
            let r = idle_function(&space, 8, 8, &mut rng);
            morphs += r.segment_morphs;
            // Run to convergence: snapshot refreshes now land their copies
            // back in *encoded* form (encoded refresh), so later
            // activations can no longer re-plain what the gated morphs
            // encoded — the byte win must survive the whole loop.
            if !r.picked {
                break;
            }
        }
        assert!(morphs > 0, "workers never morphed a segment");
        col.snapshot_gc();
        assert!(
            col.snapshot_bytes() < plain_bytes,
            "morphing did not shrink snapshot bytes: {} vs {plain_bytes}",
            col.snapshot_bytes()
        );
        // Scans on the morphed snapshot stay exact.
        let pred = holix_storage::select::Predicate::range(100, 900);
        let scan = col.snapshot_scan(pred, &mut scratch);
        let oracle = holix_storage::select::scan_stats(&base, pred);
        assert_eq!((scan.count, scan.sum), (oracle.count, oracle.sum));
    }

    #[test]
    fn budget_pressure_morphs_imminent_eviction_victims_first() {
        // Two equal columns over a narrow domain with big plain snapshot
        // pieces. The HOT one soaks up user queries (so `pick` targets it
        // and the COLD one is the LFU eviction victim); the budget is
        // sized so the pair sits at ~95% pressure. The maintenance block
        // must morph the COLD column immediately — eviction order, no
        // activation pacing — even though it never picked it.
        let base: Vec<i64> = (0..60_000i64).map(|i| i % 1_000).collect();
        let cold = Arc::new(CrackerColumn::from_base("cold", &base));
        let hot = Arc::new(CrackerColumn::from_base("hot", &base));
        let mut scratch = holix_cracking::CrackScratch::new();
        for col in [&cold, &hot] {
            col.snapshot_scan(
                holix_storage::select::Predicate::range(0, 1_000),
                &mut scratch,
            );
        }
        let cold_handle = Arc::new(CrackerHandle::new(Arc::clone(&cold)));
        let hot_handle = Arc::new(CrackerHandle::new(Arc::clone(&hot)));
        use crate::handle::RefinableIndex;
        let used = cold_handle.payload_bytes() + hot_handle.payload_bytes();
        let space = IndexSpace::new(HolisticConfig {
            storage_budget: Some(used * 100 / 95),
            ..HolisticConfig::default()
        });
        space.register_actual(cold_handle);
        let (hot_id, _) = space.register_actual(hot_handle);
        for _ in 0..10 {
            space.record_user_query(hot_id, false, 1);
        }
        let pressure = space.budget_pressure();
        assert!(pressure >= 0.9, "setup not under pressure: {pressure}");
        let cold_bytes = cold.snapshot_bytes();
        let mut rng = StdRng::seed_from_u64(17);
        let mut morphs = 0;
        for _ in 0..20 {
            let r = idle_function(&space, 4, 8, &mut rng);
            morphs += r.segment_morphs;
            if morphs > 0 || !r.picked {
                break;
            }
        }
        assert!(morphs > 0, "pressure never forced a morph");
        cold.snapshot_gc();
        assert!(
            cold.snapshot_bytes() < cold_bytes,
            "the eviction victim was not the morph target: {} vs {cold_bytes}",
            cold.snapshot_bytes()
        );
    }

    #[test]
    fn stats_recorded_per_outcome() {
        let space = space_with_column(100_000);
        let mut rng = StdRng::seed_from_u64(4);
        idle_function(&space, 8, 8, &mut rng);
        let id = space.live_ids()[0];
        let (_, stats) = space.get(id).unwrap();
        assert!(stats.worker_refinements() > 0);
        assert_eq!(stats.queries(), 0);
    }
}
