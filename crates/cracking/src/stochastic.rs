//! Stochastic cracking ([21], used as the PVSDC baseline in §5.2–5.3).
//!
//! Plain cracking is driven purely by query predicates, which leaves large
//! unindexed pieces under skewed or sequential workloads. Stochastic cracking
//! injects, for each user query, **one auxiliary random crack inside the
//! piece the query is about to crack** — enough extra order to stay robust
//! without the holistic machinery. (The paper contrasts this with holistic
//! indexing, whose random refinements span the whole domain and keep running
//! when no queries arrive.)

use crate::column::{CrackerColumn, Selection};
use crate::index::BoundLookup;
use crate::vectorized::CrackScratch;
use holix_storage::select::Predicate;
use holix_storage::types::CrackValue;
use rand::Rng;

/// Range select with one auxiliary random crack per touched bound, confined
/// to the piece that bound is about to crack (the DDC/MDD1R-style behaviour
/// described in the paper).
pub fn select_stochastic<V: CrackValue>(
    col: &CrackerColumn<V>,
    pred: Predicate<V>,
    rng: &mut impl Rng,
    scratch: &mut CrackScratch<V>,
) -> Selection {
    if !pred.is_empty() {
        random_crack_within_piece_of(col, pred.lo, rng, scratch);
        random_crack_within_piece_of(col, pred.hi, rng, scratch);
    }
    col.select(pred, scratch)
}

/// If `bound` falls inside a piece (not already a boundary), cracks that
/// piece once at a uniformly drawn pivot *within the piece's value range*.
fn random_crack_within_piece_of<V: CrackValue>(
    col: &CrackerColumn<V>,
    bound: V,
    rng: &mut impl Rng,
    scratch: &mut CrackScratch<V>,
) {
    if bound == V::MIN_VALUE || bound == V::MAX_VALUE {
        return;
    }
    let (lo_key, hi_key) = match col.locate_for_stochastic(bound) {
        BoundLookup::Exact(_) => return,
        BoundLookup::Piece { lo_key, hi_key, .. } => (lo_key, hi_key),
    };
    // The piece holds values in [lo_key, hi_key); fall back to the column
    // domain for the outermost pieces.
    let (dom_lo, dom_hi) = match col.domain() {
        Some(d) => d,
        None => return,
    };
    let lo = lo_key.unwrap_or(dom_lo);
    let hi = hi_key.unwrap_or(dom_hi);
    if lo >= hi {
        return;
    }
    let pivot = V::from_i64(rng.random_range(lo.as_i64()..hi.as_i64()));
    // Blocking refinement: this runs inside the user query, as in [21].
    col.refine_at_blocking(pivot, scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use holix_storage::select::scan_stats;
    use rand::prelude::*;

    #[test]
    fn stochastic_select_is_correct() {
        let mut rng = StdRng::seed_from_u64(21);
        let base: Vec<i64> = (0..20_000).map(|_| rng.random_range(0..10_000)).collect();
        let col = CrackerColumn::from_base("a", &base);
        let mut scratch = CrackScratch::new();
        for _ in 0..50 {
            let a = rng.random_range(0..10_000);
            let b = rng.random_range(0..10_000);
            let pred = Predicate::range(a.min(b), a.max(b));
            let sel = select_stochastic(&col, pred, &mut rng, &mut scratch);
            assert_eq!(sel.count(), scan_stats(&base, pred).count);
        }
        col.check_invariants(Some(&base));
    }

    #[test]
    fn stochastic_creates_more_pieces_than_plain() {
        let mut rng = StdRng::seed_from_u64(22);
        let base: Vec<i64> = (0..50_000).map(|_| rng.random_range(0..100_000)).collect();

        // Sequential workload: the adversarial case for plain cracking.
        let preds: Vec<Predicate<i64>> = (0..50)
            .map(|i| Predicate::range(i * 1_000, i * 1_000 + 500))
            .collect();

        let plain = CrackerColumn::from_base("p", &base);
        let mut scratch = CrackScratch::new();
        for &p in &preds {
            plain.select(p, &mut scratch);
        }

        let stoch = CrackerColumn::from_base("s", &base);
        for &p in &preds {
            select_stochastic(&stoch, p, &mut rng, &mut scratch);
        }

        assert!(
            stoch.piece_count() > plain.piece_count(),
            "stochastic {} <= plain {}",
            stoch.piece_count(),
            plain.piece_count()
        );
    }

    #[test]
    fn exact_bounds_skip_random_crack() {
        let mut rng = StdRng::seed_from_u64(23);
        let base: Vec<i64> = (0..5_000).map(|_| rng.random_range(0..1_000)).collect();
        let col = CrackerColumn::from_base("a", &base);
        let mut scratch = CrackScratch::new();
        let pred = Predicate::range(200, 700);
        select_stochastic(&col, pred, &mut rng, &mut scratch);
        let pieces_after_first = col.piece_count();
        // Re-running the same query: bounds are exact hits, no random cracks.
        select_stochastic(&col, pred, &mut rng, &mut scratch);
        assert_eq!(col.piece_count(), pieces_after_first);
    }
}
