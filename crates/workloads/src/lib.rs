//! # holix-workloads — data and query generators for the evaluation
//!
//! Everything §5 of the paper runs on:
//!
//! - [`data`] — uniformly distributed integer columns and multi-attribute
//!   tables (the synthetic microbenchmark data).
//! - [`patterns`] — the query patterns of Fig 10(a)–(d): Random, Skewed,
//!   Periodic, Sequential, plus attribute-selection distributions for the
//!   schema experiments of §5.4.
//! - [`skyserver`] — a synthetic trace reproducing the SkyServer access
//!   shape of Fig 10(e): exploration dwells on one region of the sky, then
//!   jumps (substitution documented in DESIGN.md).
//! - [`tpch`] — an SF-parameterised generator for the `lineitem`/`orders`
//!   columns touched by TPC-H Q1, Q6 and Q12, plus the random query-variant
//!   generators of §5.6.
//! - [`updates`] — the HFLV/LFHV mixed read/write streams of §5.7.
//! - [`traffic`] — multi-client traffic mixes for the service layer:
//!   open-/closed-loop arrival processes and per-client skew (§5.8 scaled
//!   to many sessions).

pub mod data;
pub mod patterns;
pub mod skyserver;
pub mod tpch;
pub mod traffic;
pub mod updates;

pub use patterns::{AttrDist, Pattern, QuerySpec, WorkloadSpec};
pub use traffic::{ArrivalProcess, ClientFocus, TimedQuery, TrafficSpec};
