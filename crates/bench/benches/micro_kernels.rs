//! Criterion micro-benchmarks — ablations for the design decisions in
//! DESIGN.md §2: crack kernels (branchy vs vectorized out-of-place vs
//! parallel), AVL vs `BTreeMap` cracker-index lookups, weight-heap updates,
//! and Ripple insertion vs naive re-cracking.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use holix_core::weight_heap::WeightHeap;
use holix_cracking::avl::Avl;
use holix_cracking::crack::crack_in_two;
use holix_cracking::index::CrackerIndex;
use holix_cracking::kernels::{self, pack_bits, ScalarUnpacker};
use holix_cracking::updates::ripple_insert;
use holix_cracking::vectorized::{crack_in_three_oop, crack_in_two_oop, CrackScratch};
use holix_parallel::{concentric_partition, parallel_partition};
use rand::prelude::*;
use std::collections::BTreeMap;
use std::hint::black_box;

const N: usize = 1 << 17;

fn data(seed: u64) -> (Vec<i64>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let vals: Vec<i64> = (0..N).map(|_| rng.random_range(0..1_000_000)).collect();
    let rows: Vec<u32> = (0..N as u32).collect();
    (vals, rows)
}

fn bench_crack_kernels(c: &mut Criterion) {
    let (vals, rows) = data(1);
    let mut g = c.benchmark_group("crack_kernels");
    g.sample_size(10);

    g.bench_function("branchy", |b| {
        b.iter_batched(
            || (vals.clone(), rows.clone()),
            |(mut v, mut r)| black_box(crack_in_two(&mut v, &mut r, 500_000)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("vectorized_oop", |b| {
        let mut scratch = CrackScratch::new();
        b.iter_batched(
            || (vals.clone(), rows.clone()),
            |(mut v, mut r)| black_box(crack_in_two_oop(&mut v, &mut r, 500_000, &mut scratch)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("vectorized_three_oop", |b| {
        // Both bounds in one piece (the fresh-column fast path): the kernel
        // partitions into [< lo | lo..hi | >= hi] in a single call.
        let mut scratch = CrackScratch::new();
        b.iter_batched(
            || (vals.clone(), rows.clone()),
            |(mut v, mut r)| {
                black_box(crack_in_three_oop(
                    &mut v,
                    &mut r,
                    250_000,
                    750_000,
                    &mut scratch,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    for t in [2usize, 4] {
        g.bench_function(format!("parallel_x{t}"), |b| {
            b.iter_batched(
                || (vals.clone(), rows.clone()),
                |(mut v, mut r)| black_box(parallel_partition(&mut v, &mut r, 500_000, t)),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("concentric_x{t}"), |b| {
            b.iter_batched(
                || (vals.clone(), rows.clone()),
                |(mut v, mut r)| black_box(concentric_partition(&mut v, &mut r, 500_000, t)),
                BatchSize::LargeInput,
            )
        });
    }

    // Segment-decode ablation: the scalar shift/mask `Unpacker` walk the
    // snapshot edge scans used through PR 8, against the block-at-a-time
    // kernels (with AVX2 under runtime dispatch) that replaced it.
    const BITS: u32 = 20;
    let mut rng = StdRng::seed_from_u64(5);
    let mut offs: Vec<u64> = (0..N).map(|_| rng.random_range(0..1u64 << BITS)).collect();
    let packed_unsorted = pack_bits(offs.iter().copied(), N, BITS);
    offs.sort_unstable();
    let packed = pack_bits(offs.iter().copied(), N, BITS);
    g.bench_function("unpack_scalar", |b| {
        b.iter(|| {
            let mut un = ScalarUnpacker::new(&packed_unsorted, BITS);
            let mut acc = 0u64;
            for _ in 0..N {
                acc = acc.wrapping_add(un.next());
            }
            black_box(acc)
        })
    });
    g.bench_function("unpack_block", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            kernels::decode_range(&packed_unsorted, BITS, N, 0, N, |v| {
                acc = acc.wrapping_add(v);
            });
            black_box(acc)
        })
    });
    // Middle half of the sorted offset domain qualifies — the scalar
    // baseline is the PR 8 scan loop (walk from 0, early exit past hi).
    let (lo, hi) = (Some(1u64 << (BITS - 2)), Some(3u64 << (BITS - 2)));
    g.bench_function("filter_scalar", |b| {
        b.iter(|| {
            let mut un = ScalarUnpacker::new(&packed, BITS);
            let mut count = 0u64;
            let mut sum = 0u128;
            for _ in 0..N {
                let v = un.next();
                if hi.is_some_and(|h| v >= h) {
                    break;
                }
                if lo.is_none_or(|l| v >= l) {
                    count += 1;
                    sum += v as u128;
                }
            }
            black_box((count, sum))
        })
    });
    g.bench_function("filter_packed", |b| {
        b.iter(|| black_box(kernels::filter_count_sorted(&packed, BITS, N, 0, N, lo, hi)))
    });
    g.finish();
}

fn bench_cracker_index(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let keys: Vec<i64> = (0..10_000)
        .map(|_| rng.random_range(0..1_000_000))
        .collect();
    let mut g = c.benchmark_group("cracker_index_lookup");
    g.sample_size(20);

    let mut avl = Avl::new();
    let mut btree = BTreeMap::new();
    for (i, &k) in keys.iter().enumerate() {
        avl.insert(k, i);
        btree.insert(k, i);
    }
    let probes: Vec<i64> = (0..10_000)
        .map(|_| rng.random_range(0..1_000_000))
        .collect();

    g.bench_function("avl_floor", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &probes {
                if let Some((_, &v)) = avl.floor(&p) {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("btreemap_range", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &probes {
                if let Some((_, &v)) = btree.range(..=p).next_back() {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_weight_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("weight_heap");
    g.sample_size(20);
    g.bench_function("upsert_update_cycle", |b| {
        b.iter_batched(
            WeightHeap::new,
            |mut h| {
                for k in 0..256usize {
                    h.upsert(k, (k * 31 % 97) as u128);
                }
                for k in 0..256usize {
                    h.upsert(k, (k * 17 % 89) as u128);
                    black_box(h.peek_max());
                }
                h
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ripple_vs_rebuild(c: &mut Criterion) {
    // Insert 64 values into a column cracked into 256 pieces: Ripple moves
    // one element per downstream piece; the naive alternative re-sorts the
    // touched suffix.
    let (vals, rows) = data(3);
    let mut index = CrackerIndex::new(N);
    let mut cvals = vals.clone();
    let mut crows = rows.clone();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..255 {
        let pivot = rng.random_range(0..1_000_000);
        let bounds = index.bounds_in_order();
        if bounds.iter().any(|&(k, _)| k == pivot) {
            continue;
        }
        let idx = bounds.partition_point(|&(k, _)| k <= pivot);
        let start = if idx == 0 { 0 } else { bounds[idx - 1].1 };
        let end = if idx < bounds.len() {
            bounds[idx].1
        } else {
            cvals.len()
        };
        let split = crack_in_two(&mut cvals[start..end], &mut crows[start..end], pivot);
        index.insert_bound(pivot, start + split);
    }

    let mut g = c.benchmark_group("updates");
    g.sample_size(10);
    g.bench_function("ripple_insert_64", |b| {
        b.iter_batched(
            || (cvals.clone(), crows.clone(), index.clone()),
            |(mut v, mut r, mut idx)| {
                for k in 0..64u32 {
                    ripple_insert(&mut v, &mut r, &mut idx, (k as i64) * 13_337, N as u32 + k);
                }
                black_box(v.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("append_and_resort_64", |b| {
        b.iter_batched(
            || vals.clone(),
            |mut v| {
                for k in 0..64i64 {
                    v.push(k * 13_337);
                }
                v.sort_unstable();
                black_box(v.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crack_kernels,
    bench_cracker_index,
    bench_weight_heap,
    bench_ripple_vs_rebuild
);
criterion_main!(benches);
