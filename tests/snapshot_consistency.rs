//! Snapshot-epoch consistency under full interference (§5.7 grown to the
//! lock-free read path): concurrent snapshot scans must observe the exact
//! base multiset plus the net applied inserts/deletes — never a torn
//! intermediate — while query-driven cracks, background refinements
//! (piece splits) and Ripple merges run against the same shards; and
//! retired snapshot segments must actually be reclaimed once the last
//! pinned epoch drops.
//!
//! The mid-race oracle uses constant-value update streams: one updater
//! inserts only `VA`, another deletes only pre-merged `VB` tuples. Any
//! *consistent* point-in-time view then satisfies a linear system —
//! `count = base + M + i - d`, `sum = base_sum + M·VB + i·VA - d·VB` —
//! whose integer solution `(i, d)` must fall inside the per-updater
//! progress windows read around the scan. A torn scan (a Ripple shift
//! observed halfway, an insert counted in both snapshot and pending, a
//! half-published splice) breaks the coupling and fails the solve.

use holix::cracking::{CrackScratch, ShardPlan, ShardedColumn};
use holix::storage::select::{scan_stats, Predicate};
use holix::storage::types::RowId;
use rand::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

const N: usize = 60_000;
const DOMAIN: i64 = 100_000;
/// Inserted by updater A (inside the scanned domain).
const VA: i64 = 41_000;
/// Pre-merged tuples deleted by updater B.
const VB: i64 = 59_000;
/// Pre-merged `VB` tuples available for deletion.
const M: usize = 400;
/// A value band no updater ever touches (exact-equality scans).
const QUIET: (i64, i64) = (70_000, 90_000);

fn base_data(seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N)
        .map(|_| {
            // Keep the base clear of the sentinel update values so the
            // accounting attributes every VA/VB tuple to an updater.
            loop {
                let v = rng.random_range(0..DOMAIN);
                if v != VA && v != VB {
                    return v;
                }
            }
        })
        .collect()
}

/// Locked select on every intersecting shard (merges pending + cracks);
/// count-only, safe under concurrent updates (unlike `select_verified`,
/// whose checksum re-lock is documented as caller-synchronised).
fn select_all(col: &ShardedColumn<i64>, pred: Predicate<i64>, scratch: &mut CrackScratch<i64>) {
    for (k, p) in col.intersecting(pred) {
        col.shard(k).select(p, scratch);
    }
}

#[test]
fn snapshot_scans_observe_exact_multisets_under_interference() {
    let base = base_data(0xB0);
    let plan = ShardPlan::from_values(&base, 4);
    let col = ShardedColumn::from_base_with_plan("stress", &base, plan);
    let base_full = scan_stats(&base, Predicate::range(0, DOMAIN));

    // Pre-merge M deletable VB tuples.
    {
        let mut scratch = CrackScratch::new();
        for i in 0..M {
            col.queue_insert(VB, (N + i) as RowId);
        }
        col.select_verified(Predicate::range(VB - 1, VB + 1), &mut scratch);
        assert_eq!(col.pending_len(), 0, "VB seed tuples must be merged");
    }

    let inserted = AtomicUsize::new(0); // updater A progress (applied VA inserts)
    let deleted = AtomicUsize::new(0); // updater B progress (applied VB deletes)
    let morphs = AtomicUsize::new(0); // background segment re-encodings

    crossbeam::thread::scope(|s| {
        // Updater A: insert VA, force the Ripple merge via a narrow locked
        // select, then publish progress.
        {
            let col = &col;
            let inserted = &inserted;
            s.spawn(move |_| {
                let mut scratch = CrackScratch::new();
                for i in 0..250usize {
                    col.queue_insert(VA, (N + M + i) as RowId);
                    // `select` (not select_verified): the verified checksum
                    // re-locks and is documented unsafe vs concurrent
                    // updates; the plain select still forces the merge.
                    select_all(col, Predicate::range(VA - 3, VA + 3), &mut scratch);
                    inserted.fetch_add(1, SeqCst);
                }
            });
        }
        // Updater B: delete one pre-merged VB tuple at a time.
        {
            let col = &col;
            let deleted = &deleted;
            s.spawn(move |_| {
                let mut scratch = CrackScratch::new();
                for i in 0..M {
                    col.queue_delete(VB, (N + i) as RowId);
                    select_all(col, Predicate::range(VB - 3, VB + 3), &mut scratch);
                    deleted.fetch_add(1, SeqCst);
                }
            });
        }
        // Cracker: locked selects over random ranges (cracks + merges).
        {
            let col = &col;
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(0xC1);
                let mut scratch = CrackScratch::new();
                for _ in 0..300 {
                    let a = rng.random_range(0..DOMAIN);
                    let b = rng.random_range(0..DOMAIN);
                    select_all(
                        col,
                        Predicate::range(a.min(b), a.max(b).max(a.min(b) + 1)),
                        &mut scratch,
                    );
                }
            });
        }
        // Refiners: background piece splits on every shard.
        for t in 0..2u64 {
            let col = &col;
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(0xD0 + t);
                let mut scratch = CrackScratch::new();
                for _ in 0..400 {
                    for k in 0..col.shard_count() {
                        col.shard(k).refine_random(&mut rng, &mut scratch, 4);
                    }
                }
            });
        }
        // Morpher: the daemon's background re-encoding of stable plain
        // snapshot pieces (FOR / delta / RLE), racing everything above —
        // the scanners' exactness asserts now also cover scans that land
        // on compressed pieces mid-flip.
        {
            let col = &col;
            let morphs = &morphs;
            s.spawn(move |_| {
                for _ in 0..200 {
                    for k in 0..col.shard_count() {
                        if col.shard(k).morph_cold_segments() {
                            morphs.fetch_add(1, SeqCst);
                        }
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Snapshot scanners: full-domain solves + quiet-band exact checks.
        for t in 0..2u64 {
            let col = &col;
            let inserted = &inserted;
            let deleted = &deleted;
            let base = &base;
            let base_full = &base_full;
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(0xE0 + t);
                let mut scratch = CrackScratch::new();
                for round in 0..250 {
                    // Progress windows bracketing the scan.
                    let i_lo = inserted.load(SeqCst) as i128;
                    let d_lo = deleted.load(SeqCst) as i128;
                    let scan = col.snapshot_scan(Predicate::range(0, DOMAIN), &mut scratch);
                    let i_hi = inserted.load(SeqCst) as i128 + 1; // +1: merge may precede counter bump
                    let d_hi = deleted.load(SeqCst) as i128 + 1;

                    // Solve the 2x2 system for (i, d).
                    let count_delta = scan.count as i128 - base_full.count as i128 - M as i128;
                    let sum_delta = scan.sum - base_full.sum - (M as i128) * (VB as i128);
                    // count_delta = i - d; sum_delta = i*VA - d*VB
                    // => i = (sum_delta - count_delta*VB) / (VA - VB)
                    let num = sum_delta - count_delta * (VB as i128);
                    let den = (VA - VB) as i128;
                    assert_eq!(
                        num % den,
                        0,
                        "torn snapshot: non-integral insert count (round {round}, \
                         count={}, sum={})",
                        scan.count,
                        scan.sum
                    );
                    let i = num / den;
                    let d = i - count_delta;
                    assert!(
                        (i_lo..=i_hi).contains(&i) && (d_lo..=d_hi).contains(&d),
                        "inconsistent snapshot: solved i={i} d={d} outside windows \
                         [{i_lo},{i_hi}] / [{d_lo},{d_hi}] (round {round})"
                    );

                    // Quiet band: no updates land there, so the scan must
                    // equal the static base oracle *exactly*, mid-race.
                    let a = rng.random_range(QUIET.0..QUIET.1 - 1);
                    let b = rng.random_range(a + 1..QUIET.1);
                    let pred = Predicate::range(a, b);
                    let quiet = col.snapshot_scan(pred, &mut scratch);
                    let oracle = scan_stats(base, pred);
                    assert_eq!(
                        (quiet.count, quiet.sum),
                        (oracle.count, oracle.sum),
                        "quiet-band scan diverged (round {round}, pred [{a},{b}))"
                    );
                }
            });
        }
    })
    .unwrap();

    // Quiesce: merge everything, then all read paths agree exactly.
    let mut scratch = CrackScratch::new();
    for k in 0..col.shard_count() {
        col.shard(k).merge_pending_range(i64::MIN, i64::MAX);
    }
    let full = Predicate::range(0, DOMAIN);
    let scan = col.snapshot_scan(full, &mut scratch);
    let (_, locked) = col.select_verified(full, &mut scratch);
    assert_eq!((scan.count, scan.sum), (locked.count, locked.sum));
    let i = inserted.load(SeqCst) as i128;
    let d = deleted.load(SeqCst) as i128;
    assert_eq!(
        scan.count as i128,
        base_full.count as i128 + M as i128 + i - d
    );
    assert_eq!(
        scan.sum,
        base_full.sum + (M as i128 - d) * VB as i128 + i * VA as i128
    );
    // Collect agrees with the final multiset too.
    let mut got = Vec::new();
    col.snapshot_collect(full, &mut scratch, &mut got);
    assert_eq!(got.len() as u64, scan.count);

    // Morph to fixpoint: every remaining encodable plain piece flips to
    // its compressed form, and the compressed snapshot must keep
    // answering exactly what the plain one did.
    let mut post_morphs = 0usize;
    loop {
        let mut any = false;
        for k in 0..col.shard_count() {
            if col.shard(k).morph_cold_segments() {
                any = true;
                post_morphs += 1;
            }
        }
        if !any {
            break;
        }
    }
    assert!(
        morphs.load(SeqCst) + post_morphs > 0,
        "no snapshot segment was ever re-encoded"
    );
    let rescan = col.snapshot_scan(full, &mut scratch);
    assert_eq!((rescan.count, rescan.sum), (scan.count, scan.sum));
    let mut regot = Vec::new();
    col.snapshot_collect(full, &mut scratch, &mut regot);
    got.sort_unstable();
    regot.sort_unstable();
    assert_eq!(got, regot, "compressed collect diverged from plain collect");

    for k in 0..col.shard_count() {
        col.shard(k).check_invariants(None);
    }
}

#[test]
fn retired_segments_are_reclaimed_after_last_pin_drops() {
    let base = base_data(0xB1);
    let plan = ShardPlan::from_values(&base, 2);
    let col = ShardedColumn::from_base_with_plan("reclaim", &base, plan);
    let mut scratch = CrackScratch::new();
    let full = Predicate::range(0, DOMAIN);
    col.snapshot_scan(full, &mut scratch); // publish both shards

    let column_bytes = N * std::mem::size_of::<i64>();
    let bytes = |col: &ShardedColumn<i64>| -> usize {
        (0..col.shard_count())
            .map(|k| col.shard(k).snapshot_bytes())
            .sum()
    };

    // Crack-heavy update loop: every merge splices + retires a snapshot.
    let mut rng = StdRng::seed_from_u64(0xF0);
    for i in 0..150 {
        let v = rng.random_range(0..DOMAIN);
        col.queue_insert(v, (N + i) as RowId);
        col.select_verified(Predicate::range(v - 2, v + 2), &mut scratch);
        for k in 0..col.shard_count() {
            col.shard(k).refine_random(&mut rng, &mut scratch, 2);
        }
        col.snapshot_scan(full, &mut scratch);
    }
    for k in 0..col.shard_count() {
        col.shard(k).snapshot_gc();
    }
    let settled = bytes(&col);
    assert!(
        settled <= 2 * column_bytes,
        "snapshot memory grew without bound: {settled} B vs {column_bytes} B column"
    );

    // A pinned epoch on shard 0 holds every snapshot version retired after
    // it — memory climbs while the pin lives …
    let guard = col.shard(0).snapshot_pin();
    for i in 0..60 {
        let v = rng.random_range(0..DOMAIN / 2); // land updates in shard 0's range
        col.queue_insert(v, (N + 1_000 + i) as RowId);
        col.select_verified(Predicate::range(v - 2, v + 2), &mut scratch);
    }
    for k in 0..col.shard_count() {
        col.shard(k).snapshot_gc();
    }
    let pinned = bytes(&col);
    assert!(
        pinned > settled,
        "pinned epoch did not retain retired segments ({pinned} vs {settled})"
    );
    // … and falls back once the pin drops and a collection runs.
    drop(guard);
    let freed: usize = (0..col.shard_count())
        .map(|k| col.shard(k).snapshot_gc())
        .sum();
    assert!(freed > 0, "nothing reclaimed after the last pin dropped");
    let after = bytes(&col);
    assert!(
        after <= 2 * column_bytes,
        "retired segments not freed after unpin: {after} B"
    );
    assert!(after < pinned);
}
