//! The four index-decision strategies of §4.2.
//!
//! Every index `I` carries a weight `W_I`; the index space refines the
//! highest-weight index in `C_actual` first (strategies W1–W3) or picks
//! uniformly at random (W4). The paper's evaluation (§5.4, Fig 13) finds W4
//! robust across workloads, which is why it is the library default.

/// Index-decision strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// `W_I = d(I, I_opt)` — prioritise large partitions.
    W1Distance,
    /// `W_I = f_I · d` — large partitions on frequently accessed indices.
    W2FrequencyDistance,
    /// `W_I = (f_I − f_Ih) · d` — frequency discounted by exact hits.
    W3MissDistance,
    /// Uniformly random choice.
    #[default]
    W4Random,
}

impl Strategy {
    /// All strategies (for parameter sweeps like Fig 13).
    pub const ALL: [Strategy; 4] = [
        Strategy::W1Distance,
        Strategy::W2FrequencyDistance,
        Strategy::W3MissDistance,
        Strategy::W4Random,
    ];

    /// Short label used in benchmark output ("W1".."W4").
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::W1Distance => "W1",
            Strategy::W2FrequencyDistance => "W2",
            Strategy::W3MissDistance => "W3",
            Strategy::W4Random => "W4",
        }
    }

    /// Computes `W_I` from the distance `d` (Equation 1) and the workload
    /// counters `f_I` / `f_Ih`.
    ///
    /// W2/W3 multiply by at least 1 so that a never-queried index with large
    /// pieces still competes (its initial weight, `N − L1s`, must not be
    /// wiped out before the first query, per the initialisation rule of
    /// §4.2).
    pub fn weight(&self, distance: u64, queries: u64, exact_hits: u64) -> u128 {
        let d = distance as u128;
        match self {
            Strategy::W1Distance => d,
            Strategy::W2FrequencyDistance => d * (queries.max(1) as u128),
            Strategy::W3MissDistance => d * (queries.saturating_sub(exact_hits).max(1) as u128),
            Strategy::W4Random => d, // weight unused for picking; kept for optimality tracking
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Strategy::W1Distance.label(), "W1");
        assert_eq!(Strategy::W4Random.to_string(), "W4");
        assert_eq!(Strategy::ALL.len(), 4);
    }

    #[test]
    fn weights_follow_definitions() {
        assert_eq!(Strategy::W1Distance.weight(100, 7, 3), 100);
        assert_eq!(Strategy::W2FrequencyDistance.weight(100, 7, 3), 700);
        assert_eq!(Strategy::W3MissDistance.weight(100, 7, 3), 400);
        // Unqueried index keeps its initial distance weight under W2/W3.
        assert_eq!(Strategy::W2FrequencyDistance.weight(100, 0, 0), 100);
        assert_eq!(Strategy::W3MissDistance.weight(100, 5, 5), 100);
    }

    #[test]
    fn zero_distance_means_zero_weight() {
        for s in Strategy::ALL {
            assert_eq!(s.weight(0, 10, 2), 0, "{s}");
        }
    }
}
